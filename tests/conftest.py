"""Shared fixtures: small deterministic streams and configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GSketchConfig
from repro.datasets.zipf import bounded_zipf_sample
from repro.graph.sampling import reservoir_sample
from repro.graph.stream import GraphStream
from repro.utils.rng import resolve_rng


def make_zipf_stream(
    num_edges: int = 6_000,
    population: int = 300,
    exponent: float = 1.2,
    seed: int = 11,
    name: str = "zipf-test",
) -> GraphStream:
    """A small Zipf-source stream with heavy-hitter sources and repeats."""
    rng = resolve_rng(seed)
    sources = bounded_zipf_sample(population, num_edges, exponent, seed=rng)
    targets = rng.integers(0, population, size=num_edges)
    return GraphStream.from_tuples(
        (int(s), int(t), float(i), 1.0)
        for i, (s, t) in enumerate(zip(sources, targets))
    )


@pytest.fixture(scope="session")
def zipf_stream() -> GraphStream:
    return make_zipf_stream()


@pytest.fixture(scope="session")
def zipf_sample(zipf_stream: GraphStream) -> GraphStream:
    return reservoir_sample(zipf_stream, 1_500, seed=5)


@pytest.fixture(scope="session")
def small_config() -> GSketchConfig:
    return GSketchConfig(total_cells=8_000, depth=4, seed=7)


@pytest.fixture(scope="session")
def weighted_stream() -> GraphStream:
    """A stream with non-unit, fractional frequencies (exercises float paths)."""
    rng = np.random.default_rng(23)
    sources = rng.integers(0, 60, size=2_000)
    targets = rng.integers(0, 60, size=2_000)
    freqs = rng.integers(1, 9, size=2_000).astype(np.float64) * 0.5
    return GraphStream.from_tuples(
        (int(s), int(t), float(i), float(f))
        for i, (s, t, f) in enumerate(zip(sources, targets, freqs))
    )

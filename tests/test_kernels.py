"""Kernel-tier parity: scratch/JIT gathers bit-exact vs the oracle expressions.

The compiled kernel tiers (:mod:`repro.queries.kernels`) re-stage the two hot
read-plane kernels — the Mersenne-61 Carter–Wegman hash and the arena
gather + min reduce — through preallocated scratch (``numpy``) or a fused JIT
loop (``numba``).  Their only contract is *bit-exactness* against the plain
expressions in :mod:`repro.sketches.hashing`; these tests pin that on the
values where 64-bit limb arithmetic is easiest to get wrong: keys at the
Mersenne prime boundary (``p-1, p, p+1``), zero, and ``2^64 - 1``, plus the
single-slot broadcast fast path and scratch reuse/growth across batches.

The numba tier is optional: when the dependency is absent its construction
must raise :class:`~repro.queries.kernels.KernelUnavailableError` and its
parity tests skip cleanly (the CI job without numba stays green).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.engine import SketchEngine
from repro.core.config import GSketchConfig
from repro.datasets.zipf import zipf_stream
from repro.queries.kernels import (
    HAVE_NUMBA,
    KERNEL_TIERS,
    KernelUnavailableError,
    NumpyScratchKernel,
    get_kernel,
    scratch_capacity,
)
from repro.sketches.hashing import (
    MERSENNE_PRIME_61,
    gathered_hash_columns,
)

#: The limb-arithmetic edge cases: zero, the multiplicative identity, the
#: three values straddling the Mersenne prime, both 32-bit limb boundaries,
#: and the top of the uint64 range.
BOUNDARY_KEYS = np.array(
    [
        0,
        1,
        (1 << 32) - 1,
        1 << 32,
        MERSENNE_PRIME_61 - 1,
        MERSENNE_PRIME_61,
        MERSENNE_PRIME_61 + 1,
        (1 << 64) - 1,
    ],
    dtype=np.uint64,
)

DEPTH = 4


def _coefficient_tables(num_slots: int, seed: int = 11):
    """Random valid ``(a, b, widths, offsets)`` tables for ``num_slots`` sketches."""
    rng = np.random.default_rng(seed)
    a = rng.integers(1, MERSENNE_PRIME_61, size=(DEPTH, num_slots), dtype=np.uint64)
    b = rng.integers(0, MERSENNE_PRIME_61, size=(DEPTH, num_slots), dtype=np.uint64)
    widths = rng.integers(64, 4096, size=num_slots).astype(np.uint64)
    offsets = np.concatenate(
        ([0], np.cumsum(widths.astype(np.int64))[:-1])
    ).astype(np.int64)
    return a, b, widths, offsets


def _workload(num_slots: int, extra: int = 400, seed: int = 13):
    """Boundary keys plus random uint64 keys, each routed to a random slot."""
    rng = np.random.default_rng(seed)
    random_keys = rng.integers(0, 1 << 64, size=extra, dtype=np.uint64)
    keys = np.concatenate([BOUNDARY_KEYS, random_keys])
    slots = rng.integers(0, num_slots, size=len(keys)).astype(np.int64)
    return keys, slots


def _oracle_estimate(a, b, widths, offsets, flat, keys, slots):
    """The plain-expression gather the kernels must match bit-for-bit."""
    cols = gathered_hash_columns(a[:, slots], b[:, slots], widths[slots], keys)
    cols += offsets[slots]
    total = int(offsets[-1] + widths[-1])
    row_base = (np.arange(DEPTH, dtype=np.int64) * total)[:, None]
    return flat[cols + row_base].min(axis=0)


def _arena(widths, seed: int = 17):
    rng = np.random.default_rng(seed)
    total = int(widths.astype(np.int64).sum())
    return rng.integers(0, 1000, size=DEPTH * total).astype(np.float64)


class TestNumpyScratchKernel:
    def test_hash_columns_boundary_parity(self):
        a, b, widths, _ = _coefficient_tables(num_slots=6)
        keys, slots = _workload(num_slots=6)
        kernel = NumpyScratchKernel(DEPTH, capacity=64)
        ga, gb = kernel.take_columns(a, b, slots)
        got = kernel.hash_columns(ga, gb, widths[slots], keys)
        expected = gathered_hash_columns(a[:, slots], b[:, slots], widths[slots], keys)
        np.testing.assert_array_equal(np.asarray(got), expected)

    def test_single_slot_broadcast_parity(self):
        # (depth, 1) coefficient columns broadcast across the whole batch —
        # the global-baseline fast path skips the take_columns gather.
        a, b, widths, _ = _coefficient_tables(num_slots=1)
        keys, _ = _workload(num_slots=1)
        kernel = NumpyScratchKernel(DEPTH)
        got = kernel.hash_columns(a, b, widths, keys)
        expected = gathered_hash_columns(a, b, widths, keys)
        np.testing.assert_array_equal(np.asarray(got), expected)

    def test_gather_min_parity(self):
        a, b, widths, offsets = _coefficient_tables(num_slots=4)
        keys, slots = _workload(num_slots=4)
        flat = _arena(widths)
        total = int(offsets[-1] + widths[-1])
        row_base = (np.arange(DEPTH, dtype=np.int64) * total)[:, None]
        cols = (
            gathered_hash_columns(a[:, slots], b[:, slots], widths[slots], keys)
            + offsets[slots]
            + row_base
        )
        kernel = NumpyScratchKernel(DEPTH)
        got = np.asarray(kernel.gather_min(flat, cols)).copy()
        np.testing.assert_array_equal(got, flat[cols].min(axis=0))

    def test_end_to_end_estimate_parity(self):
        a, b, widths, offsets = _coefficient_tables(num_slots=5)
        keys, slots = _workload(num_slots=5)
        flat = _arena(widths)
        total = int(offsets[-1] + widths[-1])
        row_base = (np.arange(DEPTH, dtype=np.int64) * total)[:, None]
        kernel = NumpyScratchKernel(DEPTH, capacity=32)  # forces growth too
        ga, gb = kernel.take_columns(a, b, slots)
        cols = kernel.hash_columns(ga, gb, widths[slots], keys) + offsets[slots]
        got = np.asarray(kernel.gather_min(flat, cols + row_base)).copy()
        expected = _oracle_estimate(a, b, widths, offsets, flat, keys, slots)
        np.testing.assert_array_equal(got, expected)

    def test_scratch_reuse_is_stateless(self):
        # Two identical batches through the same kernel instance must agree:
        # scratch contents from the first pass may not leak into the second.
        a, b, widths, _ = _coefficient_tables(num_slots=3)
        keys, slots = _workload(num_slots=3)
        kernel = NumpyScratchKernel(DEPTH)
        first = np.asarray(
            kernel.hash_columns(*kernel.take_columns(a, b, slots), widths[slots], keys)
        ).copy()
        second = np.asarray(
            kernel.hash_columns(*kernel.take_columns(a, b, slots), widths[slots], keys)
        ).copy()
        np.testing.assert_array_equal(first, second)

    def test_scratch_grows_past_capacity(self):
        a, b, widths, _ = _coefficient_tables(num_slots=2)
        rng = np.random.default_rng(23)
        keys = rng.integers(0, 1 << 64, size=5_000, dtype=np.uint64)
        slots = rng.integers(0, 2, size=5_000).astype(np.int64)
        kernel = NumpyScratchKernel(DEPTH, capacity=128)
        got = kernel.hash_columns(
            *kernel.take_columns(a, b, slots), widths[slots], keys
        )
        expected = gathered_hash_columns(a[:, slots], b[:, slots], widths[slots], keys)
        np.testing.assert_array_equal(np.asarray(got), expected)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NumpyScratchKernel(0)
        with pytest.raises(ValueError):
            NumpyScratchKernel(4, capacity=0)


class TestKernelRegistry:
    def test_get_kernel_numpy(self):
        kernel = get_kernel("numpy", depth=4)
        assert kernel.name == "numpy"
        assert not kernel.fused

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            get_kernel("cython", depth=4)

    def test_tier_names_stable(self):
        assert KERNEL_TIERS == ("numpy", "numba")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed; tier is available")
    def test_numba_unavailable_raises_typed_error(self):
        with pytest.raises(KernelUnavailableError, match="numba"):
            get_kernel("numba", depth=4)

    def test_scratch_capacity_floor_and_scaling(self):
        assert scratch_capacity(0.001, 4) == 1024  # floored
        assert scratch_capacity(8.0, 4) > scratch_capacity(4.0, 4)
        with pytest.raises(ValueError):
            scratch_capacity(0.0, 4)


class TestNumbaKernel:
    """Parity for the JIT tier — the whole class skips when numba is absent."""

    pytestmark = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

    def test_fused_estimate_boundary_parity(self):
        a, b, widths, offsets = _coefficient_tables(num_slots=5)
        keys, slots = _workload(num_slots=5)
        flat = _arena(widths)
        total = int(offsets[-1] + widths[-1])
        row_offsets = np.arange(DEPTH, dtype=np.int64) * total
        kernel = get_kernel("numba", depth=DEPTH)
        got = np.asarray(
            kernel.estimate(
                np.take(a, slots, axis=1),
                np.take(b, slots, axis=1),
                widths[slots],
                keys,
                flat,
                row_offsets,
                offsets[slots],
            )
        ).copy()
        expected = _oracle_estimate(a, b, widths, offsets, flat, keys, slots)
        np.testing.assert_array_equal(got, expected)

    def test_fused_single_slot_parity(self):
        a, b, widths, offsets = _coefficient_tables(num_slots=1)
        keys, _ = _workload(num_slots=1)
        flat = _arena(widths)
        total = int(widths[0])
        row_offsets = np.arange(DEPTH, dtype=np.int64) * total
        kernel = get_kernel("numba", depth=DEPTH)
        got = np.asarray(
            kernel.estimate(a, b, widths, keys, flat, row_offsets, None)
        ).copy()
        slots = np.zeros(len(keys), dtype=np.int64)
        expected = _oracle_estimate(a, b, widths, offsets, flat, keys, slots)
        np.testing.assert_array_equal(got, expected)


class TestPlanKernelIntegration:
    """A kernel attached to a live compiled plan answers bit-identically."""

    @pytest.fixture()
    def engine(self):
        config = GSketchConfig(total_cells=6_000, depth=4, seed=7)
        stream = zipf_stream(8_000, population=512, seed=7)
        engine = SketchEngine.builder().config(config).dataset(stream).build()
        engine.ingest(stream)
        yield engine
        engine.close()

    @pytest.fixture()
    def stream_keys(self):
        return sorted(zipf_stream(8_000, population=512, seed=7).distinct_edges())

    def test_plan_answers_identical_with_kernel(self, engine, stream_keys):
        keys = stream_keys[:200]
        keys += [(10**9 + i, 3) for i in range(4)]  # never-seen sources
        oracle = np.asarray(engine.estimator.query_edges(list(keys)))
        kernel = get_kernel("numpy", depth=4, capacity=64)
        engine.estimator.set_plan_kernel(kernel)
        got = np.asarray(engine.estimator.query_edges(list(keys)))
        np.testing.assert_array_equal(got, oracle)
        assert engine.estimator.compile_plan().kernel is kernel

    def test_kernel_detaches_cleanly(self, engine, stream_keys):
        keys = stream_keys[:50]
        engine.estimator.set_plan_kernel(get_kernel("numpy", depth=4))
        with_kernel = np.asarray(engine.estimator.query_edges(list(keys)))
        engine.estimator.set_plan_kernel(None)
        without = np.asarray(engine.estimator.query_edges(list(keys)))
        np.testing.assert_array_equal(with_kernel, without)
        assert engine.estimator.compile_plan().kernel is None

"""Batched ingestion must be *bit-identical* to per-edge ingestion.

These tests pin the core contract of the vectorized hot path: grouping a
stream by partition and applying ``update_batch`` produces exactly the
counters that arrival-order ``update`` calls produce, and serialized shard
state merges into the state of the concatenated stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GSketchConfig
from repro.core.gsketch import GSketch
from repro.distributed.shard import SketchShard
from repro.graph.sampling import reservoir_sample


def assert_same_counters(a: GSketch, b: GSketch) -> None:
    assert a.num_partitions == b.num_partitions
    for left, right in zip(a.partitions, b.partitions):
        assert np.array_equal(left.table, right.table)
        assert left.total_count == right.total_count
        assert left.update_count == right.update_count
    assert np.array_equal(a.outlier_sketch.table, b.outlier_sketch.table)
    assert a.elements_processed == b.elements_processed
    assert a.outlier_elements == b.outlier_elements


def _per_edge_ingest(gsketch: GSketch, stream) -> None:
    for edge in stream:
        gsketch.update(edge.source, edge.target, edge.frequency)


@pytest.mark.parametrize("conservative", [False, True])
@pytest.mark.parametrize("batch_size", [1, 17, 1024, 100_000])
def test_process_bit_identical_to_per_edge(
    zipf_stream, zipf_sample, conservative, batch_size
):
    config = GSketchConfig(
        total_cells=8_000, depth=4, seed=7, conservative_updates=conservative
    )
    stream = zipf_stream.prefix(3_000) if conservative else zipf_stream

    reference = GSketch.build(zipf_sample, config, stream_size_hint=len(stream))
    _per_edge_ingest(reference, stream)

    batched = GSketch.build(zipf_sample, config, stream_size_hint=len(stream))
    batched.process(stream, batch_size=batch_size)

    assert_same_counters(reference, batched)


def test_ingest_batch_accepts_raw_edge_sequences(zipf_stream, zipf_sample, small_config):
    reference = GSketch.build(zipf_sample, small_config)
    _per_edge_ingest(reference, zipf_stream.prefix(500))

    batched = GSketch.build(zipf_sample, small_config)
    batched.ingest_batch(list(zipf_stream.prefix(500)))

    assert_same_counters(reference, batched)


def test_fractional_frequencies_keep_parity(weighted_stream, small_config):
    sample = reservoir_sample(weighted_stream, 600, seed=3)
    reference = GSketch.build(sample, small_config)
    _per_edge_ingest(reference, weighted_stream)

    batched = GSketch.build(sample, small_config)
    batched.process(weighted_stream, batch_size=256)

    for left, right in zip(reference.partitions, batched.partitions):
        assert np.array_equal(left.table, right.table)
    assert np.array_equal(
        reference.outlier_sketch.table, batched.outlier_sketch.table
    )


def test_string_labelled_streams_take_fallback_path(small_config):
    """Non-integer labels exercise the per-element fallback, same parity."""
    from repro.graph.stream import GraphStream

    edges = [
        (f"u{i % 40}", f"v{(i * 7) % 30}", float(i), 1.0) for i in range(2_000)
    ]
    stream = GraphStream.from_tuples(edges, name="strings")
    sample = reservoir_sample(stream, 400, seed=2)

    reference = GSketch.build(sample, small_config)
    _per_edge_ingest(reference, stream)

    batched = GSketch.build(sample, small_config)
    batched.process(stream, batch_size=333)

    assert_same_counters(reference, batched)


def test_shard_merge_of_serialized_halves_equals_concatenated_ingest(
    zipf_stream, zipf_sample, small_config
):
    """merge(serialize(a), serialize(b)) == ingest(a ++ b), counter for counter."""
    whole = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    whole.process(zipf_stream)

    half = len(zipf_stream) // 2
    first = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    first.process(zipf_stream.prefix(half))
    second = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    second.process(zipf_stream.suffix(half))

    def as_shard(gsketch: GSketch) -> SketchShard:
        sketches = {i: s for i, s in enumerate(gsketch.partitions)}
        sketches[-1] = gsketch.outlier_sketch
        return SketchShard(0, sketches)

    merged = SketchShard.deserialize(as_shard(first).serialize())
    merged.merge(SketchShard.deserialize(as_shard(second).serialize()))

    whole_shard = as_shard(whole)
    for partition, sketch in merged.sketches():
        assert np.array_equal(
            sketch.table, whole_shard.sketch_for(partition).table
        ), f"partition {partition} diverged after merge"
    assert merged.total_count == whole_shard.total_count

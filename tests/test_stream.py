"""GraphStream construction-time validation and batched access."""

from __future__ import annotations


import numpy as np
import pytest

from repro.graph.batch import EdgeBatch
from repro.graph.edge import StreamEdge
from repro.graph.stream import GraphStream


class TestFrequencyValidation:
    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError, match="invalid frequency"):
            GraphStream([StreamEdge(1, 2, 0.0, -1.0)])

    def test_nan_frequency_rejected(self):
        with pytest.raises(ValueError, match="invalid frequency"):
            GraphStream([StreamEdge(1, 2, 0.0, float("nan"))])

    def test_infinite_frequency_rejected(self):
        with pytest.raises(ValueError, match="invalid frequency"):
            GraphStream([StreamEdge(1, 2, 0.0, float("inf"))])

    def test_non_finite_timestamp_rejected(self):
        with pytest.raises(ValueError, match="timestamp"):
            GraphStream([StreamEdge(1, 2, float("nan"), 1.0)])

    def test_error_message_names_offending_element(self):
        with pytest.raises(ValueError, match=r"element 1 \('a', 'b'\)"):
            GraphStream([StreamEdge(1, 2), StreamEdge("a", "b", 0.0, -3.0)])

    def test_zero_frequency_allowed(self):
        stream = GraphStream([StreamEdge(1, 2, 0.0, 0.0)])
        assert stream.total_frequency() == 0.0

    def test_from_tuples_validates_too(self):
        with pytest.raises(ValueError):
            GraphStream.from_tuples([(1, 2, 0.0, -5.0)])


class TestIterBatches:
    def test_batches_cover_stream_in_order(self, zipf_stream):
        rebuilt = []
        for batch in zipf_stream.iter_batches(700):
            assert isinstance(batch, EdgeBatch)
            assert len(batch) <= 700
            rebuilt.extend(batch.iter_edges())
        assert rebuilt == list(zipf_stream)

    def test_batch_size_must_be_positive(self, zipf_stream):
        with pytest.raises(ValueError):
            next(zipf_stream.iter_batches(0))

    def test_integer_streams_columnarize(self, zipf_stream):
        batch = next(zipf_stream.iter_batches(100))
        assert batch.is_integer_labelled
        assert batch.sources.dtype == np.int64
        assert batch.frequencies.dtype == np.float64

    def test_string_streams_fall_back_to_object_columns(self):
        stream = GraphStream.from_pairs([("a", "b"), ("c", "d")])
        batch = stream.to_batch()
        assert not batch.is_integer_labelled
        assert batch.sources.dtype == object

    def test_mixed_labels_do_not_coerce(self):
        stream = GraphStream.from_pairs([(1, 2), ("a", 3)])
        batch = stream.to_batch()
        assert not batch.is_integer_labelled

    def test_hashed_keys_match_scalar_canonicalization(self, zipf_stream):
        from repro.sketches.hashing import key_to_uint64

        batch = next(zipf_stream.iter_batches(256))
        keys = batch.hashed_keys()
        for i, edge in enumerate(batch.iter_edges()):
            assert int(keys[i]) == key_to_uint64((edge.source, edge.target))

    def test_to_batch_is_cached(self, zipf_stream):
        assert zipf_stream.to_batch() is zipf_stream.to_batch()

    def test_empty_stream_yields_no_batches(self):
        assert list(GraphStream([]).iter_batches(10)) == []

"""Reader-pool lifecycle and demux-ordering contracts.

The parallel read plane (:mod:`repro.queries.parallel`) maps a frozen
compiled-plan arena into N worker processes.  These tests pin its contracts:

* every public query path answers **bit-identically** to the in-process
  estimator, including when a batch is split into contiguous chunks across
  several workers and reassembled in submission order;
* the cache-merged serving path (:meth:`ReaderPool.query_edges_cached` over
  :meth:`~repro.queries.plan.HotEdgeCache.lookup_partial`) keeps exact batch
  ordering when cached hits interleave with misses gathered by ≥ 2 different
  workers — the cross-worker ordering regression;
* a dead worker surfaces as a typed :class:`ReaderWorkerError` naming the
  worker, after which the pool keeps serving degraded on the survivors, and
  the last death yields :class:`ReaderPoolError`;
* generation hot-swap mid-stream: answers always reflect exactly one plan
  generation, swaps are no-ops when nothing changed, and teardown releases
  every shared-memory block (no ``/dev/shm`` leaks), idempotently.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import faults
from repro.core.config import GSketchConfig
from repro.core.gsketch import GSketch
from repro.datasets.zipf import zipf_stream
from repro.graph.sampling import reservoir_sample
from repro.queries.parallel import (
    PlanConfig,
    ReaderPool,
    ReaderPoolError,
    ReaderSupervisor,
    ReaderWorkerError,
)
from repro.queries.plan import HotEdgeCache


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def _build_estimator(num_edges: int = 6_000, seed: int = 7) -> GSketch:
    config = GSketchConfig(total_cells=4_000, depth=4, seed=seed)
    stream = zipf_stream(num_edges, population=256, seed=seed)
    sample = reservoir_sample(stream, 500, seed=seed)
    estimator = GSketch.build(sample, config, stream_size_hint=num_edges)
    estimator.process(stream)
    return estimator


@pytest.fixture(scope="module")
def estimator():
    return _build_estimator()


@pytest.fixture(scope="module")
def workload():
    """400 keys: seen edges plus never-seen sources (outlier-slot routing)."""
    stream = zipf_stream(6_000, population=256, seed=7)
    keys = sorted(stream.distinct_edges())[:380]
    keys += [(10**9 + index, 3) for index in range(20)]
    return keys


class TestQueryParity:
    def test_query_edges_split_across_workers(self, estimator, workload):
        oracle = np.asarray(estimator.query_edges(list(workload)))
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            got = pool.query_edges(list(workload))  # 400 keys → split in two
        np.testing.assert_array_equal(got, oracle)

    def test_query_edges_unsplit(self, estimator, workload):
        oracle = np.asarray(estimator.query_edges(list(workload)))
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            got = pool.query_edges(list(workload), split=False)
        np.testing.assert_array_equal(got, oracle)

    def test_map_batches_submission_order(self, estimator, workload):
        sources = np.array([k[0] for k in workload], dtype=np.int64)
        targets = np.array([k[1] for k in workload], dtype=np.int64)
        batches = [
            (sources[start : start + 50], targets[start : start + 50])
            for start in range(0, len(workload), 50)
        ]
        oracle = [
            np.asarray(estimator.query_edges(list(workload[start : start + 50])))
            for start in range(0, len(workload), 50)
        ]
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            answered = pool.map_batches(batches)
        assert len(answered) == len(oracle)
        for expected, got in zip(oracle, answered):
            np.testing.assert_array_equal(got, expected)

    def test_empty_batch(self, estimator):
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=1)) as pool:
            assert pool.query_edges([]).shape == (0,)

    def test_oversized_batch_is_typed_error(self, estimator):
        config = PlanConfig(readers=1, batch_capacity=1024)
        oversized = [(index, index + 1) for index in range(1_500)]
        with ReaderPool.from_estimator(estimator, config) as pool:
            with pytest.raises(ReaderPoolError, match="staging capacity"):
                pool.query_edges(oversized, split=False)


class TestCrossWorkerCacheOrdering:
    """The satellite regression: cached hits + multi-worker misses, in order."""

    def test_mixed_cached_and_gathered_keys_keep_order(self, estimator, workload):
        oracle = np.asarray(estimator.query_edges(list(workload)))
        cache = HotEdgeCache(capacity=4_096)
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            generation = pool.generation
            # Prime the memo with every *third* key, so the next coalesced
            # batch interleaves cached hits with >= 256 misses — enough for
            # query_columns to split the compacted misses across both
            # workers, exercising the scatter-by-miss-index reassembly.
            primed = list(workload[::3])
            warm = pool.query_edges_cached(primed, cache, generation)
            np.testing.assert_array_equal(warm, oracle[::3])
            assert len(cache) == len(set(primed))

            got = pool.query_edges_cached(list(workload), cache, generation)
            np.testing.assert_array_equal(got, oracle)

            # Now everything is memoized: the all-hit path must stay exact.
            again = pool.query_edges_cached(list(workload), cache, generation)
            np.testing.assert_array_equal(again, oracle)

    def test_cold_cache_stores_batch(self, estimator, workload):
        cache = HotEdgeCache(capacity=4_096)
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            got = pool.query_edges_cached(list(workload), cache, pool.generation)
        oracle = np.asarray(estimator.query_edges(list(workload)))
        np.testing.assert_array_equal(got, oracle)
        assert len(cache) == len(set(map(tuple, workload)))

    def test_generation_bump_invalidates_memo(self, estimator, workload):
        cache = HotEdgeCache(capacity=4_096)
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=1)) as pool:
            generation = pool.generation
            pool.query_edges_cached(list(workload), cache, generation)
            assert len(cache) > 0
            # A later generation must not serve stale entries.
            got = pool.query_edges_cached(list(workload), cache, generation + 1)
        oracle = np.asarray(estimator.query_edges(list(workload)))
        np.testing.assert_array_equal(got, oracle)


class TestWorkerDeath:
    def test_death_is_typed_and_pool_degrades(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=11)
        oracle = np.asarray(estimator.query_edges(list(workload[:40])))
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        try:
            victim = pool._readers[0].process
            victim.kill()
            victim.join(timeout=10)
            # Round-robin starts at worker 0: the dead pipe surfaces as a
            # typed error naming the worker, not a hang or a bare OSError.
            with pytest.raises(ReaderWorkerError) as info:
                pool.query_edges(list(workload[:40]), split=False)
            assert info.value.worker_index == 0

            # Degraded serving: the survivor answers, bit-exact.
            got = pool.query_edges(list(workload[:40]))
            np.testing.assert_array_equal(got, oracle)

            # Last survivor dies -> typed error, then pool-empty error.
            pool._readers[1].process.kill()
            pool._readers[1].process.join(timeout=10)
            with pytest.raises(ReaderWorkerError):
                pool.query_edges(list(workload[:40]))
            with pytest.raises(ReaderPoolError, match="no reader workers"):
                pool.query_edges(list(workload[:40]))
        finally:
            pool.close()

    def test_close_after_death_releases_everything(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=13)
        before = _shm_entries()
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        pool._readers[1].process.kill()
        pool._readers[1].process.join(timeout=10)
        pool.query_edges(list(workload[:10]), split=False)  # worker 0 still fine
        pool.close()
        assert _shm_entries() <= before

    def test_close_after_total_death_releases_everything(self, workload):
        """Teardown with every pipe broken must still unlink all blocks."""
        estimator = _build_estimator(num_edges=3_000, seed=13)
        before = _shm_entries()
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        for reader in pool._readers:
            reader.process.kill()
            reader.process.join(timeout=10)
        pool.close()
        pool.close()  # idempotent even after a fully-dead teardown
        assert _shm_entries() <= before


class TestHotSwap:
    def test_swap_mid_stream_tracks_generation(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=17)
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        try:
            first_gen = pool.generation
            before = np.asarray(estimator.query_edges(list(workload[:60])))
            np.testing.assert_array_equal(
                pool.query_edges(list(workload[:60])), before
            )

            # Ingest more stream (bumps the estimator generation), swap, and
            # check the pool serves the *new* counts.
            extra = zipf_stream(2_000, population=256, seed=23)
            estimator.process(extra)
            assert estimator.ingest_generation != first_gen
            assert pool.swap_from(estimator) is True
            assert pool.generation == estimator.ingest_generation

            after = np.asarray(estimator.query_edges(list(workload[:60])))
            np.testing.assert_array_equal(
                pool.query_edges(list(workload[:60])), after
            )
            # The workload gained mass, so at least one estimate moved.
            assert (after >= before).all() and (after > before).any()
        finally:
            pool.close()

    def test_swap_same_generation_is_noop(self, estimator):
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=1)) as pool:
            generation = pool.generation
            assert pool.swap_from(estimator) is False
            pool.swap(estimator.compile_plan())  # same generation: no-op
            assert pool.generation == generation

    def test_swap_releases_old_arena(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=19)
        before = _shm_entries()
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=1))
        try:
            estimator.process(zipf_stream(1_000, population=256, seed=29))
            pool.swap_from(estimator)
            pool.query_edges(list(workload[:20]), split=False)
        finally:
            pool.close()
        assert _shm_entries() <= before

    def test_swap_with_dead_worker_survivors_remap_no_leak(self, workload):
        """Worker death mid-swap: survivors remap, the old arena is freed."""
        estimator = _build_estimator(num_edges=3_000, seed=19)
        before = _shm_entries()
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        try:
            pool._readers[0].process.kill()
            pool._readers[0].process.join(timeout=10)
            estimator.process(zipf_stream(1_000, population=256, seed=31))
            assert pool.swap_from(estimator) is True
            assert pool.generation == estimator.ingest_generation
            oracle = np.asarray(estimator.query_edges(list(workload[:30])))
            got = pool.query_edges(list(workload[:30]), split=False)
            np.testing.assert_array_equal(got, oracle)
        finally:
            pool.close()
        assert _shm_entries() <= before


class TestLifecycle:
    def test_close_is_idempotent_and_typed_after(self, estimator, workload):
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=1))
        assert not pool.closed
        pool.close()
        pool.close()  # idempotent
        assert pool.closed
        with pytest.raises(ReaderPoolError, match="closed"):
            pool.query_edges(list(workload[:5]))
        with pytest.raises(ReaderPoolError, match="closed"):
            _ = pool.generation

    def test_no_shm_leaks_across_lifecycle(self, estimator, workload):
        before = _shm_entries()
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            pool.query_edges(list(workload))
        assert _shm_entries() <= before

    def test_config_validation(self, estimator):
        with pytest.raises(ReaderPoolError, match="readers >= 1"):
            ReaderPool.from_estimator(estimator, PlanConfig(readers=0))
        with pytest.raises(ValueError):
            PlanConfig(readers=-1)
        with pytest.raises(ValueError):
            PlanConfig(kernel="cython")
        with pytest.raises(ValueError):
            PlanConfig(scratch_mb=0)
        with pytest.raises(ValueError):
            PlanConfig(batch_capacity=64)

    def test_supervision_config_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            PlanConfig(max_restarts=0)
        with pytest.raises(ValueError, match="restart_backoff_seconds"):
            PlanConfig(restart_backoff_seconds=-0.1)
        with pytest.raises(ValueError, match="restart_backoff_multiplier"):
            PlanConfig(restart_backoff_multiplier=0.5)
        config = PlanConfig()  # supervision on by default, sane budgets
        assert config.supervised and config.max_restarts >= 1


# ---------------------------------------------------------------------- #
# Supervised self-healing
# ---------------------------------------------------------------------- #
class TestSupervisor:
    """The tentpole: dead readers respawn, dispatch never loses a batch."""

    @staticmethod
    def _kill(pool, index):
        pool._readers[index].process.kill()
        pool._readers[index].process.join(timeout=10)

    def test_supervised_call_heals_and_stays_bit_exact(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=31)
        oracle = np.asarray(estimator.query_edges(list(workload[:40])))
        pool = ReaderPool.from_estimator(
            estimator, PlanConfig(readers=2, restart_backoff_seconds=0.0)
        )
        supervisor = ReaderSupervisor(pool, background=False)
        try:
            self._kill(pool, 0)
            # The dead pipe surfaces mid-dispatch; the supervisor re-issues
            # the batch on the survivor and respawns the slot inline
            # (background=False), so the caller never sees the death.
            got = supervisor.call(pool.query_edges, list(workload[:40]), split=False)
            np.testing.assert_array_equal(got, oracle)
            assert supervisor.restarts == 1
            telemetry = supervisor.telemetry()
            assert telemetry["alive"] == 2
            assert telemetry["self_healed"] and not telemetry["degraded"]
            # The respawned worker serves the same generation, bit-exact.
            got = supervisor.call(pool.query_edges, list(workload[:40]))
            np.testing.assert_array_equal(got, oracle)
        finally:
            supervisor.close()
            pool.close()

    def test_whole_pool_death_heals_blocking(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=31)
        oracle = np.asarray(estimator.query_edges(list(workload[:30])))
        pool = ReaderPool.from_estimator(
            estimator, PlanConfig(readers=2, restart_backoff_seconds=0.0)
        )
        supervisor = ReaderSupervisor(pool, background=False)
        try:
            self._kill(pool, 0)
            self._kill(pool, 1)
            # Single-batch dispatches round-robin over both slots: a killed
            # worker is only *detected* when a dispatch hits its pipe, so a
            # few supervised calls flush both zombies through heal.
            for _ in range(6):
                got = supervisor.call(
                    pool.query_edges, list(workload[:30]), split=False
                )
                np.testing.assert_array_equal(got, oracle)
            assert supervisor.restarts == 2
            assert pool.alive_count == 2 and not pool.dead_workers()
        finally:
            supervisor.close()
            pool.close()

    def test_restart_budget_exhausts_and_pool_degrades(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=31)
        oracle = np.asarray(estimator.query_edges(list(workload[:30])))
        pool = ReaderPool.from_estimator(
            estimator,
            PlanConfig(readers=2, max_restarts=1, restart_backoff_seconds=0.0),
        )
        supervisor = ReaderSupervisor(pool, background=False)
        try:
            self._kill(pool, 0)
            for _ in range(4):  # flush the zombie slot through heal
                got = supervisor.call(
                    pool.query_edges, list(workload[:30]), split=False
                )
                np.testing.assert_array_equal(got, oracle)
                if supervisor.restarts:
                    break
            assert supervisor.restarts == 1
            # The slot dies again: the budget (max_restarts=1) is spent, so
            # the supervisor marks it exhausted instead of crash-looping.
            self._kill(pool, 0)
            for _ in range(6):
                got = supervisor.call(
                    pool.query_edges, list(workload[:30]), split=False
                )
                np.testing.assert_array_equal(got, oracle)
                if 0 in supervisor.exhausted:
                    break
            assert supervisor.heal() is None  # nothing left it may respawn
            telemetry = supervisor.telemetry()
            assert telemetry["exhausted"] == [0]
            assert telemetry["degraded"] and telemetry["alive"] == 1
            # Degraded is still serving: the survivor answers, bit-exact.
            got = supervisor.call(pool.query_edges, list(workload[:30]), split=False)
            np.testing.assert_array_equal(got, oracle)
        finally:
            supervisor.close()
            pool.close()

    def test_respawned_worker_sheds_one_shot_faults(self, workload):
        """The fork-inheritance regression: a restarted reader must not
        re-fire the one-shot crash spec that killed its predecessor."""
        estimator = _build_estimator(num_edges=3_000, seed=31)
        oracle = np.asarray(estimator.query_edges(list(workload[:30])))
        faults.install(
            faults.FaultPlan(
                [faults.FaultSpec(site=faults.SITE_READER_CRASH_BATCH, at_hit=1)]
            )
        )
        try:
            pool = ReaderPool.from_estimator(
                estimator, PlanConfig(readers=1, restart_backoff_seconds=0.0)
            )
            supervisor = ReaderSupervisor(pool, background=False)
            try:
                # The worker inherits the armed plan at spawn and crashes on
                # its first batch; the respawn ships restart_plan() — one-shot
                # specs dropped — so the healed worker answers.
                got = supervisor.call(
                    pool.query_edges, list(workload[:30]), split=False
                )
                np.testing.assert_array_equal(got, oracle)
                assert supervisor.restarts >= 1
                assert supervisor.telemetry()["self_healed"]
            finally:
                supervisor.close()
                pool.close()
        finally:
            faults.clear()

    def test_persistent_fault_consumes_budget_then_survivor_serves(self, workload):
        """A slot that crashes on every restart exhausts its budget; the
        pinned-shard fault never touches the survivor."""
        estimator = _build_estimator(num_edges=3_000, seed=31)
        oracle = np.asarray(estimator.query_edges(list(workload[:30])))
        faults.install(
            faults.FaultPlan(
                [
                    faults.FaultSpec(
                        site=faults.SITE_READER_CRASH_BATCH,
                        at_hit=1,
                        shard=0,
                        persistent=True,
                    )
                ]
            )
        )
        try:
            pool = ReaderPool.from_estimator(
                estimator,
                PlanConfig(readers=2, max_restarts=2, restart_backoff_seconds=0.0),
            )
            supervisor = ReaderSupervisor(pool, background=False)
            try:
                for _ in range(12):
                    got = supervisor.call(
                        pool.query_edges, list(workload[:30]), split=False
                    )
                    np.testing.assert_array_equal(got, oracle)
                    if 0 in supervisor.exhausted:
                        break
                telemetry = supervisor.telemetry()
                assert telemetry["exhausted"] == [0]
                assert telemetry["alive"] == 1 and telemetry["degraded"]
            finally:
                supervisor.close()
                pool.close()
        finally:
            faults.clear()

    def test_respawn_worker_guards(self, estimator):
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=1))
        try:
            with pytest.raises(ReaderPoolError, match="still in service"):
                pool.respawn_worker(0)
            with pytest.raises(ReaderPoolError, match="no reader slot"):
                pool.respawn_worker(5)
        finally:
            pool.close()
        with pytest.raises(ReaderPoolError):
            pool.respawn_worker(0)

    def test_supervisor_close_is_idempotent(self, estimator):
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=1))
        supervisor = ReaderSupervisor(pool)  # background healer thread
        supervisor.close()
        supervisor.close()
        pool.close()
        assert supervisor.telemetry()["alive"] == 0

"""Reader-pool lifecycle and demux-ordering contracts.

The parallel read plane (:mod:`repro.queries.parallel`) maps a frozen
compiled-plan arena into N worker processes.  These tests pin its contracts:

* every public query path answers **bit-identically** to the in-process
  estimator, including when a batch is split into contiguous chunks across
  several workers and reassembled in submission order;
* the cache-merged serving path (:meth:`ReaderPool.query_edges_cached` over
  :meth:`~repro.queries.plan.HotEdgeCache.lookup_partial`) keeps exact batch
  ordering when cached hits interleave with misses gathered by ≥ 2 different
  workers — the cross-worker ordering regression;
* a dead worker surfaces as a typed :class:`ReaderWorkerError` naming the
  worker, after which the pool keeps serving degraded on the survivors, and
  the last death yields :class:`ReaderPoolError`;
* generation hot-swap mid-stream: answers always reflect exactly one plan
  generation, swaps are no-ops when nothing changed, and teardown releases
  every shared-memory block (no ``/dev/shm`` leaks), idempotently.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import GSketchConfig
from repro.core.gsketch import GSketch
from repro.datasets.zipf import zipf_stream
from repro.graph.sampling import reservoir_sample
from repro.queries.parallel import (
    PlanConfig,
    ReaderPool,
    ReaderPoolError,
    ReaderWorkerError,
)
from repro.queries.plan import HotEdgeCache


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def _build_estimator(num_edges: int = 6_000, seed: int = 7) -> GSketch:
    config = GSketchConfig(total_cells=4_000, depth=4, seed=seed)
    stream = zipf_stream(num_edges, population=256, seed=seed)
    sample = reservoir_sample(stream, 500, seed=seed)
    estimator = GSketch.build(sample, config, stream_size_hint=num_edges)
    estimator.process(stream)
    return estimator


@pytest.fixture(scope="module")
def estimator():
    return _build_estimator()


@pytest.fixture(scope="module")
def workload():
    """400 keys: seen edges plus never-seen sources (outlier-slot routing)."""
    stream = zipf_stream(6_000, population=256, seed=7)
    keys = sorted(stream.distinct_edges())[:380]
    keys += [(10**9 + index, 3) for index in range(20)]
    return keys


class TestQueryParity:
    def test_query_edges_split_across_workers(self, estimator, workload):
        oracle = np.asarray(estimator.query_edges(list(workload)))
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            got = pool.query_edges(list(workload))  # 400 keys → split in two
        np.testing.assert_array_equal(got, oracle)

    def test_query_edges_unsplit(self, estimator, workload):
        oracle = np.asarray(estimator.query_edges(list(workload)))
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            got = pool.query_edges(list(workload), split=False)
        np.testing.assert_array_equal(got, oracle)

    def test_map_batches_submission_order(self, estimator, workload):
        sources = np.array([k[0] for k in workload], dtype=np.int64)
        targets = np.array([k[1] for k in workload], dtype=np.int64)
        batches = [
            (sources[start : start + 50], targets[start : start + 50])
            for start in range(0, len(workload), 50)
        ]
        oracle = [
            np.asarray(estimator.query_edges(list(workload[start : start + 50])))
            for start in range(0, len(workload), 50)
        ]
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            answered = pool.map_batches(batches)
        assert len(answered) == len(oracle)
        for expected, got in zip(oracle, answered):
            np.testing.assert_array_equal(got, expected)

    def test_empty_batch(self, estimator):
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=1)) as pool:
            assert pool.query_edges([]).shape == (0,)

    def test_oversized_batch_is_typed_error(self, estimator):
        config = PlanConfig(readers=1, batch_capacity=1024)
        oversized = [(index, index + 1) for index in range(1_500)]
        with ReaderPool.from_estimator(estimator, config) as pool:
            with pytest.raises(ReaderPoolError, match="staging capacity"):
                pool.query_edges(oversized, split=False)


class TestCrossWorkerCacheOrdering:
    """The satellite regression: cached hits + multi-worker misses, in order."""

    def test_mixed_cached_and_gathered_keys_keep_order(self, estimator, workload):
        oracle = np.asarray(estimator.query_edges(list(workload)))
        cache = HotEdgeCache(capacity=4_096)
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            generation = pool.generation
            # Prime the memo with every *third* key, so the next coalesced
            # batch interleaves cached hits with >= 256 misses — enough for
            # query_columns to split the compacted misses across both
            # workers, exercising the scatter-by-miss-index reassembly.
            primed = list(workload[::3])
            warm = pool.query_edges_cached(primed, cache, generation)
            np.testing.assert_array_equal(warm, oracle[::3])
            assert len(cache) == len(set(primed))

            got = pool.query_edges_cached(list(workload), cache, generation)
            np.testing.assert_array_equal(got, oracle)

            # Now everything is memoized: the all-hit path must stay exact.
            again = pool.query_edges_cached(list(workload), cache, generation)
            np.testing.assert_array_equal(again, oracle)

    def test_cold_cache_stores_batch(self, estimator, workload):
        cache = HotEdgeCache(capacity=4_096)
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            got = pool.query_edges_cached(list(workload), cache, pool.generation)
        oracle = np.asarray(estimator.query_edges(list(workload)))
        np.testing.assert_array_equal(got, oracle)
        assert len(cache) == len(set(map(tuple, workload)))

    def test_generation_bump_invalidates_memo(self, estimator, workload):
        cache = HotEdgeCache(capacity=4_096)
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=1)) as pool:
            generation = pool.generation
            pool.query_edges_cached(list(workload), cache, generation)
            assert len(cache) > 0
            # A later generation must not serve stale entries.
            got = pool.query_edges_cached(list(workload), cache, generation + 1)
        oracle = np.asarray(estimator.query_edges(list(workload)))
        np.testing.assert_array_equal(got, oracle)


class TestWorkerDeath:
    def test_death_is_typed_and_pool_degrades(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=11)
        oracle = np.asarray(estimator.query_edges(list(workload[:40])))
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        try:
            victim = pool._readers[0].process
            victim.kill()
            victim.join(timeout=10)
            # Round-robin starts at worker 0: the dead pipe surfaces as a
            # typed error naming the worker, not a hang or a bare OSError.
            with pytest.raises(ReaderWorkerError) as info:
                pool.query_edges(list(workload[:40]), split=False)
            assert info.value.worker_index == 0

            # Degraded serving: the survivor answers, bit-exact.
            got = pool.query_edges(list(workload[:40]))
            np.testing.assert_array_equal(got, oracle)

            # Last survivor dies -> typed error, then pool-empty error.
            pool._readers[1].process.kill()
            pool._readers[1].process.join(timeout=10)
            with pytest.raises(ReaderWorkerError):
                pool.query_edges(list(workload[:40]))
            with pytest.raises(ReaderPoolError, match="no reader workers"):
                pool.query_edges(list(workload[:40]))
        finally:
            pool.close()

    def test_close_after_death_releases_everything(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=13)
        before = _shm_entries()
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        pool._readers[1].process.kill()
        pool._readers[1].process.join(timeout=10)
        pool.query_edges(list(workload[:10]), split=False)  # worker 0 still fine
        pool.close()
        assert _shm_entries() <= before


class TestHotSwap:
    def test_swap_mid_stream_tracks_generation(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=17)
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=2))
        try:
            first_gen = pool.generation
            before = np.asarray(estimator.query_edges(list(workload[:60])))
            np.testing.assert_array_equal(
                pool.query_edges(list(workload[:60])), before
            )

            # Ingest more stream (bumps the estimator generation), swap, and
            # check the pool serves the *new* counts.
            extra = zipf_stream(2_000, population=256, seed=23)
            estimator.process(extra)
            assert estimator.ingest_generation != first_gen
            assert pool.swap_from(estimator) is True
            assert pool.generation == estimator.ingest_generation

            after = np.asarray(estimator.query_edges(list(workload[:60])))
            np.testing.assert_array_equal(
                pool.query_edges(list(workload[:60])), after
            )
            # The workload gained mass, so at least one estimate moved.
            assert (after >= before).all() and (after > before).any()
        finally:
            pool.close()

    def test_swap_same_generation_is_noop(self, estimator):
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=1)) as pool:
            generation = pool.generation
            assert pool.swap_from(estimator) is False
            pool.swap(estimator.compile_plan())  # same generation: no-op
            assert pool.generation == generation

    def test_swap_releases_old_arena(self, workload):
        estimator = _build_estimator(num_edges=3_000, seed=19)
        before = _shm_entries()
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=1))
        try:
            estimator.process(zipf_stream(1_000, population=256, seed=29))
            pool.swap_from(estimator)
            pool.query_edges(list(workload[:20]), split=False)
        finally:
            pool.close()
        assert _shm_entries() <= before


class TestLifecycle:
    def test_close_is_idempotent_and_typed_after(self, estimator, workload):
        pool = ReaderPool.from_estimator(estimator, PlanConfig(readers=1))
        assert not pool.closed
        pool.close()
        pool.close()  # idempotent
        assert pool.closed
        with pytest.raises(ReaderPoolError, match="closed"):
            pool.query_edges(list(workload[:5]))
        with pytest.raises(ReaderPoolError, match="closed"):
            _ = pool.generation

    def test_no_shm_leaks_across_lifecycle(self, estimator, workload):
        before = _shm_entries()
        with ReaderPool.from_estimator(estimator, PlanConfig(readers=2)) as pool:
            pool.query_edges(list(workload))
        assert _shm_entries() <= before

    def test_config_validation(self, estimator):
        with pytest.raises(ReaderPoolError, match="readers >= 1"):
            ReaderPool.from_estimator(estimator, PlanConfig(readers=0))
        with pytest.raises(ValueError):
            PlanConfig(readers=-1)
        with pytest.raises(ValueError):
            PlanConfig(kernel="cython")
        with pytest.raises(ValueError):
            PlanConfig(scratch_mb=0)
        with pytest.raises(ValueError):
            PlanConfig(batch_capacity=64)

"""Fault injection, supervised recovery, degraded serving and durability.

The acceptance bar for the fault-tolerance plane: for every seeded worker
fault site, a crash-and-recover run ends with ``state_dict()`` **bit-exact**
to an unfaulted run of the same stream; torn or corrupt snapshot/checkpoint
bytes are rejected by the loaders with the damaged section named (never
silently deserialized); and degraded-mode answers on surviving shards still
satisfy their (widened) Equation-1 confidence statements against exact
ground truth.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from conftest import make_zipf_stream
from repro import faults
from repro.api.engine import SketchEngine
from repro.api.snapshot import (
    MANIFEST_NAME,
    SnapshotError,
    load_checkpoint,
    load_snapshot,
    save_checkpoint,
    save_snapshot,
)
from repro.core.config import GSketchConfig
from repro.distributed import (
    BatchJournal,
    ProcessPoolExecutor,
    RecoveryPolicy,
    SequentialExecutor,
    ShardExecutionError,
    ShardedGSketch,
    SharedMemoryExecutor,
)
from repro.graph.sampling import reservoir_sample

NUM_SHARDS = 3

#: Fast supervised policy for tests: cheap backoff, tight ack deadline so
#: dropped/slow acks surface quickly.
FAST_POLICY = RecoveryPolicy(
    max_restarts=3, backoff_seconds=0.01, ack_deadline_seconds=0.25
)

EXECUTORS = {"processes": ProcessPoolExecutor, "shared": SharedMemoryExecutor}


@pytest.fixture(scope="module")
def fault_stream():
    return make_zipf_stream(num_edges=3_000, population=200, seed=11)


@pytest.fixture(scope="module")
def fault_sample(fault_stream):
    return reservoir_sample(fault_stream, 800, seed=5)


@pytest.fixture(scope="module")
def fault_config():
    return GSketchConfig(total_cells=8_000, depth=4, seed=7)


@pytest.fixture(scope="module")
def baseline_state(fault_stream, fault_sample, fault_config):
    """state_dict of an unfaulted sequential run — the parity reference."""
    reference = _build(fault_sample, fault_config, fault_stream)
    reference.ingest(fault_stream, batch_size=256)
    return reference.state_dict()


def _build(sample, config, stream, executor=None, recovery=None):
    return ShardedGSketch.build(
        sample,
        config,
        num_shards=NUM_SHARDS,
        executor=executor or SequentialExecutor(),
        stream_size_hint=len(stream),
        recovery=recovery,
    )


def _assert_states_bit_exact(left: dict, right: dict) -> None:
    assert left["elements_processed"] == right["elements_processed"]
    assert left["outlier_elements"] == right["outlier_elements"]
    for shard_left, shard_right in zip(left["shards"], right["shards"]):
        assert shard_left["sketches"].keys() == shard_right["sketches"].keys()
        for partition, sketch_left in shard_left["sketches"].items():
            sketch_right = shard_right["sketches"][partition]
            assert np.array_equal(sketch_left["table"], sketch_right["table"]), (
                f"partition {partition}: counter tables diverge"
            )
            assert sketch_left["total"] == sketch_right["total"]


def _exact_truth(stream) -> dict:
    truth: dict = {}
    for edge in stream:
        key = (edge.source, edge.target)
        truth[key] = truth.get(key, 0.0) + edge.frequency
    return truth


class TestCrashRecoveryParity:
    """Every injection point: crash, recover, replay → bit-exact state."""

    @pytest.mark.parametrize("site", faults.WORKER_SITES)
    @pytest.mark.parametrize("executor_name", sorted(EXECUTORS))
    def test_seeded_fault_recovers_bit_exact(
        self,
        executor_name,
        site,
        fault_stream,
        fault_sample,
        fault_config,
        baseline_state,
    ):
        faults.install(faults.FaultPlan([faults.FaultSpec(site=site, at_hit=3)]))
        try:
            engine = _build(
                fault_sample,
                fault_config,
                fault_stream,
                executor=EXECUTORS[executor_name](),
                recovery=FAST_POLICY,
            )
            try:
                engine.ingest(fault_stream, batch_size=256)
                state = engine.state_dict()
                restarts = engine.supervisor.restarts
            finally:
                engine.close()
        finally:
            faults.clear()
        assert restarts > 0, "the injected fault never triggered a recovery"
        _assert_states_bit_exact(baseline_state, state)

    def test_recovery_telemetry_surfaces(
        self, fault_stream, fault_sample, fault_config
    ):
        """A recovered run reports its incidents through telemetry_snapshot."""
        faults.install(
            faults.FaultPlan(
                [faults.FaultSpec(site=faults.SITE_CRASH_BEFORE_APPLY, at_hit=2)]
            )
        )
        try:
            engine = _build(
                fault_sample,
                fault_config,
                fault_stream,
                executor=ProcessPoolExecutor(),
                recovery=FAST_POLICY,
            )
            try:
                engine.ingest(fault_stream, batch_size=256)
                engine.flush()
                recovery = engine.telemetry_snapshot()["recovery"]
            finally:
                engine.close()
        finally:
            faults.clear()
        assert recovery["restarts"] > 0
        assert recovery["dead_shards"] == []
        assert recovery["lost_elements"] == 0


class TestRetryExhaustion:
    """A persistently-crashing shard either poisons the run or degrades."""

    def test_exhaustion_without_degraded_serving_poisons(
        self, fault_stream, fault_sample, fault_config
    ):
        policy = RecoveryPolicy(max_restarts=2, backoff_seconds=0.01)
        spec = faults.FaultSpec(
            site=faults.SITE_CRASH_BEFORE_APPLY, at_hit=1, persistent=True
        )
        faults.install(faults.FaultPlan([spec]))
        try:
            engine = _build(
                fault_sample,
                fault_config,
                fault_stream,
                executor=ProcessPoolExecutor(),
                recovery=policy,
            )
            try:
                with pytest.raises(ShardExecutionError):
                    engine.ingest(fault_stream, batch_size=256)
                    engine.flush()
                with pytest.raises(RuntimeError, match="incomplete"):
                    engine.state_dict()
            finally:
                engine.close()
        finally:
            faults.clear()

    @pytest.mark.parametrize("executor_name", sorted(EXECUTORS))
    def test_degraded_serving_keeps_widened_bounds_sound(
        self, executor_name, fault_stream, fault_sample, fault_config
    ):
        policy = RecoveryPolicy(
            max_restarts=2,
            backoff_seconds=0.01,
            ack_deadline_seconds=0.25,
            degraded_serving=True,
        )
        spec = faults.FaultSpec(
            site=faults.SITE_CRASH_BEFORE_APPLY, at_hit=1, shard=1, persistent=True
        )
        faults.install(faults.FaultPlan([spec]))
        try:
            engine = _build(
                fault_sample,
                fault_config,
                fault_stream,
                executor=EXECUTORS[executor_name](),
                recovery=policy,
            )
            try:
                engine.ingest(fault_stream, batch_size=256)
                engine.flush()
                assert engine.degraded
                assert engine.dead_shards == (1,)
                supervisor = engine.supervisor
                assert supervisor.lost_elements > 0
                assert supervisor.lost_frequency(1) > 0.0

                truth = _exact_truth(fault_stream)
                keys = sorted(truth)[:300]
                intervals, partitions = engine.confidence_batch_with_partitions(keys)
                widened = 0
                for key, interval, partition in zip(keys, intervals, partitions):
                    shard = engine.plan.shard_of(partition)
                    if shard in engine.dead_shards:
                        assert interval.upper_slack > 0.0
                        widened += 1
                    else:
                        assert interval.upper_slack == 0.0
                    # The (possibly widened) Equation-1 statement stays sound.
                    assert interval.contains(truth[key]), (
                        f"{key}: truth {truth[key]} outside "
                        f"[{interval.lower}, {interval.upper}]"
                    )
                assert widened > 0, "no query landed on the dead shard"
            finally:
                engine.close()
        finally:
            faults.clear()

    def test_degraded_provenance_through_the_facade(
        self, fault_stream, fault_sample, fault_config
    ):
        spec = faults.FaultSpec(
            site=faults.SITE_CRASH_BEFORE_APPLY, at_hit=1, shard=1, persistent=True
        )
        faults.install(faults.FaultPlan([spec]))
        try:
            engine = (
                SketchEngine.builder()
                .config(fault_config)
                .sample(fault_sample)
                .stream_size_hint(len(fault_stream))
                .sharded(NUM_SHARDS, "processes")
                .recovery(
                    max_restarts=1, backoff_seconds=0.01, degraded_serving=True
                )
                .build()
            )
            try:
                engine.ingest(fault_stream, batch_size=256)
                keys = sorted(_exact_truth(fault_stream))[:200]
                estimates = engine.query(keys)
                degraded = [e for e in estimates if e.provenance.degraded]
                healthy = [e for e in estimates if not e.provenance.degraded]
                assert degraded and healthy
                for estimate in degraded:
                    assert estimate.provenance.shard in engine.estimator.dead_shards
                    assert estimate.interval.upper_slack > 0.0
                    assert estimate.to_dict()["degraded"] is True
                    assert "upper_slack" in estimate.to_dict()["interval"]
                for estimate in healthy:
                    assert "degraded" not in estimate.to_dict()
                summary = engine.describe()
                assert summary["degraded"] is True
                assert summary["dead_shards"] == [1]
            finally:
                engine.close()
        finally:
            faults.clear()


class TestDurability:
    """Torn/corrupt snapshot and checkpoint bytes are rejected, named."""

    @pytest.fixture()
    def ingested(self, fault_stream, fault_sample, fault_config):
        engine = _build(fault_sample, fault_config, fault_stream)
        engine.ingest(fault_stream, batch_size=512)
        return engine

    def test_truncated_snapshot_names_section(self, ingested, tmp_path):
        path = save_snapshot(ingested, tmp_path / "s.snap")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 32])
        with pytest.raises(SnapshotError, match="truncated in section"):
            load_snapshot(path)

    def test_bit_flipped_snapshot_names_section(self, ingested, tmp_path):
        path = save_snapshot(ingested, tmp_path / "s.snap")
        data = bytearray(path.read_bytes())
        data[-100] ^= 0xFF  # lands in the last section's payload
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum of section"):
            load_snapshot(path)

    def test_injected_torn_and_corrupt_writes_rejected(self, ingested, tmp_path):
        for site, pattern in (
            (faults.SITE_TORN_CHECKPOINT, "truncated"),
            (faults.SITE_CORRUPT_SNAPSHOT, "checksum"),
        ):
            faults.install(faults.FaultPlan([faults.FaultSpec(site=site)]))
            try:
                path = save_snapshot(ingested, tmp_path / f"{site}.snap")
            finally:
                faults.clear()
            with pytest.raises(SnapshotError, match=pattern):
                load_snapshot(path)

    def test_injected_torn_checkpoint_rejected(self, ingested, tmp_path):
        faults.install(
            faults.FaultPlan([faults.FaultSpec(site=faults.SITE_TORN_CHECKPOINT)])
        )
        try:
            save_checkpoint(ingested, tmp_path / "ckpt")
        finally:
            faults.clear()
        with pytest.raises(SnapshotError, match="truncated"):
            load_checkpoint(tmp_path / "ckpt")

    def test_v1_snapshot_still_loads(self, ingested, tmp_path):
        legacy = {
            "format": "repro.sketch-snapshot",
            "version": 1,
            "backend": "sharded",
            "state": ingested.state_dict(),
        }
        path = tmp_path / "v1.snap"
        path.write_bytes(pickle.dumps(legacy))
        revived = load_snapshot(path)
        _assert_states_bit_exact(ingested.state_dict(), revived.state_dict())

    def test_snapshot_round_trip_is_bit_exact(self, ingested, tmp_path):
        path = save_snapshot(ingested, tmp_path / "s.snap")
        revived = load_snapshot(path)
        _assert_states_bit_exact(ingested.state_dict(), revived.state_dict())

    def test_incremental_checkpoint_rewrites_only_dirty_shards(
        self, fault_stream, fault_sample, fault_config, tmp_path
    ):
        import json

        engine = _build(fault_sample, fault_config, fault_stream)
        engine.ingest(fault_stream, batch_size=512)
        directory = tmp_path / "ckpt"
        save_checkpoint(engine, directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        first = {entry["name"]: entry["file"] for entry in manifest["sections"]}

        # Route 100 more edges through a single source vertex: exactly one
        # shard goes dirty.
        from repro.graph.stream import GraphStream

        source = next(iter(_exact_truth(fault_stream)))[0]
        extra = GraphStream.from_tuples(
            (source, target, float(target), 1.0) for target in range(100)
        )
        engine.ingest(extra, batch_size=512)
        save_checkpoint(engine, directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        second = {entry["name"]: entry["file"] for entry in manifest["sections"]}

        rewritten = sorted(name for name in first if first[name] != second[name])
        assert "state" in rewritten
        assert len([n for n in rewritten if n.startswith("shard-")]) == 1
        # Superseded section files are cleaned up; live ones all resolve.
        for name in rewritten:
            assert not (directory / first[name]).exists()
        for file_name in second.values():
            assert (directory / file_name).exists()
        revived = load_checkpoint(directory)
        _assert_states_bit_exact(engine.state_dict(), revived.state_dict())

    def test_engine_checkpoint_restore_round_trip(
        self, fault_stream, fault_sample, fault_config, tmp_path
    ):
        engine = (
            SketchEngine.builder()
            .config(fault_config)
            .sample(fault_sample)
            .sharded(NUM_SHARDS)
            .build()
        )
        engine.ingest(fault_stream, batch_size=512)
        engine.checkpoint(tmp_path / "ckpt")
        revived = SketchEngine.restore(tmp_path / "ckpt")
        assert revived.backend == "sharded"
        keys = sorted(_exact_truth(fault_stream))[:100]
        assert [e.value for e in revived.query(keys)] == [
            e.value for e in engine.query(keys)
        ]

    def test_missing_manifest_and_section_are_named(self, ingested, tmp_path):
        with pytest.raises(SnapshotError, match=MANIFEST_NAME):
            load_checkpoint(tmp_path / "nowhere")
        directory = save_checkpoint(ingested, tmp_path / "ckpt")
        victim = next(directory.glob("shard-*.bin"))
        victim.unlink()
        with pytest.raises(SnapshotError, match="missing checkpoint section"):
            load_checkpoint(directory)


class TestFaultPlanAndJournalUnits:
    """Pure in-process units: schedules, the journal, policy validation."""

    def test_seeded_plan_is_deterministic(self):
        left = faults.FaultPlan.seeded(42, num_shards=4)
        right = faults.FaultPlan.seeded(42, num_shards=4)
        assert [
            (s.site, s.at_hit, s.shard) for s in left.specs
        ] == [(s.site, s.at_hit, s.shard) for s in right.specs]
        different = faults.FaultPlan.seeded(43, num_shards=4)
        assert [(s.site, s.at_hit, s.shard) for s in left.specs] != [
            (s.site, s.at_hit, s.shard) for s in different.specs
        ]

    def test_one_shot_specs_do_not_ship_to_restarted_workers(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec(site=faults.SITE_DROP_ACK, at_hit=1)]
        )
        # One-shot specs never re-ship: a restarted worker must not re-crash
        # on the fault that killed its predecessor.
        assert plan.for_restart() is None
        assert plan.arm(faults.SITE_DROP_ACK, shard=0) is not None

    def test_persistent_specs_survive_restart(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec(site=faults.SITE_DROP_ACK, at_hit=1, persistent=True)]
        )
        restart = plan.for_restart()
        assert restart is not None
        assert restart.arm(faults.SITE_DROP_ACK, shard=0) is not None
        # Once fired in this process, even a persistent spec stops shipping.
        # (In production the plan crosses a process boundary, so the worker
        # fires its own copy; this in-process view shares the spec objects.)
        assert plan.for_restart() is None

    def test_journal_retention_and_replay_floor(self):
        journal = BatchJournal(limit=8)
        seq_a = journal.append({0: ["batch-a"], 1: ["batch-a1"]})
        seq_b = journal.append({0: ["batch-b"]})
        assert (seq_a, seq_b) == (1, 2)
        assert [seq for seq, _ in journal.entries_for(0, after=None)] == [1, 2]
        assert [seq for seq, _ in journal.entries_for(0, after=seq_a)] == [2]
        assert [seq for seq, _ in journal.entries_for(1, after=None)] == [1]
        journal.prune_acked({0: seq_b, 1: seq_a})
        assert len(journal) == 0

    def test_journal_limit_forces_flush(self):
        from repro.distributed.recovery import ShardSupervisor

        policy = RecoveryPolicy(journal_limit=2)
        supervisor = ShardSupervisor(policy, num_shards=2)
        executor = ProcessPoolExecutor()  # journal_retention = "sync"
        assert not supervisor.needs_flush(executor)
        supervisor.journal.append({0: ["a"]})
        supervisor.journal.append({1: ["b"]})
        assert supervisor.needs_flush(executor)
        # Retention "none" executors never hold journal entries back.
        assert not supervisor.needs_flush(SequentialExecutor())

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            RecoveryPolicy(max_restarts=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(journal_limit=0)

"""The telemetry plane: registry, exposition, tracing, accuracy, surfaces.

Covers the metric primitives and their enabled-flag gating, the Prometheus
text renderer (escaping, bucket cumulativity, a line-grammar validator), the
trace ring/file sinks, the exact-census accuracy tracker, per-backend
``telemetry_snapshot()`` shapes, ``SketchEngine.metrics()`` and the
``python -m repro stats`` CLI.
"""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro.api.cli import main as cli_main
from repro.api.engine import SketchEngine
from repro.core.config import GSketchConfig
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.core.router import OUTLIER_PARTITION
from repro.core.windowed import WindowedGSketch
from repro.distributed.coordinator import ShardedGSketch
from repro.graph.batch import EdgeBatch
from repro.observability import (
    AccuracyTracker,
    MetricsRegistry,
    configure_tracing,
    get_recorder,
    get_registry,
    registry_excerpt,
    render_prometheus,
    set_enabled,
    sketch_health,
    span,
    stage_clock,
    trace_events,
)
from repro.observability import metrics as obs_metrics
from repro.observability.metrics import DEFAULT_BUCKET_BOUNDS, NOOP_CLOCK, bucket_index
from repro.sketches.countmin import CountMinSketch


@pytest.fixture
def telemetry():
    """Enable telemetry against a clean global registry/recorder; restore after."""
    was = obs_metrics.enabled()
    get_registry().reset()
    get_recorder().reset()
    set_enabled(True)
    yield get_registry()
    set_enabled(was)
    get_recorder().attach_sink(None)


@pytest.fixture
def disabled_telemetry():
    was = obs_metrics.enabled()
    set_enabled(False)
    yield get_registry()
    set_enabled(was)


def _tiny_stream(n=2_000, seed=3):
    from repro.datasets.zipf import zipf_stream

    return zipf_stream(n, population=64, seed=seed)


# ---------------------------------------------------------------------- #
# Metric primitives and the enable flag
# ---------------------------------------------------------------------- #
def test_counter_and_gauge_gate_on_enabled_flag(disabled_telemetry):
    registry = MetricsRegistry()
    counter = registry.counter("t_total")
    gauge = registry.gauge("t_gauge")
    counter.inc()
    gauge.inc(2.0)
    assert counter.value == 0.0  # disabled: increments are dropped
    assert gauge.value == 0.0
    gauge.set(5.0)  # set() is ungated: snapshots mirror while disabled
    assert gauge.value == 5.0
    counter.set_total(7.0)  # ungated mirror for always-on sources
    assert counter.value == 7.0
    set_enabled(True)
    try:
        counter.inc(3.0)
        gauge.inc()
    finally:
        set_enabled(False)
    assert counter.value == 10.0
    assert gauge.value == 6.0


def test_histogram_buckets_and_quantiles(telemetry):
    registry = MetricsRegistry()
    histogram = registry.histogram("t_seconds")
    histogram.observe(3e-6)  # lands in the (2µs, 4µs] bucket
    histogram.observe(3e-6)
    histogram.observe(100.0)  # beyond the last bound: +Inf bucket
    assert histogram.count == 3
    assert histogram.sum == pytest.approx(100.000006)
    cumulative = histogram.cumulative_buckets()
    assert cumulative[-1] == (float("inf"), 3)
    index = bucket_index(DEFAULT_BUCKET_BOUNDS, 3e-6)
    assert DEFAULT_BUCKET_BOUNDS[index] == pytest.approx(4e-6)
    assert histogram.quantile(0.5) == pytest.approx(4e-6)
    assert histogram.quantile(0.99) == float("inf")
    assert histogram.mean == pytest.approx(100.000006 / 3)


def test_registry_get_or_create_and_type_conflict():
    registry = MetricsRegistry()
    a = registry.counter("x_total", labels={"stage": "route"})
    b = registry.counter("x_total", labels={"stage": "route"})
    c = registry.counter("x_total", labels={"stage": "apply"})
    assert a is b and a is not c
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x_total")


def test_registry_reset_keeps_handles_connected(telemetry):
    registry = MetricsRegistry()
    counter = registry.counter("y_total")
    histogram = registry.histogram("y_seconds")
    counter.inc(4.0)
    histogram.observe(0.5)
    registry.reset()
    assert counter.value == 0.0
    assert histogram.count == 0
    counter.inc()  # the import-time handle must still feed the registry
    histogram.observe(0.25)
    snapshot = {entry["name"]: entry for entry in registry.snapshot()}
    assert snapshot["y_total"]["value"] == 1.0
    assert snapshot["y_seconds"]["count"] == 1


# ---------------------------------------------------------------------- #
# Prometheus exposition
# ---------------------------------------------------------------------- #
#: One metric line: name{labels} value — labels optional, value a float,
#: +/-Inf or NaN.  Comment lines are # HELP/# TYPE.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
)
_COMMENT_LINE = re.compile(
    r"^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram))$"
)


def _validate_exposition(text: str) -> None:
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("#"):
            assert _COMMENT_LINE.match(line), f"bad comment line: {line!r}"
        else:
            assert _SAMPLE_LINE.match(line), f"bad sample line: {line!r}"


def test_prometheus_renders_valid_lines(telemetry):
    registry = MetricsRegistry()
    registry.counter("c_total", "a counter", labels={"backend": "gsketch"}).inc(2)
    registry.gauge("g_ratio", "a gauge").set(0.5)
    registry.histogram("h_seconds", "a histogram").observe(1e-5)
    text = render_prometheus(registry)
    _validate_exposition(text)
    assert '# TYPE c_total counter' in text
    assert 'c_total{backend="gsketch"} 2' in text
    assert "# HELP g_ratio a gauge" in text


def test_prometheus_escapes_label_values(telemetry):
    registry = MetricsRegistry()
    registry.counter(
        "esc_total", labels={"path": 'a\\b"c\nd'}
    ).inc()
    text = render_prometheus(registry)
    assert 'path="a\\\\b\\"c\\nd"' in text
    _validate_exposition(text)


def test_prometheus_histogram_buckets_are_cumulative(telemetry):
    registry = MetricsRegistry()
    histogram = registry.histogram("lat_seconds")
    for value in (1.5e-6, 3e-6, 3e-6, 1e3):
        histogram.observe(value)
    text = render_prometheus(registry)
    bucket_counts = [
        int(match.group(2))
        for match in re.finditer(r'lat_seconds_bucket\{le="([^"]+)"\} (\d+)', text)
    ]
    assert bucket_counts == sorted(bucket_counts)  # monotone non-decreasing
    assert bucket_counts[-1] == 4  # +Inf covers every observation
    assert 'le="+Inf"' in text
    assert "lat_seconds_count 4" in text
    assert re.search(r"lat_seconds_sum \d", text)


def test_registry_excerpt_filters_and_compacts(telemetry):
    registry = MetricsRegistry()
    registry.counter("repro_ingest_batches_total").inc()
    registry.histogram("repro_ingest_stage_seconds").observe(0.1)
    registry.counter("repro_query_batches_total").inc()
    entries = registry_excerpt(("repro_ingest_",), registry)
    names = {entry["name"] for entry in entries}
    assert names == {"repro_ingest_batches_total", "repro_ingest_stage_seconds"}
    assert all("buckets" not in entry for entry in entries)


# ---------------------------------------------------------------------- #
# Tracing
# ---------------------------------------------------------------------- #
def test_span_and_stage_clock_noop_when_disabled(disabled_telemetry):
    assert span("ingest", "apply") is NOOP_CLOCK
    assert stage_clock("ingest", {}) is NOOP_CLOCK
    with span("ingest", "apply"):
        pass
    assert trace_events() == []


def test_span_records_event_and_histogram(telemetry):
    registry = MetricsRegistry()
    histogram = registry.histogram("sp_seconds")
    get_recorder().reset()
    with span("query", "gather", histogram, executor="threads"):
        pass
    events = trace_events()
    assert len(events) == 1
    assert events[0]["plane"] == "query"
    assert events[0]["stage"] == "gather"
    assert events[0]["executor"] == "threads"
    assert events[0]["seconds"] >= 0.0
    assert histogram.count == 1


def test_trace_ring_bounds_and_counts_drops(telemetry):
    recorder = get_recorder()
    recorder.reset(ring_size=4)
    for index in range(6):
        recorder.record("ingest", f"s{index}", 0.0)
    events = recorder.events()
    assert len(events) == 4
    assert events[0]["stage"] == "s2"  # oldest two evicted
    assert recorder.dropped == 2


def test_trace_file_sink_writes_json_lines(telemetry, tmp_path):
    path = tmp_path / "trace.jsonl"
    configure_tracing(str(path))
    with span("build", "split"):
        pass
    get_recorder().flush()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines and lines[-1]["plane"] == "build"
    assert lines[-1]["stage"] == "split"
    configure_tracing(None)


# ---------------------------------------------------------------------- #
# Accuracy tracker
# ---------------------------------------------------------------------- #
def test_accuracy_tracker_counts_exactly():
    rng = np.random.default_rng(5)
    edges = [(int(s), int(t)) for s, t in rng.integers(0, 12, size=(600, 2))]
    truth: dict = {}
    tracker = AccuracyTracker(capacity=1_000)  # room for every distinct key
    for start in range(0, len(edges), 100):
        chunk = edges[start : start + 100]
        tracker.observe_batch(
            EdgeBatch.from_arrays(
                np.asarray([s for s, _ in chunk], dtype=np.int64),
                np.asarray([t for _, t in chunk], dtype=np.int64),
            )
        )
        for key in chunk:
            truth[key] = truth.get(key, 0.0) + 1.0
    assert tracker.samples == len(truth)
    assert tracker.elements_observed == len(edges)
    assert tracker.tracked_mass == pytest.approx(sum(truth.values()))
    # Replay through an exact "estimator": errors must be zero.
    lookup = dict(truth)

    class Exact:
        def query_edges(self, keys):
            return [lookup[tuple(k)] for k in keys]

        def confidence_batch(self, keys):
            from repro.core.estimator import ConfidenceInterval

            return [
                ConfidenceInterval(lookup[tuple(k)], 0.5, 0.01) for k in keys
            ]

    report = tracker.report(Exact())
    assert report["mean_error"] == 0.0
    assert report["bound_violations"] == 0
    assert report["underestimates"] == 0


def test_accuracy_tracker_caps_admission():
    tracker = AccuracyTracker(capacity=8)
    batch = EdgeBatch.from_arrays(
        np.arange(32, dtype=np.int64), np.arange(1, 33, dtype=np.int64)
    )
    tracker.observe_batch(batch)
    assert tracker.samples == 8
    tracker.observe_batch(batch)  # steady state: tracked keys keep counting
    assert tracker.samples == 8
    assert tracker.tracked_mass == pytest.approx(16.0)


def test_accuracy_tracker_report_against_real_sketch():
    stream = _tiny_stream()
    estimator = GlobalSketch(GSketchConfig(total_cells=4_000, depth=4, seed=7))
    tracker = AccuracyTracker(capacity=256)
    batch = stream.to_batch()
    tracker.observe_batch(batch)
    estimator.ingest_batch(batch)
    report = tracker.report(estimator)
    assert report["samples"] > 0
    # Count-Min never underestimates, and truth here covers the full stream.
    assert report["underestimates"] == 0
    assert report["mean_error"] >= 0.0
    assert 0.0 <= report["bound_violation_ratio"] <= 1.0


def test_accuracy_tracker_empty_report_shape():
    report = AccuracyTracker().report(estimator=None)
    assert report["samples"] == 0
    assert report["bound_violation_ratio"] == 0.0


# ---------------------------------------------------------------------- #
# Health and per-backend snapshots
# ---------------------------------------------------------------------- #
def test_sketch_health_summary():
    sketch = CountMinSketch(width=50, depth=4, seed=1)
    keys = np.arange(10, dtype=np.uint64)
    sketch.update_batch(keys, np.full(10, 2.0))
    health = sketch_health(sketch)
    assert health["cells"] == 200
    assert 0.0 < health["fill_ratio"] <= 1.0
    assert health["total_count"] == pytest.approx(20.0)
    assert health["max_cell"] >= 2.0
    assert health["error_bound"] > 0.0


def test_telemetry_snapshot_shapes_per_backend(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config)
    gsketch.process(zipf_stream)
    snapshot = gsketch.telemetry_snapshot()
    assert snapshot["backend"] == "gsketch"
    assert snapshot["elements_processed"] == len(zipf_stream)
    partitions = {table["partition"] for table in snapshot["tables"]}
    assert OUTLIER_PARTITION in partitions
    assert snapshot["plan"]["compiled"] is False
    gsketch.query_edges(sorted(zipf_stream.distinct_edges())[:4])
    assert gsketch.telemetry_snapshot()["plan"]["compiled"] is True

    baseline = GlobalSketch(small_config)
    baseline.process(zipf_stream)
    snapshot = baseline.telemetry_snapshot()
    assert snapshot["backend"] == "global"
    assert len(snapshot["tables"]) == 1

    sharded = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    sharded.ingest(zipf_stream)
    snapshot = sharded.telemetry_snapshot()
    assert snapshot["backend"] == "sharded"
    assert snapshot["num_shards"] == 2
    assert all("shard" in table for table in snapshot["tables"])

    windowed = WindowedGSketch(
        small_config, window_length=len(zipf_stream) / 3.0, sample_size=200, seed=7
    )
    windowed.process(zipf_stream)
    snapshot = windowed.telemetry_snapshot()
    assert snapshot["backend"] == "windowed"
    assert snapshot["num_windows"] == len(snapshot["windows"])
    assert all("tables" in window for window in snapshot["windows"])


# ---------------------------------------------------------------------- #
# Instrumented hot paths
# ---------------------------------------------------------------------- #
def test_ingest_and_query_stages_recorded(telemetry):
    stream = _tiny_stream()
    engine = (
        SketchEngine.builder()
        .config(total_cells=4_000, depth=4, seed=7)
        .dataset(stream)
        .build()
    )
    engine.ingest(stream, batch_size=512)
    keys = sorted(stream.distinct_edges())[:32]
    engine.frozen()
    engine.estimator.query_edges(keys)
    snapshot = {
        (entry["name"], tuple(sorted(entry["labels"].items()))): entry
        for entry in get_registry().snapshot()
    }
    for stage in ("route", "apply"):
        entry = snapshot[("repro_ingest_stage_seconds", (("stage", stage),))]
        assert entry["count"] > 0
    for stage in ("lexsort", "split", "materialize"):
        entry = snapshot[("repro_build_stage_seconds", (("stage", stage),))]
        assert entry["count"] > 0
    for stage in ("hash", "route", "gather"):
        entry = snapshot[("repro_query_stage_seconds", (("stage", stage),))]
        assert entry["count"] > 0
    assert snapshot[("repro_ingest_elements_total", ())]["value"] == len(stream)
    assert snapshot[("repro_query_plan_seconds", ())]["count"] > 0


def test_disabled_telemetry_records_nothing(disabled_telemetry):
    get_registry().reset()
    stream = _tiny_stream()
    engine = (
        SketchEngine.builder()
        .config(total_cells=4_000, depth=4, seed=7)
        .dataset(stream)
        .build()
    )
    engine.ingest(stream, batch_size=512)
    engine.estimator.query_edges(sorted(stream.distinct_edges())[:8])
    for entry in get_registry().snapshot():
        if entry["name"].startswith(("repro_ingest_", "repro_query_", "repro_build_")):
            assert entry.get("count", entry.get("value")) == 0


def test_engine_metrics_document(telemetry):
    stream = _tiny_stream()
    engine = (
        SketchEngine.builder()
        .config(total_cells=4_000, depth=4, seed=7)
        .dataset(stream)
        .build()
    )
    engine.ingest(stream, batch_size=512)
    keys = sorted(stream.distinct_edges())[:4]
    engine.estimator.query_edges(keys)
    engine.estimator.query_edges(keys)  # hot-cache hit
    document = engine.metrics()
    assert document["backend"] == "gsketch"
    assert document["accuracy"]["samples"] > 0
    assert document["accuracy"]["underestimates"] == 0
    assert document["health"]["hot_cache"]["hits"] >= 1
    names = {entry["name"] for entry in document["metrics"]}
    # The acceptance surface: stage timings, query latency, hot-cache
    # counters, fill ratios and the accuracy summary all in one registry.
    assert {
        "repro_ingest_stage_seconds",
        "repro_query_plan_seconds",
        "repro_hot_cache_hits_total",
        "repro_sketch_fill_ratio",
        "repro_accuracy_mean_error",
        "repro_accuracy_bound_violation_ratio",
    } <= names
    text = render_prometheus()
    _validate_exposition(text)
    assert "repro_sketch_fill_ratio{" in text
    assert "repro_accuracy_mean_error{" in text


def test_shared_memory_executor_telemetry(telemetry):
    from repro.distributed.executor import make_executor
    from repro.graph.sampling import reservoir_sample

    stream = _tiny_stream()
    sample = reservoir_sample(stream, 300, seed=7)
    sharded = ShardedGSketch.build(
        sample,
        GSketchConfig(total_cells=4_000, depth=4, seed=7),
        num_shards=2,
        executor=make_executor("shared"),
    )
    try:
        sharded.ingest(stream, batch_size=512)
        sharded.flush()
    finally:
        sharded.close()
    snapshot = {entry["name"]: entry for entry in get_registry().snapshot()}
    assert snapshot["repro_shared_batches_total"]["value"] > 0
    assert snapshot["repro_shared_dispatch_seconds_total"]["value"] >= 0.0
    planes = {event["stage"] for event in trace_events() if event["plane"] == "ingest"}
    assert "shm_dispatch" in planes


def test_instrumented_executor_deprecation_warning():
    from repro.distributed.executor import InstrumentedExecutor, SequentialExecutor

    with pytest.warns(DeprecationWarning, match="InstrumentedExecutor"):
        InstrumentedExecutor(SequentialExecutor())


# ---------------------------------------------------------------------- #
# CLI stats surface
# ---------------------------------------------------------------------- #
def test_cli_stats_json(capsys):
    was = obs_metrics.enabled()
    try:
        exit_code = cli_main(
            [
                "stats",
                "--dataset",
                "zipf",
                "--edges",
                "2000",
                "--cells",
                "4000",
                "--queries",
                "32",
            ]
        )
    finally:
        set_enabled(was)
    assert exit_code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["backend"] == "gsketch"
    assert document["accuracy"]["samples"] > 0
    assert document["health"]["hot_cache"]["hits"] > 0
    names = {entry["name"] for entry in document["metrics"]}
    assert "repro_ingest_stage_seconds" in names
    assert "repro_query_plan_seconds" in names


def test_cli_stats_prometheus(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    was = obs_metrics.enabled()
    try:
        exit_code = cli_main(
            [
                "stats",
                "--dataset",
                "zipf",
                "--edges",
                "2000",
                "--cells",
                "4000",
                "--queries",
                "32",
                "--format",
                "prometheus",
                "--trace-file",
                str(trace_path),
            ]
        )
    finally:
        set_enabled(was)
        configure_tracing(None)
    assert exit_code == 0
    text = capsys.readouterr().out
    _validate_exposition(text)
    for family in (
        "repro_ingest_stage_seconds",
        "repro_query_plan_seconds",
        "repro_hot_cache_hits_total",
        "repro_sketch_fill_ratio",
        "repro_accuracy_mean_error",
    ):
        assert family in text
    events = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert any(event["plane"] == "ingest" for event in events)


# ---------------------------------------------------------------------- #
# Overhead bench plumbing (numbers gated by experiments/overhead_bench.py)
# ---------------------------------------------------------------------- #
def test_overhead_bench_smoke():
    from repro.experiments.overhead_bench import run_overhead_bench

    report = run_overhead_bench(
        num_edges=2_000,
        batch_size=512,
        query_batch=64,
        num_queries=256,
        rounds=1,
        total_cells=4_000,
        sample_size=300,
        calibration_iterations=2_000,
    )
    assert report["disabled_overhead_ratio"] >= 0.0
    assert report["hook_counts"]["ingest_batches"] == 4
    assert set(report["primitives_ns"]) == {
        "gated_check",
        "observe",
        "stage_clock",
        "lap",
    }
    assert not obs_metrics.enabled()  # the bench restores the disabled state

"""``python -m repro`` CLI: build → ingest → query → bench smoke coverage.

Commands run in-process through :func:`repro.api.cli.main` so the suite stays
fast; every command must emit a single parseable JSON document.
"""

from __future__ import annotations

import json


from repro.api.cli import main

RMAT = ["--dataset", "rmat", "--edges", "3000", "--scale", "10"]


def run_cli(capsys, *argv: str) -> dict:
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return json.loads(captured.out)


def test_build_ingest_query_bench_roundtrip(tmp_path, capsys):
    snapshot = str(tmp_path / "sketch.snap")

    built = run_cli(
        capsys,
        "build", *RMAT, "--cells", "12000", "--depth", "4", "--ingest", "--out", snapshot,
    )
    assert built["backend"] == "gsketch"
    assert built["ingested"] == 3000
    assert built["elements_processed"] == 3000

    ingested = run_cli(capsys, "ingest", "--snapshot", snapshot, *RMAT)
    assert ingested["ingested"] == 3000
    assert ingested["elements_processed"] == 6000

    queried = run_cli(
        capsys,
        "query", "--snapshot", snapshot, "--edge", "3", "17", "--sample", "4", *RMAT,
    )
    assert queried["backend"] == "gsketch"
    assert len(queried["estimates"]) == 5
    for estimate in queried["estimates"]:
        assert estimate["value"] >= 0.0
        assert "interval" in estimate

    benched = run_cli(
        capsys, "bench", *RMAT, "--cells", "12000", "--depth", "4", "--queries", "50"
    )
    assert benched["edges"] == 3000
    assert benched["queries"] == 50
    assert benched["edges_per_second"] > 0


def test_query_bench_mode(capsys):
    report = run_cli(
        capsys,
        "query-bench", *RMAT, "--cells", "12000", "--depth", "4",
        "--queries", "64", "--batch-sizes", "1", "8",
        "--rounds", "1", "--repeats", "1",
    )
    assert report["benchmark"] == "query-throughput"
    assert report["backend"] == "gsketch"
    assert report["parity_ok"] is True
    assert {row["batch_size"] for row in report["results"]} == {1, 8}
    for row in report["results"]:
        assert row["direct_qps"] > 0 and row["plan_qps"] > 0


def test_query_bench_baseline_conflicts(capsys):
    code = main(
        ["query-bench", *RMAT, "--baseline", "--sharded", "2"]
    )
    assert code == 2
    err = json.loads(capsys.readouterr().err)
    assert "baseline" in err["error"]


def test_build_variants(tmp_path, capsys):
    sharded_snap = str(tmp_path / "sharded.snap")
    built = run_cli(
        capsys,
        "build", *RMAT, "--cells", "12000", "--sharded", "2", "--ingest",
        "--out", sharded_snap,
    )
    assert built["backend"] == "sharded"
    assert built["num_shards"] == 2

    windowed_snap = str(tmp_path / "windowed.snap")
    built = run_cli(
        capsys,
        "build", *RMAT, "--cells", "12000", "--windowed", "1000", "--ingest",
        "--out", windowed_snap,
    )
    assert built["backend"] == "windowed"
    assert built["num_windows"] == 3

    queried = run_cli(
        capsys,
        "query", "--snapshot", windowed_snap, "--edge", "3", "17",
        "--window", "0", "1000",
    )
    assert queried["backend"] == "windowed"
    assert queried["estimates"][0]["value"] >= 0.0

    baseline_snap = str(tmp_path / "global.snap")
    built = run_cli(
        capsys,
        "build", *RMAT, "--cells", "12000", "--baseline", "--ingest", "--out", baseline_snap,
    )
    assert built["backend"] == "global"


def test_workload_aware_build(tmp_path, capsys):
    snapshot = str(tmp_path / "workload.snap")
    built = run_cli(
        capsys,
        "build", *RMAT, "--cells", "12000", "--workload-alpha", "1.4",
        "--out", snapshot,
    )
    assert built["backend"] == "gsketch"
    assert built["elements_processed"] == 0  # no --ingest


def test_cli_errors_are_json(tmp_path, capsys):
    code = main(["query", "--snapshot", str(tmp_path / "missing.snap"), "--edge", "1", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error" in json.loads(captured.err)

    corrupt = tmp_path / "corrupt.snap"
    corrupt.write_text("not a snapshot")
    code = main(["query", "--snapshot", str(corrupt), "--edge", "1", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error" in json.loads(captured.err)

    code = main(["build", *RMAT, "--cells", "0", "--out", str(tmp_path / "x.snap")])
    captured = capsys.readouterr()
    assert code == 2
    assert "total_cells" in json.loads(captured.err)["error"]

    snapshot = str(tmp_path / "plain.snap")
    assert main(["build", *RMAT, "--cells", "12000", "--out", snapshot]) == 0
    capsys.readouterr()
    code = main(["query", "--snapshot", snapshot])  # nothing to query
    captured = capsys.readouterr()
    assert code == 2
    assert "error" in json.loads(captured.err)

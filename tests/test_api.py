"""The unified estimator API: Protocol conformance, the SketchEngine facade,
typed query/result objects, and the versioned snapshot format.

The central suite here is the parametrized lifecycle test: the *same*
build → ingest → query → snapshot → restore scenario runs against all four
backends purely through the :class:`repro.api.Estimator` Protocol surface.
"""

from __future__ import annotations

import pickle

import pytest

import repro.api as api
from repro.api import (
    BACKEND_CLASSES,
    EdgeQuery,
    EngineError,
    Estimator,
    SketchEngine,
    SnapshotError,
    SubgraphQuery,
    WindowQuery,
    load_snapshot,
)
from repro.core.config import GSketchConfig
from repro.core.global_sketch import GlobalSketch
from repro.core.router import OUTLIER_PARTITION

#: Every backend, as "build a fresh engine from (stream, sample, config)".
BACKEND_BUILDERS = {
    "gsketch": lambda stream, sample, config: (
        SketchEngine.builder()
        .config(config)
        .sample(sample)
        .stream_size_hint(len(stream))
        .build()
    ),
    "global": lambda stream, sample, config: SketchEngine.builder().config(config).build(),
    "sharded": lambda stream, sample, config: (
        SketchEngine.builder()
        .config(config)
        .sample(sample)
        .stream_size_hint(len(stream))
        .sharded(3)
        .build()
    ),
    "windowed": lambda stream, sample, config: (
        SketchEngine.builder().config(config).windowed(2_000.0, sample_size=800).build()
    ),
}


def query_keys(stream, count: int = 50):
    """Deterministic query block: frequent edges plus a guaranteed outlier."""
    keys = sorted(stream.distinct_edges())[:count]
    keys.append(("never-seen-source", "never-seen-target"))
    return keys


# ---------------------------------------------------------------------- #
# The one scenario, all four backends, through the Protocol
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", sorted(BACKEND_BUILDERS))
def test_lifecycle_roundtrip_through_protocol(
    backend, zipf_stream, zipf_sample, small_config, tmp_path
):
    engine = BACKEND_BUILDERS[backend](zipf_stream, zipf_sample, small_config)
    assert engine.backend == backend
    estimator = engine.estimator
    assert isinstance(estimator, Estimator)

    # -- ingest in two blocks through the facade ----------------------- #
    half = len(zipf_stream) // 2
    ingested = engine.ingest(zipf_stream.prefix(half))
    ingested += engine.ingest(zipf_stream.suffix(half))
    assert ingested == len(zipf_stream)
    assert engine.elements_processed == len(zipf_stream)

    # -- batch queries are aligned and self-consistent ------------------ #
    keys = query_keys(zipf_stream)
    estimates = estimator.query_edges(keys)
    assert len(estimates) == len(keys)
    intervals = estimator.confidence_batch(keys)
    assert [interval.estimate for interval in intervals] == estimates
    assert all(interval.lower <= interval.upper for interval in intervals)

    subgraph = SubgraphQuery.from_edges(keys[:10])
    assert estimator.query_subgraph(subgraph) == pytest.approx(sum(estimates[:10]))

    # -- snapshot → restore answers bit-identically --------------------- #
    path = tmp_path / f"{backend}.snap"
    engine.save(path)
    restored = SketchEngine.load(path)
    assert restored.backend == backend
    assert isinstance(restored.estimator, BACKEND_CLASSES[backend])
    assert restored.estimator.query_edges(keys) == estimates
    assert restored.estimator.confidence_batch(keys) == intervals
    assert restored.elements_processed == engine.elements_processed
    assert restored.estimator.query_subgraph(subgraph) == estimator.query_subgraph(subgraph)
    engine.close()
    restored.close()


@pytest.mark.parametrize("backend", sorted(BACKEND_BUILDERS))
def test_restored_engine_continues_ingesting_identically(
    backend, zipf_stream, zipf_sample, small_config, tmp_path
):
    """A restore is a true resume: ingesting the tail into the original and
    into the restored engine produces bit-identical answers (including the
    windowed backend's reservoir RNG state)."""
    engine = BACKEND_BUILDERS[backend](zipf_stream, zipf_sample, small_config)
    half = len(zipf_stream) // 2
    engine.ingest(zipf_stream.prefix(half))
    path = tmp_path / f"{backend}-mid.snap"
    engine.save(path)
    restored = SketchEngine.load(path)

    tail = zipf_stream.suffix(half)
    engine.ingest(tail)
    restored.ingest(tail)

    keys = query_keys(zipf_stream)
    assert restored.estimator.query_edges(keys) == engine.estimator.query_edges(keys)
    assert restored.elements_processed == engine.elements_processed
    engine.close()
    restored.close()


# ---------------------------------------------------------------------- #
# Backend parity details
# ---------------------------------------------------------------------- #
def test_sharded_subgraph_and_confidence_match_gsketch_bit_exactly(
    zipf_stream, zipf_sample, small_config
):
    gsketch_engine = BACKEND_BUILDERS["gsketch"](zipf_stream, zipf_sample, small_config)
    sharded_engine = BACKEND_BUILDERS["sharded"](zipf_stream, zipf_sample, small_config)
    gsketch_engine.ingest(zipf_stream)
    sharded_engine.ingest(zipf_stream)

    keys = query_keys(zipf_stream, count=120)
    subgraph = SubgraphQuery.from_edges(keys[:12])
    assert sharded_engine.estimator.query_subgraph(subgraph) == gsketch_engine.estimator.query_subgraph(subgraph)
    assert sharded_engine.estimator.confidence_batch(keys) == gsketch_engine.estimator.confidence_batch(keys)
    assert sharded_engine.estimator.confidence(keys[0]) == gsketch_engine.estimator.confidence(keys[0])
    sharded_engine.close()


def test_global_query_edges_matches_scalar_path(zipf_stream, small_config):
    baseline = GlobalSketch(small_config)
    baseline.process(zipf_stream)
    keys = query_keys(zipf_stream, count=200)
    assert baseline.query_edges(keys) == [baseline.query_edge(key) for key in keys]
    intervals = baseline.confidence_batch(keys)
    assert intervals == [baseline.confidence(key) for key in keys]


def test_windowed_lifetime_batch_queries_match_scalar(zipf_stream, small_config):
    engine = SketchEngine.builder().config(small_config).windowed(1_500.0, sample_size=500).build()
    engine.ingest(zipf_stream)
    windowed = engine.estimator
    assert windowed.num_windows >= 2
    keys = query_keys(zipf_stream, count=40)
    assert windowed.query_edges(keys) == [windowed.query_edge_lifetime(key) for key in keys]
    intervals = windowed.confidence_batch(keys)
    assert [interval.estimate for interval in intervals] == windowed.query_edges(keys)
    assert all(interval.failure_probability <= 1.0 for interval in intervals)


# ---------------------------------------------------------------------- #
# Typed results and dispatch
# ---------------------------------------------------------------------- #
def test_estimates_carry_partition_provenance(zipf_stream, zipf_sample, small_config):
    engine = BACKEND_BUILDERS["gsketch"](zipf_stream, zipf_sample, small_config)
    engine.ingest(zipf_stream)
    known = sorted(zipf_stream.distinct_edges())[0]
    unknown = ("never-seen-source", "x")

    estimate = engine.query(EdgeQuery(*known))
    assert estimate.provenance.backend == "gsketch"
    assert estimate.provenance.partition is not None
    assert estimate.interval is not None
    assert estimate.value == estimate.interval.estimate
    assert float(estimate) == estimate.value

    outlier = engine.query(unknown)  # bare key shorthand
    assert outlier.provenance.outlier is True
    assert outlier.provenance.partition == OUTLIER_PARTITION

    # Mixed-type key blocks must not coerce labels: the int-labelled edge
    # keeps its real partition even when routed alongside a string label.
    mixed = engine.query([known, unknown])
    assert mixed[0].provenance.partition == estimate.provenance.partition
    assert mixed[0].provenance.outlier is False
    assert mixed[1].provenance.outlier is True

    document = estimate.to_dict()
    assert document["backend"] == "gsketch"
    assert "interval" in document and document["interval"]["lower"] >= 0.0


def test_sharded_estimates_carry_shard_provenance(zipf_stream, zipf_sample, small_config):
    engine = BACKEND_BUILDERS["sharded"](zipf_stream, zipf_sample, small_config)
    engine.ingest(zipf_stream)
    estimate = engine.query(EdgeQuery(*sorted(zipf_stream.distinct_edges())[0]))
    assert estimate.provenance.backend == "sharded"
    assert estimate.provenance.shard is not None
    assert 0 <= estimate.provenance.shard < engine.estimator.num_shards
    engine.close()


def test_window_query_dispatch(zipf_stream, small_config):
    engine = SketchEngine.builder().config(small_config).windowed(2_000.0).build()
    engine.ingest(zipf_stream)
    key = sorted(zipf_stream.distinct_edges())[0]

    whole = engine.query(WindowQuery(key[0], key[1], 0.0, float(len(zipf_stream))))
    assert whole.value == pytest.approx(engine.estimator.query_edge_lifetime(key))
    assert whole.provenance.backend == "windowed"

    # EdgeQuery with an attached window lifts to the same path.
    lifted = engine.query(EdgeQuery(key[0], key[1], window=(0.0, float(len(zipf_stream)))))
    assert lifted.value == whole.value

    with pytest.raises(ValueError):
        WindowQuery(key[0], key[1], 5.0, 5.0)


def test_window_query_rejected_on_non_windowed_backend(zipf_stream, zipf_sample, small_config):
    engine = BACKEND_BUILDERS["gsketch"](zipf_stream, zipf_sample, small_config)
    with pytest.raises(EngineError):
        engine.query(WindowQuery("a", "b", 0.0, 1.0))


def test_query_batch_mixed_shapes(zipf_stream, zipf_sample, small_config):
    engine = BACKEND_BUILDERS["gsketch"](zipf_stream, zipf_sample, small_config)
    engine.ingest(zipf_stream)
    keys = sorted(zipf_stream.distinct_edges())[:4]
    queries = [
        EdgeQuery(*keys[0]),
        keys[1],
        SubgraphQuery.from_edges(keys),
        EdgeQuery(*keys[2]),
    ]
    estimates = engine.query(queries)
    assert len(estimates) == len(queries)
    assert estimates[0].value == engine.estimator.query_edge(keys[0])
    assert estimates[2].value == pytest.approx(
        sum(engine.estimator.query_edges(keys))
    )
    # batched edge answers agree with the one-at-a-time path
    assert [estimates[0].value, estimates[1].value, estimates[3].value] == [
        engine.query(EdgeQuery(*key)).value for key in (keys[0], keys[1], keys[2])
    ]


def test_deprecated_shims_warn_and_stay_bit_exact(
    zipf_stream, zipf_sample, small_config
):
    engine = BACKEND_BUILDERS["gsketch"](zipf_stream, zipf_sample, small_config)
    engine.ingest(zipf_stream)
    keys = sorted(zipf_stream.distinct_edges())[:6]
    expected = engine.query(keys)

    with pytest.warns(DeprecationWarning, match="estimate_edges is deprecated"):
        via_estimate = engine.estimate_edges(keys)
    with pytest.warns(DeprecationWarning, match="query_many is deprecated"):
        via_many = engine.query_many(keys)

    assert [e.value for e in via_estimate] == [e.value for e in expected]
    assert [e.value for e in via_many] == [e.value for e in expected]
    assert [e.provenance.partition for e in via_estimate] == [
        e.provenance.partition for e in expected
    ]


# ---------------------------------------------------------------------- #
# Builder validation
# ---------------------------------------------------------------------- #
def test_builder_requires_config():
    with pytest.raises(EngineError, match="config"):
        SketchEngine.builder().build()


def test_builder_config_kwargs(zipf_sample):
    engine = (
        SketchEngine.builder()
        .config(total_cells=4_000, depth=3, seed=11)
        .sample(zipf_sample)
        .build()
    )
    assert engine.backend == "gsketch"
    assert engine.estimator.config.depth == 3
    with pytest.raises(EngineError):
        SketchEngine.builder().config(GSketchConfig(total_cells=100), depth=3)


def test_builder_variant_conflicts(zipf_sample, small_config):
    with pytest.raises(EngineError, match="mutually exclusive"):
        (
            SketchEngine.builder()
            .config(small_config)
            .sample(zipf_sample)
            .sharded(2)
            .windowed(10.0)
            .build()
        )
    with pytest.raises(EngineError, match="sample"):
        SketchEngine.builder().config(small_config).sharded(2).build()
    with pytest.raises(EngineError, match="sample"):
        SketchEngine.builder().config(small_config).workload(zipf_sample).build()
    with pytest.raises(EngineError, match="workload"):
        (
            SketchEngine.builder()
            .config(small_config)
            .workload(zipf_sample)
            .windowed(10.0)
            .build()
        )


def test_builder_derives_sample_from_dataset(zipf_stream, small_config):
    engine = (
        SketchEngine.builder()
        .config(small_config)
        .dataset(zipf_stream)
        .sample_size(1_000)
        .build()
    )
    assert engine.backend == "gsketch"
    assert engine.estimator.num_partitions >= 1
    # The hint defaults to the dataset length (Theorem-1 extrapolation).
    assert engine.estimator.stats is not None


def test_builder_workload_partitioning(zipf_stream, zipf_sample, small_config):
    workload = zipf_stream.prefix(800)
    engine = (
        SketchEngine.builder()
        .config(small_config)
        .sample(zipf_sample)
        .workload(workload)
        .build()
    )
    assert engine.backend == "gsketch"
    assert engine.estimator.workload_weights is not None


# ---------------------------------------------------------------------- #
# Snapshot format
# ---------------------------------------------------------------------- #
def test_snapshot_rejects_foreign_and_versioned_files(tmp_path, zipf_sample, small_config):
    garbage = tmp_path / "garbage.snap"
    with open(garbage, "wb") as handle:
        pickle.dump({"format": "something-else"}, handle)
    with pytest.raises(SnapshotError, match="not a"):
        load_snapshot(garbage)

    not_pickle = tmp_path / "notes.txt"
    not_pickle.write_text("these are not the bytes you are looking for")
    with pytest.raises(SnapshotError, match="not a readable"):
        load_snapshot(not_pickle)
    truncated = tmp_path / "empty.snap"
    truncated.write_bytes(b"")
    with pytest.raises(SnapshotError):
        load_snapshot(truncated)

    engine = SketchEngine.builder().config(small_config).sample(zipf_sample).build()
    path = engine.save(tmp_path / "ok.snap")
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    payload["version"] = 999
    future = tmp_path / "future.snap"
    with open(future, "wb") as handle:
        pickle.dump(payload, handle)
    with pytest.raises(SnapshotError, match="version"):
        load_snapshot(future)

    payload["version"] = api.SNAPSHOT_VERSION
    payload["backend"] = "quantum"
    unknown = tmp_path / "unknown.snap"
    with open(unknown, "wb") as handle:
        pickle.dump(payload, handle)
    with pytest.raises(SnapshotError, match="backend"):
        load_snapshot(unknown)


def test_api_exports_import_cleanly():
    for name in api.__all__:
        assert getattr(api, name) is not None, name

"""The compiled query plane: bit-exact parity, cache lifecycle, stale rebuild.

The invariant under test everywhere: the read-optimized path (arena gather +
hot-edge cache) answers **bit-identically** to the pre-plan routed path, for
every backend, through every mutation (per-element update, batch ingest,
merge, snapshot restore) and for every query flavour (in-partition, outlier,
fractional counts, conservative updates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.engine import SketchEngine
from repro.api.snapshot import load_snapshot, save_snapshot
from repro.core.config import GSketchConfig
from repro.core.gsketch import GSketch
from repro.core.global_sketch import GlobalSketch
from repro.core.router import OUTLIER_PARTITION
from repro.core.windowed import WindowedGSketch
from repro.distributed.coordinator import ShardedGSketch
from repro.queries import plan as plan_module
from repro.queries.plan import (
    HOT_CACHE_MAX_BATCH,
    CompiledQueryPlan,
    HotEdgeCache,
)
from repro.sketches.countmin import CountMinSketch


def _query_set(stream, count=300):
    """Stream edges plus never-seen sources (the outlier slot must serve)."""
    keys = sorted(stream.distinct_edges())[:count]
    keys += [(10**9 + index, 3) for index in range(6)]
    return keys


def _build_backend(kind, stream, sample, config):
    if kind == "global":
        estimator = GlobalSketch(config)
        estimator.process(stream)
    elif kind == "gsketch":
        estimator = GSketch.build(sample, config, stream_size_hint=len(stream))
        estimator.process(stream)
    elif kind == "sharded":
        estimator = ShardedGSketch.build(
            sample, config, num_shards=2, stream_size_hint=len(stream)
        )
        estimator.ingest(stream)
    elif kind == "windowed":
        estimator = WindowedGSketch(
            config, window_length=len(stream) / 3.0, sample_size=400, seed=7
        )
        estimator.process(stream)
    else:  # pragma: no cover - parametrization guard
        raise ValueError(kind)
    return estimator


BACKENDS = ("global", "gsketch", "sharded", "windowed")


# ---------------------------------------------------------------------- #
# Plan-vs-live parity
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", BACKENDS)
def test_plan_matches_direct_path(kind, zipf_stream, zipf_sample, small_config):
    estimator = _build_backend(kind, zipf_stream, zipf_sample, small_config)
    keys = _query_set(zipf_stream)
    assert estimator.query_edges(keys) == estimator.query_edges_direct(keys)
    # Small batches ride the hot-edge cache; repeated calls must stay exact.
    small = keys[:HOT_CACHE_MAX_BATCH]
    first = estimator.query_edges(small)
    assert first == estimator.query_edges(small)
    assert first == estimator.query_edges_direct(small)


@pytest.mark.parametrize("kind", BACKENDS)
def test_plan_matches_direct_on_fractional_counts(
    kind, weighted_stream, small_config
):
    sample = weighted_stream  # partition from the full weighted stream
    estimator = _build_backend(kind, weighted_stream, sample, small_config)
    keys = _query_set(weighted_stream, count=200)
    assert estimator.query_edges(keys) == estimator.query_edges_direct(keys)


@pytest.mark.parametrize("kind", ("global", "gsketch"))
def test_plan_matches_direct_with_conservative_updates(
    kind, zipf_stream, zipf_sample
):
    config = GSketchConfig(
        total_cells=8_000, depth=4, seed=7, conservative_updates=True
    )
    estimator = _build_backend(kind, zipf_stream, zipf_sample, config)
    keys = _query_set(zipf_stream, count=200)
    assert estimator.query_edges(keys) == estimator.query_edges_direct(keys)


def test_confidence_batch_rides_the_plan(zipf_stream, zipf_sample, small_config):
    gsketch = _build_backend("gsketch", zipf_stream, zipf_sample, small_config)
    keys = _query_set(zipf_stream, count=150)
    plan_intervals, plan_partitions = gsketch.confidence_batch_with_partitions(keys)
    direct_intervals, direct_partitions = gsketch.confidence_batch_direct(keys)
    assert plan_intervals == direct_intervals
    assert plan_partitions == direct_partitions
    # Scalar path agreement (different code path, same constants).
    for key, interval in zip(keys[:20], plan_intervals[:20]):
        assert gsketch.confidence(key) == interval


def test_sharded_confidence_batch_rides_the_plan(
    zipf_stream, zipf_sample, small_config
):
    sharded = _build_backend("sharded", zipf_stream, zipf_sample, small_config)
    keys = _query_set(zipf_stream, count=150)
    assert (
        sharded.confidence_batch_with_partitions(keys)
        == sharded.confidence_batch_direct(keys)
    )


def test_windowed_confidence_composes_per_window(zipf_stream, small_config):
    windowed = _build_backend("windowed", zipf_stream, None, small_config)
    assert windowed.num_windows >= 2
    keys = _query_set(zipf_stream, count=60)
    intervals = windowed.confidence_batch(keys)
    for key, interval in zip(keys[:10], intervals[:10]):
        assert windowed.confidence(key) == interval
        assert interval.failure_probability <= 1.0


def test_subgraph_queries_ride_the_plan(zipf_stream, zipf_sample, small_config):
    from repro.queries.subgraph_query import SubgraphQuery

    gsketch = _build_backend("gsketch", zipf_stream, zipf_sample, small_config)
    edges = tuple(sorted(zipf_stream.distinct_edges())[:6])
    query = SubgraphQuery(edges=edges)
    expected = query.combine(gsketch.query_edges_direct(list(edges)))
    assert gsketch.query_subgraph(query) == expected


# ---------------------------------------------------------------------- #
# Staleness: ingest invalidates plan and cache
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", BACKENDS)
def test_plan_rebuilds_after_ingest(kind, zipf_stream, zipf_sample, small_config):
    estimator = _build_backend(kind, zipf_stream, zipf_sample, small_config)
    keys = _query_set(zipf_stream, count=100)
    before = estimator.query_edges(keys)
    # Re-ingest a slice: every queried edge estimate must move with the
    # live state, not the stale arena.
    extra = list(zipf_stream)[:500]
    if kind == "windowed":
        # Windowed streams must stay timestamp-ordered; re-observe the tail.
        extra = list(zipf_stream)[-500:]
    estimator.ingest_batch(extra)
    after = estimator.query_edges(keys)
    assert after == estimator.query_edges_direct(keys)
    assert sum(after) > sum(before)


def test_point_query_cache_invalidates_on_update(zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config)
    edge = next(iter(zipf_sample.distinct_edges()))
    assert gsketch.query_edge(edge) == 0.0
    gsketch.update(edge[0], edge[1], 2.5)
    assert gsketch.query_edge(edge) == gsketch.query_edges_direct([edge])[0]
    assert gsketch.query_edge(edge) >= 2.5


def test_plan_survives_sharded_merge(zipf_stream, zipf_sample, small_config):
    left = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    right = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    half = len(zipf_stream) // 2
    edges = list(zipf_stream)
    left.ingest(edges[:half])
    right.ingest(edges[half:])
    keys = _query_set(zipf_stream, count=100)
    left.query_edges(keys)  # compile the plan pre-merge
    left.merge(right)
    reference = GSketch.build(zipf_sample, small_config)
    reference.process(zipf_stream)
    assert left.query_edges(keys) == reference.query_edges(keys)
    assert left.query_edges(keys) == left.query_edges_direct(keys)


def test_plan_refreshes_after_checkpoint_restore(
    zipf_stream, zipf_sample, small_config
):
    sharded = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    sharded.ingest(zipf_stream)
    keys = _query_set(zipf_stream, count=80)
    populated = sharded.query_edges(keys)
    checkpoint = sharded.shard_states()
    sharded.ingest(list(zipf_stream)[:400])
    assert sharded.query_edges(keys) != populated
    sharded.load_shard_states(checkpoint)
    # The plan (compiled against the post-ingest state) must refresh back
    # to the checkpoint's counters, not serve the stale arena.
    assert sharded.query_edges(keys) == populated
    assert sharded.query_edges(keys) == sharded.query_edges_direct(keys)


def test_cache_invalidates_across_snapshot_restore(
    tmp_path, zipf_stream, zipf_sample, small_config
):
    gsketch = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    gsketch.process(zipf_stream)
    keys = _query_set(zipf_stream, count=4)
    warm = gsketch.query_edges(keys)  # memoized
    path = tmp_path / "plan.snap"
    save_snapshot(gsketch, path)
    restored = load_snapshot(path)
    assert restored.query_edges(keys) == warm
    # Restored estimators start with a cold plane; ingesting must not serve
    # the pre-restore memo.
    restored.ingest_batch(list(zipf_stream)[:300])
    assert restored.query_edges(keys) == restored.query_edges_direct(keys)


def test_shared_memory_executor_serves_through_plan(
    zipf_stream, zipf_sample, small_config
):
    from repro.distributed.executor import make_executor

    sharded = ShardedGSketch.build(
        zipf_sample, small_config, num_shards=2, executor=make_executor("shared")
    )
    try:
        sharded.ingest(zipf_stream, batch_size=1024)
        keys = _query_set(zipf_stream, count=100)
        assert sharded.query_edges(keys) == sharded.query_edges_direct(keys)
        sharded.ingest_batch(list(zipf_stream)[:256])
        assert sharded.query_edges(keys) == sharded.query_edges_direct(keys)
    finally:
        sharded.close()


# ---------------------------------------------------------------------- #
# Plan internals
# ---------------------------------------------------------------------- #
def test_outlier_sentinel_mirrors_router():
    assert plan_module.OUTLIER_PARTITION == OUTLIER_PARTITION


def test_compiled_plan_matches_estimate_batch():
    sketches = [
        CountMinSketch(width=97 + 13 * index, depth=4, seed=index) for index in range(3)
    ]
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 2**63, size=500, dtype=np.int64).astype(np.uint64)
    for index, sketch in enumerate(sketches):
        sketch.update_batch(keys[index::3], np.ones(len(keys[index::3])))
    plan = CompiledQueryPlan.compile(sketches, router=None, attach=False)
    slots = np.asarray([index % 3 for index in range(len(keys))], dtype=np.int64)
    estimates = plan.estimate_keys(keys, slots)
    for slot, sketch in enumerate(sketches):
        mask = slots == slot
        assert np.array_equal(estimates[mask], sketch.estimate_batch(keys[mask]))


def test_compiled_plan_rejects_mixed_depths():
    sketches = [
        CountMinSketch(width=50, depth=4, seed=0),
        CountMinSketch(width=50, depth=5, seed=1),
    ]
    with pytest.raises(ValueError, match="depth"):
        CompiledQueryPlan.compile(sketches, router=None)


def test_attached_plan_sees_ingest_without_refresh(zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config)
    plan = gsketch.compile_plan()
    assert plan.attached
    edge = next(iter(zipf_sample.distinct_edges()))
    gsketch.update(edge[0], edge[1], 3.0)
    # The arena is the live table: no refresh needed for raw estimates.
    assert float(plan.query_edges([edge])[0]) == gsketch.query_edges_direct([edge])[0]


def test_hot_cache_generation_and_capacity():
    cache = HotEdgeCache(capacity=4)
    cache.store_many(1, [10, 11], [1.0, 2.0])
    assert cache.lookup_many(1, [10, 11]) == [1.0, 2.0]
    assert cache.lookup_many(1, [10, 12]) is None  # partial miss
    assert cache.lookup_many(2, [10, 11]) is None  # generation moved → cleared
    assert len(cache) == 0
    cache.store_many(2, [1, 2, 3], [1.0, 2.0, 3.0])
    cache.store_many(2, [4, 5], [4.0, 5.0])  # would exceed capacity → clears
    assert cache.lookup_many(2, [1]) is None
    assert cache.lookup_many(2, [4, 5]) == [4.0, 5.0]


def test_hot_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        HotEdgeCache(capacity=0)


# ---------------------------------------------------------------------- #
# Hot-cache telemetry counters
# ---------------------------------------------------------------------- #
def test_hot_cache_counts_hits_misses_evictions_invalidations():
    cache = HotEdgeCache(capacity=4)
    assert cache.lookup_many(1, [10]) is None
    assert cache.misses == 1
    cache.store_many(1, [10, 11], [1.0, 2.0])
    assert cache.lookup_many(1, [10, 11]) == [1.0, 2.0]
    assert cache.hits == 1
    # Overflow clears wholesale: both resident entries count as evicted.
    cache.store_many(1, [12, 13, 14], [3.0, 4.0, 5.0])
    assert cache.evictions == 2
    # A generation move after adoption is an invalidation; the initial
    # adoption (generation -1 -> 1) was not.
    assert cache.invalidations == 0
    assert cache.lookup_many(2, [12]) is None
    assert cache.invalidations == 1
    telemetry = cache.telemetry()
    assert telemetry["hits"] == 1
    assert telemetry["misses"] == 2
    assert telemetry["evictions"] == 2
    assert telemetry["invalidations"] == 1


def test_cache_invalidation_counter_on_ingest(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    gsketch.process(zipf_stream)
    keys = sorted(zipf_stream.distinct_edges())[:4]  # under HOT_CACHE_MAX_BATCH
    cache = gsketch._hot_cache
    gsketch.query_edges(keys)  # compile + miss + store
    gsketch.query_edges(keys)  # memo hit
    assert cache.hits >= 1 and cache.misses >= 1
    before = cache.invalidations
    gsketch.ingest_batch(list(zipf_stream)[:200])
    gsketch.query_edges(keys)  # generation moved: stale memo dropped
    assert cache.invalidations == before + 1


def test_cache_invalidation_counter_on_restore(
    tmp_path, zipf_stream, zipf_sample, small_config
):
    gsketch = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    gsketch.process(zipf_stream)
    keys = sorted(zipf_stream.distinct_edges())[:4]
    gsketch.query_edges(keys)
    path = tmp_path / "plan.snap"
    save_snapshot(gsketch, path)
    restored = load_snapshot(path)
    restored.query_edges(keys)
    # A restored estimator's cache starts cold: its first sync adopts the
    # generation without counting an invalidation.
    assert restored._hot_cache.invalidations == 0
    restored.ingest_batch(list(zipf_stream)[:200])
    restored.query_edges(keys)
    assert restored._hot_cache.invalidations == 1


def test_cache_invalidation_counter_on_merge(zipf_stream, zipf_sample, small_config):
    left = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    right = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    half = len(zipf_stream) // 2
    edges = list(zipf_stream)
    left.ingest(edges[:half])
    right.ingest(edges[half:])
    keys = sorted(zipf_stream.distinct_edges())[:4]
    left.query_edges(keys)  # warm the memo pre-merge
    before = left._hot_cache.invalidations
    left.merge(right)
    left.query_edges(keys)  # merged counters: the memo must not survive
    assert left._hot_cache.invalidations == before + 1


# ---------------------------------------------------------------------- #
# Facade integration
# ---------------------------------------------------------------------- #
def test_engine_frozen_precompiles_and_chains(zipf_stream, zipf_sample, small_config):
    engine = (
        SketchEngine.builder()
        .config(small_config)
        .sample(zipf_sample)
        .stream_size_hint(len(zipf_stream))
        .build()
    )
    engine.ingest(zipf_stream)
    assert engine.frozen() is engine
    estimator = engine.estimator
    assert estimator.compile_plan().generation == estimator.ingest_generation
    keys = _query_set(zipf_stream, count=50)
    estimates = engine.query(keys)
    direct_intervals, direct_partitions = estimator.confidence_batch_direct(keys)
    for estimate, interval, partition in zip(
        estimates, direct_intervals, direct_partitions
    ):
        assert estimate.value == interval.estimate
        assert estimate.interval == interval
        assert estimate.provenance.partition == partition
        assert estimate.provenance.outlier == (partition == OUTLIER_PARTITION)


def test_non_integer_labels_served_through_plan(small_config):
    from repro.graph.stream import GraphStream

    stream = GraphStream.from_tuples(
        (f"v{i % 17}", f"w{i % 11}", float(i), 1.0) for i in range(600)
    )
    gsketch = GSketch.build(stream, small_config)
    gsketch.process(stream)
    keys = sorted(stream.distinct_edges())[:60] + [("never-seen", "w1")]
    assert gsketch.query_edges(keys) == gsketch.query_edges_direct(keys)
    assert gsketch.query_edges(keys[:3]) == gsketch.query_edges_direct(keys[:3])


# ---------------------------------------------------------------------- #
# Per-key partial hits on large (coalesced) batches
# ---------------------------------------------------------------------- #
def test_hot_cache_lookup_partial_serves_hits_and_marks_misses():
    cache = HotEdgeCache(capacity=8)
    # Empty memo: signal "use the untouched vectorized path" — and that
    # probe costs no counter churn.
    assert cache.lookup_partial(1, [1, 2]) == (None, None)
    assert cache.hits == 0 and cache.misses == 0
    cache.store_many(1, [1, 3], [10.0, 30.0])
    values, miss = cache.lookup_partial(1, [1, 2, 3, 4])
    assert values.tolist() == [10.0, 0.0, 30.0, 0.0]
    assert miss.tolist() == [False, True, False, True]
    # Unlike lookup_many's all-or-nothing contract, hits and misses are
    # tallied per key.
    assert cache.hits == 2 and cache.misses == 2


def test_hot_cache_lookup_partial_generation_move_clears():
    cache = HotEdgeCache(capacity=8)
    cache.store_many(1, [1, 2], [1.0, 2.0])
    assert cache.lookup_partial(2, [1, 2]) == (None, None)
    assert len(cache) == 0
    assert cache.invalidations == 1


def test_large_batch_partial_hits_stay_bit_exact(zipf_stream, zipf_sample, small_config):
    """A coalesced batch overlapping a warm memo merges cached and gathered
    values bit-identically to the direct routed path."""
    gsketch = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    gsketch.process(zipf_stream)
    keys = _query_set(zipf_stream, count=3 * HOT_CACHE_MAX_BATCH)
    assert len(keys) > HOT_CACHE_MAX_BATCH
    half = len(keys) // 2
    cache = gsketch._hot_cache

    # Warm the memo with the first half (a large batch itself), then query
    # an overlapping large batch: the first half must come from the memo,
    # only the second half from the arena.
    warm = gsketch.query_edges(keys[:half])
    hits_before = cache.hits
    merged = gsketch.query_edges(keys)
    assert cache.hits == hits_before + half
    direct = gsketch.query_edges_direct(keys)
    assert list(merged) == list(direct)
    assert list(warm) == list(direct[:half])

    # A fully warm repeat is served without touching the arena path.
    hits_before = cache.hits
    repeat = gsketch.query_edges(keys)
    assert cache.hits == hits_before + len(keys)
    assert list(repeat) == list(direct)


def test_large_batch_cold_path_populates_memo(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    gsketch.process(zipf_stream)
    keys = _query_set(zipf_stream, count=2 * HOT_CACHE_MAX_BATCH)
    cache = gsketch._hot_cache
    assert cache.hits == 0
    gsketch.query_edges(keys)  # cold: one vectorized gather, memo filled
    assert len(cache) == len(set(keys))
    assert cache.hits == 0


def test_large_batch_partial_hits_survive_duplicate_keys(
    zipf_stream, zipf_sample, small_config
):
    gsketch = GSketch.build(zipf_sample, small_config, stream_size_hint=len(zipf_stream))
    gsketch.process(zipf_stream)
    base = _query_set(zipf_stream, count=2 * HOT_CACHE_MAX_BATCH)
    gsketch.query_edges(base[: len(base) // 2])
    doubled = base + base[:7]  # repeats spanning both the hit and miss sets
    assert list(gsketch.query_edges(doubled)) == list(
        gsketch.query_edges_direct(doubled)
    )

"""The serving tier: wire protocol, coalescing, consistency, overload, drain.

The acceptance bars under test:

* **parity** — every answer over the wire is bit-identical to a direct
  ``query_edges`` on the same engine, under any interleaving of concurrent
  clients (JSON round-trips float64 exactly);
* **coalescing** — point queries in flight from different connections drain
  into shared compiled-plan gathers (server stats prove batches < requests);
* **consistency** — sessions observe monotonic generations across live
  wire-ingest and the plan rebuild it forces;
* **overload** — beyond the admission bound requests are shed with *typed*
  ``retry_later`` rejects, queue depth stays bounded, nothing hangs, and a
  slow client is dropped without stalling healthy peers;
* **drain** — shutdown answers everything already admitted before closing.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import time

import pytest

from conftest import make_zipf_stream
from repro import faults
from repro.api.engine import SketchEngine
from repro.core.config import GSketchConfig
from repro.queries.plan import demux_by_counts
from repro.serving import wire
from repro.serving.client import (
    DeadlineExceeded,
    RetryLater,
    ServerClosed,
    ServingError,
    SyncServingClient,
    connect,
)
from repro.serving.coalesce import (
    AdmissionError,
    CoalescingQueue,
    DeadlineExceededError,
)
from repro.serving.server import ServingConfig, SketchServer, serve_in_background
from repro.serving.session import ConsistencyError, SyncSession, _Watermark


@pytest.fixture(scope="module")
def serve_stream():
    return make_zipf_stream(num_edges=3_000, population=300, seed=11)


@pytest.fixture(scope="module")
def serve_config():
    return GSketchConfig(total_cells=8_000, depth=4, seed=7)


def _build_engine(stream, config, **builder_kwargs):
    builder = SketchEngine.builder().config(config).dataset(stream)
    engine = builder.build()
    engine.ingest(stream)
    return engine


@pytest.fixture(scope="module")
def engine(serve_stream, serve_config):
    """A read-only gsketch engine shared by the pure-query tests."""
    engine = _build_engine(serve_stream, serve_config)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def query_keys(serve_stream):
    keys = sorted(serve_stream.distinct_edges())[:64]
    keys.append((10**9, 3))  # outlier-routed
    return keys


# ---------------------------------------------------------------------- #
# Wire protocol
# ---------------------------------------------------------------------- #
class TestWire:
    def test_frame_roundtrip_preserves_float64_bits(self):
        values = [0.1 + 0.2, 1e-309, 7.5, float(2**53 - 1), 3.141592653589793]
        payload = {"op": "query_edges", "values": values, "id": 7}
        assert wire.decode_body(wire.encode_frame(payload)[4:]) == payload

    def test_reader_roundtrip_and_clean_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(wire.encode_frame({"a": 1}))
            reader.feed_data(wire.encode_frame({"b": [1, 2]}))
            reader.feed_eof()
            assert await wire.read_frame(reader) == {"a": 1}
            assert await wire.read_frame(reader) == {"b": [1, 2]}
            assert await wire.read_frame(reader) is None  # clean EOF

        asyncio.run(scenario())

    def test_oversized_frame_rejected_without_reading_body(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 10_000_000) + b"x" * 64)
            with pytest.raises(wire.WireError, match="exceeds"):
                await wire.read_frame(reader, max_frame_bytes=1024)

        asyncio.run(scenario())

    @pytest.mark.parametrize(
        "raw",
        [
            b"\x00\x00",  # torn mid-header
            struct.pack(">I", 100) + b"{tru",  # torn mid-body
        ],
    )
    def test_truncated_frame_raises(self, raw):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            with pytest.raises(wire.WireError):
                await wire.read_frame(reader)

        asyncio.run(scenario())

    def test_frame_body_must_be_json_object(self):
        with pytest.raises(wire.WireError):
            wire.decode_body(b"[1, 2, 3]")
        with pytest.raises(wire.WireError):
            wire.decode_body(b"\xff\xfe")

    def test_edges_from_wire_validation(self):
        assert wire.edges_from_wire([[1, 2], ["a", "b"]]) == [(1, 2), ("a", "b")]
        for bad in (None, [], "ab", [[1]], [[1, 2, 3]], [[1, [2]]]):
            with pytest.raises(wire.WireError):
                wire.edges_from_wire(bad)

    def test_parse_address(self):
        assert wire.parse_address("127.0.0.1:8765") == ("127.0.0.1", 8765)
        for bad in ("no-port", "host:", "host:not-a-number", ":99"):
            with pytest.raises(ValueError):
                wire.parse_address(bad)


# ---------------------------------------------------------------------- #
# Coalescing queue (unit level, private event loop per test)
# ---------------------------------------------------------------------- #
def _echo_answer(keys):
    """Deterministic per-key answer so demux slices are checkable."""
    return [float(sum(key)) for key in keys], 42


class TestCoalescingQueue:
    def test_concurrent_submits_coalesce_into_one_gather(self):
        calls = []

        def answer(keys):
            calls.append(list(keys))
            return _echo_answer(keys)

        async def scenario():
            queue = CoalescingQueue(answer, max_delay_us=2_000)
            queue.start()
            futures = [queue.submit([(i, i + 1)]) for i in range(10)]
            results = await asyncio.gather(*futures)
            await queue.stop()
            return results

        results = asyncio.run(scenario())
        assert len(calls) == 1 and len(calls[0]) == 10
        for index, (values, generation) in enumerate(results):
            assert values == [float(index + index + 1)]
            assert generation == 42

    def test_demux_slices_match_multi_key_requests(self):
        async def scenario():
            queue = CoalescingQueue(_echo_answer, max_delay_us=2_000)
            queue.start()
            futures = [
                queue.submit([(1, 2), (3, 4)]),
                queue.submit([(5, 6)]),
                queue.submit([(7, 8), (9, 10), (11, 12)]),
            ]
            results = await asyncio.gather(*futures)
            await queue.stop()
            return results

        results = asyncio.run(scenario())
        assert results[0][0] == [3.0, 7.0]
        assert results[1][0] == [11.0]
        assert results[2][0] == [15.0, 19.0, 23.0]

    def test_admission_rejects_synchronously_beyond_max_pending(self):
        async def scenario():
            queue = CoalescingQueue(_echo_answer, max_pending=4, max_delay_us=50_000)
            queue.start()
            admitted = [queue.submit([(i, i)]) for i in range(4)]
            with pytest.raises(AdmissionError):
                queue.submit([(9, 9)])
            results = await asyncio.gather(*admitted)
            await queue.stop()
            assert queue.rejected == 1
            assert queue.max_depth <= 4
            return results

        assert len(asyncio.run(scenario())) == 4

    def test_expired_deadline_gets_typed_error_not_stale_answer(self):
        async def scenario():
            queue = CoalescingQueue(_echo_answer, max_delay_us=10_000)
            queue.start()
            loop = asyncio.get_running_loop()
            dead = queue.submit([(1, 2)], deadline=loop.time() - 0.001)
            live = queue.submit([(3, 4)], deadline=loop.time() + 5.0)
            with pytest.raises(DeadlineExceededError):
                await dead
            values, _ = await live
            await queue.stop()
            assert values == [7.0]
            assert queue.expired == 1

        asyncio.run(scenario())

    def test_stop_drains_admitted_work_then_rejects(self):
        async def scenario():
            queue = CoalescingQueue(_echo_answer, max_delay_us=50_000)
            queue.start()
            admitted = [queue.submit([(i, i)]) for i in range(3)]
            await queue.stop()  # drains without waiting out the dally
            results = await asyncio.gather(*admitted)
            assert [values for values, _ in results] == [[0.0], [2.0], [4.0]]
            with pytest.raises(AdmissionError, match="draining"):
                queue.submit([(9, 9)])

        asyncio.run(scenario())

    def test_answer_exception_fans_out_to_the_whole_batch(self):
        def broken(keys):
            raise RuntimeError("arena on fire")

        async def scenario():
            queue = CoalescingQueue(broken, max_delay_us=1_000)
            queue.start()
            futures = [queue.submit([(1, 2)]), queue.submit([(3, 4)])]
            for future in futures:
                with pytest.raises(RuntimeError, match="arena on fire"):
                    await future
            await queue.stop()

        asyncio.run(scenario())

    def test_demux_by_counts_validates_totals(self):
        assert demux_by_counts([1.0, 2.0, 3.0], [2, 1]) == [[1.0, 2.0], [3.0]]
        assert demux_by_counts([], []) == []
        with pytest.raises(ValueError, match="counts sum"):
            demux_by_counts([1.0, 2.0], [1])


# ---------------------------------------------------------------------- #
# Server round-trips (background thread, sync clients)
# ---------------------------------------------------------------------- #
class TestServerRoundTrip:
    @pytest.fixture(scope="class")
    def served(self, engine):
        handle = engine.serve()
        yield handle
        handle.stop()

    def test_point_queries_bit_exact_vs_direct(self, served, engine, query_keys):
        direct = engine.estimator.query_edges(query_keys)
        with SyncServingClient(*served.address) as client:
            result = client.query_edges(query_keys)
        assert list(result.values) == list(direct)

    def test_single_edge_and_pipelining(self, served, engine, query_keys):
        direct = engine.estimator.query_edges(query_keys[:8])
        with SyncServingClient(*served.address) as client:
            values = [
                client.query_edge(source, target).value
                for source, target in query_keys[:8]
            ]
        assert values == list(direct)

    def test_subgraph_aggregates_combine_server_side(self, served, engine, query_keys):
        direct = engine.estimator.query_edges(query_keys[:6])
        with SyncServingClient(*served.address) as client:
            total = client.query_subgraph(query_keys[:6], aggregate="sum")
            peak = client.query_subgraph(query_keys[:6], aggregate="max")
        assert total.value == sum(direct)
        assert peak.value == max(direct)

    def test_confidence_lane_matches_facade_estimates(self, served, engine, query_keys):
        expected = [estimate.to_dict() for estimate in engine.query(query_keys[:5])]
        with SyncServingClient(*served.address) as client:
            over_wire = client.query_edges_confidence(query_keys[:5])
        assert over_wire == expected

    def test_hello_carries_protocol_backend_generation(self, served, engine):
        with SyncServingClient(*served.address) as client:
            hello = client.hello
        assert hello["protocol"] == wire.PROTOCOL_VERSION
        assert hello["backend"] == engine.backend
        assert hello["generation"] == int(engine.estimator.ingest_generation)

    def test_bad_request_gets_typed_error_response(self, served):
        with SyncServingClient(*served.address) as client:
            with pytest.raises(ServingError, match="aggregate"):
                client.query_subgraph([(1, 2)], aggregate="no-such-aggregate")
            with pytest.raises(ServingError, match="edges"):
                client.query_edges([])  # the server rejects empty batches typed
            # The connection survives typed errors.
            assert client.ping()

    def test_ingest_disabled_by_default(self, served):
        with SyncServingClient(*served.address) as client:
            with pytest.raises(ServingError, match="allow_ingest"):
                client.ingest([(1, 2)])

    def test_engine_serve_is_a_context_manager(self, serve_stream, serve_config):
        engine = _build_engine(serve_stream, serve_config)
        try:
            with engine.serve() as handle:
                with SyncServingClient(*handle.address) as client:
                    assert client.ping()
        finally:
            engine.close()


# ---------------------------------------------------------------------- #
# Cross-client coalescing and interleaved parity
# ---------------------------------------------------------------------- #
class TestConcurrency:
    def test_concurrent_clients_coalesce_into_shared_batches(self, engine, query_keys):
        # A long dally makes coalescing deterministic: every query in flight
        # during one window lands in one gather.
        config = ServingConfig(max_delay_us=20_000)
        handle = serve_in_background(engine, config=config)
        try:
            host, port = handle.address

            async def fire(n):
                clients = [await connect(host, port) for _ in range(n)]
                try:
                    await asyncio.gather(
                        *(
                            client.query_edges([query_keys[i % len(query_keys)]])
                            for i, client in enumerate(clients)
                        )
                    )
                finally:
                    for client in clients:
                        await client.close()

            asyncio.run(fire(12))
            stats = handle.stats()["coalescer"]
        finally:
            handle.stop()
        assert stats["submitted"] == 12
        assert stats["batches"] < stats["submitted"]
        assert stats["mean_batch_size"] > 1.0

    def test_interleaved_clients_stay_bit_exact_vs_oracle(self, engine, query_keys):
        oracle = dict(zip(query_keys, engine.estimator.query_edges(query_keys)))
        handle = engine.serve()
        try:
            host, port = handle.address

            async def client_loop(index):
                client = await connect(host, port)
                mismatches = 0
                generations = []
                try:
                    for round_ in range(40):
                        key = query_keys[(index * 7 + round_) % len(query_keys)]
                        result = await client.query_edges([key])
                        generations.append(result.generation)
                        if result.values[0] != oracle[key]:
                            mismatches += 1
                finally:
                    await client.close()
                return mismatches, generations

            outcomes = asyncio.run(
                _gather_clients(client_loop, num_clients=8)
            )
        finally:
            handle.stop()
        assert sum(mismatches for mismatches, _ in outcomes) == 0
        for _, generations in outcomes:
            assert generations == sorted(generations), "generation regressed"


async def _gather_clients(client_loop, num_clients):
    return await asyncio.gather(*(client_loop(i) for i in range(num_clients)))


# ---------------------------------------------------------------------- #
# Sessions: monotonic reads across live ingest
# ---------------------------------------------------------------------- #
class TestSessions:
    def test_watermark_detects_regression(self):
        watermark = _Watermark()
        watermark.observe(3)
        watermark.observe(3)
        watermark.observe(5)
        with pytest.raises(ConsistencyError, match="monotonic"):
            watermark.observe(4)

    def test_monotonic_reads_across_wire_ingest_and_plan_rebuild(
        self, serve_stream, serve_config
    ):
        engine = _build_engine(serve_stream, serve_config)
        handle = serve_in_background(
            engine, config=ServingConfig(allow_ingest=True)
        )
        try:
            host, port = handle.address
            plan_before = engine.estimator.compile_plan().generation
            with SyncSession(host, port) as session:
                first = session.query_edges([("s-new", "t-new")])
                assert first.values[0] == 0.0
                generation_before = session.generation_observed

                ingested, generation = session.ingest(
                    [("s-new", "t-new"), ("s-new", "t-new"), ("s-other", "t-new")]
                )
                assert ingested == 3
                assert generation > generation_before

                # Reads after the ingest see its writes and never regress.
                second = session.query_edges([("s-new", "t-new")])
                assert second.values[0] >= 2.0
                assert second.generation >= generation
                assert session.generation_observed >= generation
            # The wire ingest forced a real plan rebuild on the engine.
            assert engine.estimator.compile_plan().generation > plan_before
        finally:
            handle.stop()
            engine.close()

    def test_sync_session_seeds_watermark_from_hello(self, engine):
        handle = engine.serve()
        try:
            with SyncSession(*handle.address) as session:
                assert session.generation_observed == int(
                    engine.estimator.ingest_generation
                )
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# Overload: typed rejects, bounded depth, slow clients, deadlines
# ---------------------------------------------------------------------- #
class TestOverload:
    def test_queue_full_sheds_with_typed_retry_later(self, engine, query_keys):
        config = ServingConfig(max_pending=8, max_delay_us=50_000)
        handle = serve_in_background(engine, config=config)
        try:
            host, port = handle.address

            async def flood():
                client = await connect(host, port)
                try:
                    results = await asyncio.gather(
                        *(
                            client.query_edges([query_keys[i % len(query_keys)]])
                            for i in range(64)
                        ),
                        return_exceptions=True,
                    )
                finally:
                    await client.close()
                return results

            results = asyncio.run(asyncio.wait_for(flood(), timeout=30.0))
            stats = handle.stats()
        finally:
            handle.stop()
        rejected = [r for r in results if isinstance(r, RetryLater)]
        answered = [r for r in results if not isinstance(r, Exception)]
        assert len(rejected) + len(answered) == 64, "a request hung or died untyped"
        assert rejected, "overload never surfaced as retry_later"
        assert answered, "admission shed everything"
        assert stats["coalescer"]["max_depth"] <= 8, "queue depth exceeded the bound"
        assert stats["requests"]["retry_later"] == len(rejected)

    def test_per_connection_inflight_cap_sheds_greedy_pipeliner(
        self, engine, query_keys
    ):
        config = ServingConfig(max_inflight=4, max_delay_us=50_000)
        handle = serve_in_background(engine, config=config)
        try:
            host, port = handle.address

            async def pipeline():
                client = await connect(host, port)
                try:
                    return await asyncio.gather(
                        *(client.query_edges([query_keys[0]]) for _ in range(16)),
                        return_exceptions=True,
                    )
                finally:
                    await client.close()

            results = asyncio.run(asyncio.wait_for(pipeline(), timeout=30.0))
        finally:
            handle.stop()
        assert any(isinstance(r, RetryLater) for r in results)
        assert any(not isinstance(r, Exception) for r in results)

    def test_expired_deadline_is_typed_over_the_wire(self, engine, query_keys):
        config = ServingConfig(max_delay_us=200_000)  # park requests in the queue
        handle = serve_in_background(engine, config=config)
        try:
            with SyncServingClient(*handle.address) as client:
                with pytest.raises(DeadlineExceeded):
                    client.query_edges(query_keys[:2], deadline_ms=1.0)
        finally:
            handle.stop()

    def test_slow_client_is_dropped_without_stalling_healthy_peer(
        self, engine, query_keys
    ):
        config = ServingConfig(
            max_write_queue=4,
            max_inflight=4_096,
            max_pending=1_000_000,
            max_batch=4_096,
        )
        handle = serve_in_background(engine, config=config)
        try:
            host, port = handle.address
            # The slow client advertises a tiny receive window and never
            # reads: large responses back up through the kernel, the
            # per-connection write queue fills, and the server drops it.
            slow = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4_096)
            slow.connect((host, port))
            big_batch = [list(key) for key in query_keys] * 32  # ~2k keys/request
            frame = wire.encode_frame(
                {"op": wire.OP_QUERY_EDGES, "id": 1, "edges": big_batch}
            )
            try:
                slow.settimeout(10.0)
                for index in range(200):
                    try:
                        slow.sendall(frame)
                    except (BrokenPipeError, ConnectionResetError, socket.timeout):
                        break  # server already dropped us

                # A healthy peer stays responsive while the slow one backs up.
                direct = engine.estimator.query_edges(query_keys[:4])
                began = time.monotonic()
                with SyncServingClient(host, port) as client:
                    values = list(client.query_edges(query_keys[:4]).values)
                assert values == list(direct)
                assert time.monotonic() - began < 10.0

                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    if handle.stats()["connections_dropped"] >= 1:
                        break
                    time.sleep(0.1)
                assert handle.stats()["connections_dropped"] >= 1, (
                    "slow client was never dropped"
                )
            finally:
                slow.close()
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# Graceful drain
# ---------------------------------------------------------------------- #
class TestDrain:
    def test_shutdown_answers_admitted_requests_then_sheds(self, engine, query_keys):
        direct = engine.estimator.query_edges(query_keys[:1])

        async def scenario():
            server = SketchServer(
                engine, config=ServingConfig(max_delay_us=100_000)
            )
            await server.start()
            host, port = server.address
            client = await connect(host, port)
            try:
                # Admit requests that will still be dallying when the drain
                # starts, then shut down underneath them.
                in_flight = [
                    asyncio.ensure_future(client.query_edges([query_keys[0]]))
                    for _ in range(4)
                ]
                await asyncio.sleep(0.05)  # let dispatch admit them
                await server.shutdown()
                results = await asyncio.gather(*in_flight, return_exceptions=True)
                answered = [
                    r for r in results if not isinstance(r, Exception)
                ]
                assert answered, "drain dropped admitted work"
                for result in answered:
                    assert list(result.values) == list(direct)
                # The connection is gone afterwards; new requests fail typed.
                with pytest.raises((ServerClosed, ServingError)):
                    await client.query_edges([query_keys[0]])
            finally:
                await client.close()
            return True

        assert asyncio.run(asyncio.wait_for(scenario(), timeout=30.0))

    def test_draining_server_sheds_new_queries_typed(self, engine, query_keys):
        async def scenario():
            server = SketchServer(engine, config=ServingConfig())
            await server.start()
            client = await connect(*server.address)
            try:
                server._draining = True  # drain announced, listener still up
                with pytest.raises(ServerClosed):
                    await client.query_edges([query_keys[0]])
            finally:
                server._draining = False
                await client.close()
                await server.shutdown()

        asyncio.run(asyncio.wait_for(scenario(), timeout=30.0))


# ---------------------------------------------------------------------- #
# Sharded and degraded serving over the wire
# ---------------------------------------------------------------------- #
class TestShardedServing:
    def test_sharded_backend_served_bit_exact(self, serve_stream, serve_config):
        engine = (
            SketchEngine.builder()
            .config(serve_config)
            .dataset(serve_stream)
            .sharded(2)
            .build()
        )
        try:
            engine.ingest(serve_stream)
            keys = sorted(serve_stream.distinct_edges())[:48]
            direct = engine.estimator.query_edges(keys)
            with engine.serve() as handle:
                with SyncServingClient(*handle.address) as client:
                    assert client.hello["backend"] == "sharded"
                    result = client.query_edges(keys)
            assert list(result.values) == list(direct)
        finally:
            engine.close()

    def test_degraded_provenance_crosses_the_wire(self, serve_stream, serve_config):
        from repro.graph.sampling import reservoir_sample

        sample = reservoir_sample(serve_stream, 800, seed=5)
        spec = faults.FaultSpec(
            site=faults.SITE_CRASH_BEFORE_APPLY, at_hit=1, shard=1, persistent=True
        )
        faults.install(faults.FaultPlan([spec]))
        try:
            engine = (
                SketchEngine.builder()
                .config(serve_config)
                .sample(sample)
                .stream_size_hint(len(serve_stream))
                .sharded(3, "processes")
                .recovery(
                    max_restarts=1, backoff_seconds=0.01, degraded_serving=True
                )
                .build()
            )
            try:
                engine.ingest(serve_stream, batch_size=256)
                assert engine.estimator.degraded
                # Stride across the whole distinct set so the query batch
                # spans every shard's partitions, including the dead one.
                all_keys = sorted(serve_stream.distinct_edges())
                keys = all_keys[:: max(1, len(all_keys) // 256)]
                direct = engine.estimator.query_edges(keys)
                with engine.serve() as handle:
                    with SyncServingClient(*handle.address) as client:
                        result = client.query_edges(keys)
                        confidence = client.query_edges_confidence(keys)
                # Degraded serving is flagged on the coalesced lane...
                assert result.degraded is True
                assert list(result.values) == list(direct)
                # ...and per-key provenance rides the confidence lane.
                flagged = [row for row in confidence if row.get("degraded")]
                assert flagged, "no confidence row carried degraded provenance"
                for row in flagged:
                    assert row["interval"]["upper_slack"] > 0.0
            finally:
                engine.close()
        finally:
            faults.clear()


# ---------------------------------------------------------------------- #
# CLI: serve + query --connect end to end
# ---------------------------------------------------------------------- #
class TestServeCli:
    def test_serve_and_query_connect_roundtrip(self, tmp_path):
        from repro.api.cli import main as cli_main

        snapshot = str(tmp_path / "serve.snap")
        assert (
            cli_main(
                [
                    "build",
                    "--dataset",
                    "zipf",
                    "--edges",
                    "2000",
                    "--cells",
                    "6000",
                    "--ingest",
                    "--out",
                    snapshot,
                ]
            )
            == 0
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--snapshot", snapshot],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            ready = json.loads(process.stdout.readline())
            assert ready["serving"] is True and ready["port"] > 0
            address = f"{ready['host']}:{ready['port']}"
            result = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "query",
                    "--connect",
                    address,
                    "--edge",
                    "1",
                    "2",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            document = json.loads(result.stdout)
            assert document["connect"] == address
            assert len(document["estimates"]) == 1
            assert document["estimates"][0]["value"] >= 0.0
        finally:
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        final = json.loads(process.stdout.read())
        assert final["serving"] is False
        assert final["draining"] is True

    def test_query_requires_exactly_one_target(self):
        from repro.api.cli import main as cli_main

        assert cli_main(["query", "--edge", "1", "2"]) == 2  # neither
        assert (
            cli_main(
                [
                    "query",
                    "--edge",
                    "1",
                    "2",
                    "--snapshot",
                    "x.snap",
                    "--connect",
                    "h:1",
                ]
            )
            == 2
        )  # both

    def test_query_connect_refuses_window_queries(self):
        from repro.api.cli import main as cli_main

        code = cli_main(
            [
                "query",
                "--connect",
                "127.0.0.1:1",
                "--edge",
                "1",
                "2",
                "--window",
                "0",
                "1",
            ]
        )
        assert code == 2

"""Parity and state tests for the sharded ingestion & query engine.

The acceptance bar: a :class:`~repro.distributed.coordinator.ShardedGSketch`
with **any** shard count and **any** executor returns estimates identical to
a single :class:`~repro.core.gsketch.GSketch` over the same stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsketch import GSketch
from repro.core.router import OUTLIER_PARTITION, VertexRouter
from repro.distributed import (
    ProcessPoolExecutor,
    SequentialExecutor,
    ShardedGSketch,
    ShardPlan,
    ThreadPoolExecutor,
)
from repro.graph.edge import StreamEdge


@pytest.fixture(scope="module")
def reference(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(
        zipf_sample, small_config, stream_size_hint=len(zipf_stream)
    )
    for edge in zipf_stream:
        gsketch.update(edge.source, edge.target, edge.frequency)
    return gsketch


@pytest.fixture(scope="module")
def query_edges(zipf_stream):
    edges = sorted(zipf_stream.distinct_edges())[:300]
    edges.append((987_654_321, 42))  # outlier-routed query
    return edges


class TestShardPlan:
    def test_every_partition_assigned_exactly_once(self, reference):
        plan = ShardPlan.from_tree(reference.tree, 3, stats=reference.stats)
        assigned = sorted(plan.assignments)
        assert assigned == sorted(
            list(range(reference.num_partitions)) + [OUTLIER_PARTITION]
        )

    def test_loads_are_balanced(self, reference):
        plan = ShardPlan.from_tree(reference.tree, 2, stats=reference.stats)
        loads = plan.shard_loads()
        total = sum(loads)
        # LPT keeps the heaviest bin within a modest factor of the mean
        # whenever there are enough items to pack (4/3 bound for many items;
        # leave slack for degenerate leaf distributions).
        assert max(loads) <= 0.95 * total
        assert min(loads) > 0

    def test_lookup_table_matches_assignments(self, reference):
        plan = ShardPlan.from_tree(reference.tree, 4, stats=reference.stats)
        table = plan.lookup_table()
        for partition in range(plan.num_partitions):
            assert table[partition] == plan.shard_of(partition)
        assert table[OUTLIER_PARTITION] == plan.shard_of(OUTLIER_PARTITION)

    def test_more_shards_than_partitions_is_allowed(self, reference):
        many = reference.num_partitions + 5
        plan = ShardPlan.from_tree(reference.tree, many, stats=reference.stats)
        assert plan.num_shards == many

    def test_rejects_incomplete_assignments(self):
        with pytest.raises(ValueError):
            ShardPlan(num_shards=2, num_partitions=2, assignments={0: 0, -1: 1})


class TestVertexRouterBatch:
    def test_route_batch_matches_partition_of(self, reference, zipf_stream):
        batch = next(zipf_stream.iter_batches(1_000))
        routed = reference.router.route_batch(batch.sources)
        for i, source in enumerate(batch.sources.tolist()):
            assert routed[i] == reference.router.partition_of(source)

    def test_route_batch_marks_unseen_vertices_as_outliers(self, reference):
        routed = reference.router.route_batch(np.array([10**12, 10**12 + 1]))
        assert (routed == OUTLIER_PARTITION).all()

    def test_route_batch_fallback_for_string_labels(self):
        router = VertexRouter({"a": 0, "b": 1}, num_partitions=2)
        routed = router.route_batch(["a", "b", "zz"])
        assert routed.tolist() == [0, 1, OUTLIER_PARTITION]


@pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
def test_sharded_estimates_identical_to_single_gsketch(
    zipf_stream, zipf_sample, small_config, reference, query_edges, num_shards
):
    sharded = ShardedGSketch.build(
        zipf_sample, small_config, num_shards=num_shards,
        stream_size_hint=len(zipf_stream),
    )
    sharded.ingest(zipf_stream, batch_size=1024)
    assert sharded.query_edges(query_edges) == reference.query_edges(query_edges)
    assert sharded.elements_processed == reference.elements_processed
    assert sharded.outlier_elements == reference.outlier_elements
    assert sharded.total_frequency == reference.total_frequency


@pytest.mark.parametrize(
    "executor_factory",
    [SequentialExecutor, lambda: ThreadPoolExecutor(max_workers=2), ProcessPoolExecutor],
    ids=["sequential", "threads", "processes"],
)
def test_every_executor_produces_identical_state(
    zipf_stream, zipf_sample, small_config, reference, query_edges, executor_factory
):
    with ShardedGSketch.build(
        zipf_sample, small_config, num_shards=2, executor=executor_factory(),
        stream_size_hint=len(zipf_stream),
    ) as sharded:
        sharded.ingest(zipf_stream, batch_size=2048)
        assert sharded.query_edges(query_edges) == reference.query_edges(query_edges)
        reassembled = sharded.to_gsketch()
    for left, right in zip(reference.partitions, reassembled.partitions):
        assert np.array_equal(left.table, right.table)
    assert np.array_equal(
        reference.outlier_sketch.table, reassembled.outlier_sketch.table
    )


def test_checkpoint_round_trip(zipf_stream, zipf_sample, small_config, query_edges,
                               reference):
    source = ShardedGSketch.build(
        zipf_sample, small_config, num_shards=3, stream_size_hint=len(zipf_stream)
    )
    source.ingest(zipf_stream)
    states = source.shard_states()
    assert all(isinstance(state, bytes) for state in states)

    restored = ShardedGSketch.build(
        zipf_sample, small_config, num_shards=3, stream_size_hint=len(zipf_stream)
    )
    restored.load_shard_states(states)
    assert restored.query_edges(query_edges) == reference.query_edges(query_edges)


def test_merge_equals_concatenated_stream(
    zipf_stream, zipf_sample, small_config, query_edges, reference
):
    half = len(zipf_stream) // 2

    def build():
        return ShardedGSketch.build(
            zipf_sample, small_config, num_shards=2,
            stream_size_hint=len(zipf_stream),
        )

    first, second = build(), build()
    first.ingest(zipf_stream.prefix(half))
    second.ingest(zipf_stream.suffix(half))
    first.merge(second)
    assert first.query_edges(query_edges) == reference.query_edges(query_edges)
    assert first.elements_processed == reference.elements_processed


def test_from_gsketch_preserves_populated_state(reference, query_edges):
    sharded = ShardedGSketch.from_gsketch(reference, num_shards=2)
    assert sharded.query_edges(query_edges) == reference.query_edges(query_edges)
    assert sharded.elements_processed == reference.elements_processed
    # and it keeps ingesting correctly from there
    sharded.update(987_654_321, 42)
    assert sharded.query_edge((987_654_321, 42)) >= 1.0


def test_single_element_update_path(zipf_sample, small_config):
    sharded = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    sharded.update(1, 2, 3.0)
    assert sharded.query_edge((1, 2)) >= 3.0
    assert sharded.elements_processed == 1


def test_merge_rejects_mismatched_plans(zipf_sample, small_config):
    a = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    b = ShardedGSketch.build(zipf_sample, small_config, num_shards=3)
    with pytest.raises(ValueError):
        a.merge(b)


def test_ingest_accepts_plain_edge_iterables(zipf_sample, small_config):
    sharded = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    edges = [StreamEdge(1, 2), StreamEdge(3, 4), StreamEdge(1, 2)]
    assert sharded.ingest(edges) == 3
    assert sharded.query_edge((1, 2)) >= 2.0


def test_ingest_consumes_generators_lazily(zipf_sample, small_config):
    """Generator input is chunked without materializing the whole stream."""
    sharded = ShardedGSketch.build(zipf_sample, small_config, num_shards=2)
    consumed = []

    def edge_source():
        for i in range(5_000):
            consumed.append(i)
            yield StreamEdge(i % 50, (i * 3) % 50)

    assert sharded.ingest(edge_source(), batch_size=256) == 5_000
    assert len(consumed) == 5_000
    assert sharded.elements_processed == 5_000


def test_checkpoint_restore_recovers_element_counters(
    zipf_stream, zipf_sample, small_config
):
    source = ShardedGSketch.build(
        zipf_sample, small_config, num_shards=2, stream_size_hint=len(zipf_stream)
    )
    source.ingest(zipf_stream)
    restored = ShardedGSketch.build(
        zipf_sample, small_config, num_shards=2, stream_size_hint=len(zipf_stream)
    )
    restored.load_shard_states(source.shard_states())
    assert restored.elements_processed == source.elements_processed
    assert restored.outlier_elements == source.outlier_elements
    assert restored.total_frequency == source.total_frequency


def test_merge_survives_process_executor_and_further_ingest(
    zipf_stream, zipf_sample, small_config, query_edges, reference
):
    """Coordinator-side merges must not be overwritten by stale worker state."""
    half = len(zipf_stream) // 2
    with ShardedGSketch.build(
        zipf_sample, small_config, num_shards=2, executor=ProcessPoolExecutor(),
        stream_size_hint=len(zipf_stream),
    ) as first:
        first.ingest(zipf_stream.prefix(half), batch_size=1024)
        second = ShardedGSketch.build(
            zipf_sample, small_config, num_shards=2,
            stream_size_hint=len(zipf_stream),
        )
        second.ingest(zipf_stream.suffix(half + 100), batch_size=1024)
        first.merge(second)
        # Keep ingesting through the (restarted) workers after the merge.
        first.ingest(
            zipf_stream.prefix(half + 100).suffix(half), batch_size=1024
        )
        assert first.query_edges(query_edges) == reference.query_edges(query_edges)
        assert first.elements_processed == reference.elements_processed


def test_load_shard_states_survives_process_executor(
    zipf_stream, zipf_sample, small_config, query_edges, reference
):
    """Restoring a checkpoint discards stale worker state, not the checkpoint."""
    source = ShardedGSketch.build(
        zipf_sample, small_config, num_shards=2, stream_size_hint=len(zipf_stream)
    )
    source.ingest(zipf_stream)
    with ShardedGSketch.build(
        zipf_sample, small_config, num_shards=2, executor=ProcessPoolExecutor(),
        stream_size_hint=len(zipf_stream),
    ) as target:
        target.ingest(zipf_stream.prefix(300), batch_size=128)  # stale state
        target.load_shard_states(source.shard_states())
        assert target.query_edges(query_edges) == reference.query_edges(query_edges)
        assert target.elements_processed == reference.elements_processed

"""Smoke test for the throughput benchmark runner."""

from __future__ import annotations

import json

from repro.experiments.throughput import main, run_throughput


def test_run_throughput_reports_all_modes():
    report = run_throughput(
        num_edges=1_500,
        shard_counts=(1, 2),
        batch_size=512,
        total_cells=4_000,
        sample_size=300,
        parity_queries=50,
    )
    assert report["parity_ok"] is True
    modes = {(row["dataset"], row["mode"]) for row in report["results"]}
    for dataset in ("rmat", "zipf"):
        assert (dataset, "per-edge") in modes
        assert (dataset, "batched") in modes
        assert (dataset, "sharded-1") in modes
        assert (dataset, "sharded-2") in modes
    for row in report["results"]:
        assert row["edges_per_second"] > 0
        if row["mode"] != "per-edge":
            assert row["speedup_vs_per_edge"] > 0


def test_main_writes_report(tmp_path, monkeypatch, capsys):
    output = tmp_path / "bench.json"
    # Shrink the workload below even --quick for test speed.
    monkeypatch.setattr("repro.experiments.throughput.QUICK_EDGES", 800)
    exit_code = main(["--quick", "--output", str(output), "--batch-size", "256"])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["parity_ok"] is True
    assert report["config"]["num_edges"] == 800
    assert "edges/s" in capsys.readouterr().out

"""Smoke tests for the throughput, partition-build and query-bench runners."""

from __future__ import annotations

import json

from repro.experiments.build_bench import main as build_bench_main
from repro.experiments.build_bench import run_build_bench
from repro.experiments.query_bench import run_query_bench
from repro.experiments.throughput import main, run_throughput


def test_run_throughput_reports_all_modes():
    report = run_throughput(
        num_edges=1_500,
        shard_counts=(1, 2),
        batch_size=512,
        total_cells=4_000,
        sample_size=300,
        parity_queries=50,
    )
    assert report["parity_ok"] is True
    modes = {(row["dataset"], row["mode"]) for row in report["results"]}
    for dataset in ("rmat", "zipf"):
        assert (dataset, "per-edge") in modes
        assert (dataset, "batched") in modes
        assert (dataset, "sharded-1") in modes
        assert (dataset, "sharded-2") in modes
        assert (dataset, "sharded-1-shared") in modes
        assert (dataset, "sharded-2-shared") in modes
    for row in report["results"]:
        assert row["edges_per_second"] > 0
        if row["mode"] != "per-edge":
            assert row["speedup_vs_per_edge"] > 0
        if row["mode"].endswith("-shared"):
            # Pipelined shared-memory breakdown: dispatch vs stall vs serial.
            breakdown = row["breakdown"]
            assert breakdown["pipelined"] is True
            assert breakdown["batches"] > 0
            assert breakdown["dispatch_seconds"] >= 0
            assert breakdown["stall_seconds"] >= 0
            assert breakdown["coordinator_seconds"] >= 0
        elif row["mode"].startswith("sharded-"):
            # Registry-delta breakdown (the executor-choice diagnostic).
            breakdown = row["breakdown"]
            assert breakdown["batches"] > 0
            assert breakdown["apply_wall_seconds"] >= 0
            assert breakdown["route_seconds"] >= 0
            assert breakdown["coordinator_seconds"] >= 0
            assert "registry" in breakdown["source"]
        else:
            assert row["breakdown"] is None
    assert any(
        entry["name"] == "repro_ingest_stage_seconds" for entry in report["telemetry"]
    )


def test_run_build_bench_verifies_equivalence():
    report = run_build_bench(sample_sizes=(4_000,), repeats=1)
    assert report["trees_identical"] is True
    scenarios = {row["scenario"] for row in report["results"]}
    assert scenarios == {"data-only", "workload-aware"}
    for row in report["results"]:
        assert row["leaves"] >= 1
        assert row["columnar_seconds"] > 0
        assert row["scalar_seconds"] > 0


def test_build_bench_main_writes_report(tmp_path, capsys):
    output = tmp_path / "build.json"
    exit_code = build_bench_main(
        ["--quick", "--output", str(output), "--repeats", "1", "--max-seconds", "120"]
    )
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["trees_identical"] is True
    assert "speedup" in capsys.readouterr().out


def test_main_writes_report(tmp_path, monkeypatch, capsys):
    output = tmp_path / "bench.json"
    # Shrink the workload below even --quick for test speed.
    monkeypatch.setattr("repro.experiments.throughput.QUICK_EDGES", 800)
    exit_code = main(["--quick", "--output", str(output), "--batch-size", "256"])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["parity_ok"] is True
    assert report["config"]["num_edges"] == 800
    assert "edges/s" in capsys.readouterr().out


def test_run_query_bench_reports_all_backends():
    report = run_query_bench(
        num_edges=1_500,
        backends=("global", "gsketch", "sharded-2", "windowed"),
        batch_sizes=(1, 8, 64),
        num_queries=128,
        total_cells=4_000,
        sample_size=300,
        rounds=1,
        repeats=1,
    )
    assert report["parity_ok"] is True
    rows = {(row["backend"], row["batch_size"]) for row in report["results"]}
    for backend in ("global", "gsketch", "sharded-2", "windowed"):
        for batch_size in (1, 8, 64):
            assert (backend, batch_size) in rows
    for row in report["results"]:
        assert row["parity_ok"] is True
        assert row["direct_qps"] > 0
        assert row["plan_qps"] > 0
        assert row["speedup"] == row["plan_qps"] / row["direct_qps"]
    telemetry = report["telemetry"]
    assert any(
        entry["name"] == "repro_query_plan_seconds" and entry["count"] > 0
        for entry in telemetry["query_plane"]
    )
    # Batch-1 passes over a Zipf workload must produce hot-cache traffic.
    assert telemetry["hot_cache"]["gsketch"]["hits"] > 0

"""Invariants of the offline sketch-partitioning phase."""

from __future__ import annotations

import pytest

from repro.core.config import GSketchConfig
from repro.core.gsketch import GSketch
from repro.core.partitioner import build_partition_tree
from repro.graph.statistics import VertexStatistics
from repro.graph.stream import GraphStream


@pytest.fixture(scope="module", params=["rebalanced", "halving"])
def built_tree(request, zipf_sample):
    config = GSketchConfig(
        total_cells=8_000, depth=4, seed=7, width_allocation=request.param
    )
    stats = VertexStatistics.from_stream(zipf_sample)
    return config, stats, build_partition_tree(stats, config)


def test_width_budget_conserved(built_tree):
    """Leaf widths plus unredistributable surplus never exceed the budget."""
    config, _stats, tree = built_tree
    assert tree.total_leaf_width() + tree.surplus_width <= config.partitioned_width
    assert tree.surplus_width >= 0
    for leaf in tree.leaves:
        assert leaf.width >= 1


def test_leaves_partition_the_sampled_vertices(built_tree):
    """Every sampled source vertex lands in exactly one leaf."""
    _config, stats, tree = built_tree
    seen = {}
    for leaf in tree.leaves:
        for vertex in leaf.vertices:
            assert vertex not in seen, f"vertex {vertex} in two leaves"
            seen[vertex] = leaf.index
    assert set(seen) == set(stats.vertices())


def test_leaf_reasons_are_valid(built_tree):
    _config, _stats, tree = built_tree
    valid = {"width_floor", "collision_bound", "too_few_vertices"}
    for leaf in tree.leaves:
        assert leaf.leaf_reason in valid


def test_outlier_reserve_is_honoured(zipf_sample, small_config):
    """The outlier sketch receives at least the configured reserve."""
    gsketch = GSketch.build(zipf_sample, small_config)
    assert gsketch.outlier_sketch.width >= small_config.outlier_width
    # Overall cells stay within budget plus the depth-rounding slack.
    assert gsketch.memory_cells <= small_config.total_cells


def test_empty_sample_degenerates_to_outlier_only():
    config = GSketchConfig(total_cells=1_000, depth=4, seed=1)
    empty = GraphStream([], name="empty")
    gsketch = GSketch.build(empty, config)
    gsketch.update("never-seen", "target")
    assert gsketch.outlier_elements == 1
    assert gsketch.is_outlier_query(("never-seen", "target"))

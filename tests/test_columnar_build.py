"""Golden-equivalence and property tests for the columnar build path.

The columnar :func:`~repro.core.partitioner.build_partition_tree` must be an
observationally exact replacement for the scalar reference
(:func:`~repro.core.partitioner.build_partition_tree_scalar`): leaf-for-leaf
identical trees on real sample distributions, bit-identical post-ingest
counters, and agreement on the degenerate shapes (ties, zero degrees, zero
weights) where vectorized and scalar arithmetic most easily diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GSketchConfig
from repro.core.errors import best_split_index, split_objective_data_only
from repro.core.gsketch import GSketch
from repro.core.partitioner import (
    build_partition_tree,
    build_partition_tree_scalar,
    workload_vertex_weights,
)
from repro.core.router import OUTLIER_PARTITION, VertexRouter
from repro.datasets.dblp import DBLPConfig, generate_dblp_stream
from repro.datasets.rmat import RMATConfig, generate_rmat_edges
from repro.graph.sampling import reservoir_sample
from repro.graph.statistics import VertexStatistics, variance_ratio
from repro.graph.stream import GraphStream
from repro.queries.subgraph_query import SubgraphQuery


def assert_trees_identical(columnar, scalar):
    """Leaf-for-leaf structural equality of two partition trees."""
    assert len(columnar.leaves) == len(scalar.leaves)
    assert columnar.surplus_width == scalar.surplus_width
    for leaf_c, leaf_s in zip(columnar.leaves, scalar.leaves):
        assert leaf_c.index == leaf_s.index
        assert leaf_c.vertices == leaf_s.vertices
        assert leaf_c.width == leaf_s.width
        assert leaf_c.nominal_width == leaf_s.nominal_width
        assert leaf_c.leaf_reason == leaf_s.leaf_reason
    # The assignment columns must agree with the leaf vertex tuples.
    assignments = columnar.leaf_assignments
    assert assignments is not None
    mapping = dict(zip(assignments.labels, assignments.partitions.tolist()))
    for leaf in columnar.leaves:
        for vertex in leaf.vertices:
            assert mapping[vertex] == leaf.index


def rmat_sample(num_edges=30_000, sample_size=6_000, seed=3) -> GraphStream:
    sources, targets = generate_rmat_edges(
        RMATConfig(seed=seed, scale=12, num_edges=num_edges)
    )
    stream = GraphStream.from_tuples(
        (int(s), int(t), float(i), 1.0)
        for i, (s, t) in enumerate(zip(sources, targets))
    )
    return reservoir_sample(stream, sample_size, seed=seed)


def dblp_sample(sample_size=5_000, seed=5) -> GraphStream:
    bundle = generate_dblp_stream(
        DBLPConfig(
            num_authors=2_000,
            num_papers=4_000,
            num_communities=40,
            teams_per_community=2,
            team_size=3,
            seed=9,
        )
    )
    return reservoir_sample(bundle.stream, sample_size, seed=seed)


def _workload_for(stats: VertexStatistics):
    """Deterministic smoothed workload weights over part of the vertex set."""
    counts = {v: float(i % 11 + 1) for i, v in enumerate(stats.ids) if i % 2 == 0}
    return workload_vertex_weights(stats, counts)


@pytest.fixture(scope="module", params=["rmat", "zipf", "dblp"])
def golden_sample(request, zipf_sample):
    if request.param == "rmat":
        return rmat_sample()
    if request.param == "dblp":
        return dblp_sample()
    return zipf_sample


@pytest.mark.parametrize("allocation", ["rebalanced", "halving"])
@pytest.mark.parametrize("workload", [False, True])
@pytest.mark.parametrize("extrapolate", [False, True])
def test_golden_tree_equivalence(golden_sample, allocation, workload, extrapolate):
    """Columnar and scalar builders agree leaf-for-leaf on real samples."""
    stats = VertexStatistics.from_stream(golden_sample)
    if extrapolate:
        # Fractional degrees exercise the float paths of the Theorem-1
        # capacities and the width allocation.
        stats = stats.extrapolated(0.25)
    config = GSketchConfig(
        total_cells=len(golden_sample) * 2,
        depth=4,
        seed=7,
        width_allocation=allocation,
    )
    weights = _workload_for(stats) if workload else None
    columnar = build_partition_tree(stats, config, weights)
    scalar = build_partition_tree_scalar(stats, config, weights)
    assert len(columnar.leaves) > 1  # the partitioner actually recursed
    assert_trees_identical(columnar, scalar)


def test_post_ingest_counters_bit_identical(zipf_stream, zipf_sample, small_config):
    """Sketches built from the two trees absorb a stream bit-identically."""
    stats = GSketch._sample_statistics(zipf_sample, len(zipf_stream))
    columnar_tree = build_partition_tree(stats, small_config)
    scalar_tree = build_partition_tree_scalar(stats, small_config)

    columnar = GSketch(
        config=small_config,
        tree=columnar_tree,
        router=VertexRouter.from_tree(columnar_tree),
        stats=stats,
    )
    scalar = GSketch(
        config=small_config,
        tree=scalar_tree,
        router=VertexRouter.from_tree(scalar_tree),
        stats=stats,
    )
    columnar.process(zipf_stream)
    scalar.process(zipf_stream)

    assert columnar.elements_processed == scalar.elements_processed
    assert columnar.outlier_elements == scalar.outlier_elements
    assert np.array_equal(columnar.outlier_sketch.table, scalar.outlier_sketch.table)
    assert len(columnar.partitions) == len(scalar.partitions)
    for sketch_c, sketch_s in zip(columnar.partitions, scalar.partitions):
        assert np.array_equal(sketch_c.table, sketch_s.table)


# --------------------------------------------------------------------- #
# Property tests: ties, zero degrees, zero weights
# --------------------------------------------------------------------- #
def _tied_stats() -> VertexStatistics:
    """Statistics with tied sort keys, zero-degree and zero-frequency vertices."""
    freq = {}
    deg = {}
    for v in range(40):  # tied average 5.0 via 10/2
        freq[v] = 10.0
        deg[v] = 2.0
    for v in range(40, 80):  # tied average 5.0 via 20/4
        freq[v] = 20.0
        deg[v] = 4.0
    for v in range(80, 100):  # zero sampled degree -> average 0
        freq[v] = 3.0
        deg[v] = 0.0
    for v in range(100, 120):  # zero frequency, positive degree -> average 0
        freq[v] = 0.0
        deg[v] = 5.0
    return VertexStatistics(freq, deg, total_frequency=sum(freq.values()))


@pytest.mark.parametrize("allocation", ["rebalanced", "halving"])
def test_tied_and_zero_degree_equivalence(allocation):
    stats = _tied_stats()
    config = GSketchConfig(
        total_cells=2_000,
        depth=4,
        seed=1,
        min_partition_width=8,
        max_partitions=16,
        width_allocation=allocation,
    )
    for weights in (None, _workload_for(stats), {v: 0.0 for v in stats.ids}):
        columnar = build_partition_tree(stats, config, weights)
        scalar = build_partition_tree_scalar(stats, config, weights)
        assert_trees_identical(columnar, scalar)


def test_prefix_sum_objective_matches_split_decision():
    """The shared kernel reproduces the SplitDecision on the same sorted order."""
    stats = _tied_stats()
    vertices = stats.vertices()
    decision = split_objective_data_only(vertices, stats)
    order = list(decision.order)
    frequency_terms = np.array([stats.frequency(v) for v in order])
    average = np.array(
        [stats.average_edge_frequency(v) for v in order], dtype=np.float64
    )
    ratio_terms = np.array(
        [stats.degree(v) for v in order]
    ) / np.where(average > 0, average, 1e-12)
    pivot, objective = best_split_index(frequency_terms, ratio_terms)
    assert pivot == decision.pivot
    assert objective == decision.objective


def test_zero_degree_vertices_sort_to_the_cheap_end():
    """Zero-average vertices land at the front of the columnar global order."""
    stats = _tied_stats()
    config = GSketchConfig(total_cells=2_000, depth=4, seed=1, min_partition_width=8)
    tree = build_partition_tree(stats, config)
    labels = tree.leaf_assignments.labels
    averages = [stats.average_edge_frequency(v) for v in labels]
    assert averages == sorted(averages)


# --------------------------------------------------------------------- #
# Columnar statistics
# --------------------------------------------------------------------- #
def test_from_arrays_census_matches_from_stream(zipf_stream):
    batch = zipf_stream.to_batch()
    vectorized = VertexStatistics.from_arrays(
        batch.sources, batch.targets, batch.frequencies
    )
    reference = VertexStatistics.from_stream(zipf_stream)
    assert set(vectorized.ids) == set(reference.ids)
    assert vectorized.total_frequency == reference.total_frequency
    for vertex in reference.ids:
        assert vectorized.frequency(vertex) == reference.frequency(vertex)
        assert vectorized.degree(vertex) == reference.degree(vertex)


def test_extrapolated_matches_scalar_formula(zipf_sample):
    stats = VertexStatistics.from_stream(zipf_sample)
    p = 0.2
    extrapolated = stats.extrapolated(p)
    for vertex in stats.ids:
        observed = stats.degree(vertex)
        assert extrapolated.frequency(vertex) == stats.frequency(vertex) * (1.0 / p)
        if observed <= 0:
            assert extrapolated.degree(vertex) == 0.0
        else:
            average = max(1.0, stats.frequency(vertex) / observed)
            capture = 1.0 - (1.0 - p) ** (average / p)
            assert extrapolated.degree(vertex) == observed / max(capture, p)


def test_empty_statistics_lookups_return_defaults():
    """Gathers over an empty (but int-interned) column must not crash."""
    from repro.core.errors import partition_error_data_only

    empty = VertexStatistics({}, {})
    freq, deg = empty.columns_for([1, 2])
    assert freq.tolist() == [0.0, 0.0]
    assert deg.tolist() == [0.0, 0.0]
    assert empty.frequency_sum([1, 2]) == 0.0
    assert partition_error_data_only([1, 2], empty, 8) == 0.0 - 0.0


def test_ragged_and_tuple_labels_fall_back_to_dict_paths():
    """Hashable-but-non-array labels (tuples, mixed arity) keep working."""
    stream = GraphStream.from_pairs(
        [((1, 2), "a"), ((1, 2, 3), "b"), ((1, 2), "c"), ("x", "a")]
    )
    assert variance_ratio(stream) >= 0.0
    stats = VertexStatistics.from_stream(stream)
    assert stats.frequency((1, 2)) == 2.0
    freq, _deg = stats.columns_for([(1, 2), (1, 2, 3), "missing"])
    assert freq.tolist() == [2.0, 1.0, 0.0]
    # Tuple labels on int-interned statistics must also route to the dict path.
    int_stats = VertexStatistics({1: 2.0, 2: 3.0}, {1: 1.0, 2: 1.0}, 5.0)
    freq, _deg = int_stats.columns_for([(1, 2), (1, 2, 3)])
    assert freq.tolist() == [0.0, 0.0]


def test_derived_statistics_keep_integer_interning(zipf_sample):
    stats = VertexStatistics.from_stream(zipf_sample)
    assert stats.int_ids is not None
    for derived in (
        stats.scaled(2.0),
        stats.extrapolated(0.5),
        stats.restricted_to(stats.vertices()[::2]),
    ):
        assert derived.int_ids is not None
        assert len(derived.int_ids) == len(derived.ids)


def test_restricted_and_scaled(zipf_sample):
    stats = VertexStatistics.from_stream(zipf_sample)
    subset = stats.vertices()[::5]
    restricted = stats.restricted_to(subset)
    assert set(restricted.ids) == set(subset)
    assert all(restricted.frequency(v) == stats.frequency(v) for v in subset)
    assert restricted.total_frequency == pytest.approx(
        sum(stats.frequency(v) for v in subset)
    )
    doubled = stats.scaled(2.0)
    assert doubled.total_frequency == stats.total_frequency * 2.0
    vertex = subset[0]
    assert doubled.frequency(vertex) == stats.frequency(vertex) * 2.0
    assert doubled.degree(vertex) == stats.degree(vertex) * 2.0


def test_variance_ratio_matches_naive_grouping(weighted_stream):
    naive_groups = {}
    for (source, _target), frequency in weighted_stream.edge_frequencies().items():
        naive_groups.setdefault(source, []).append(frequency)
    naive_local = float(
        np.mean([np.var(np.asarray(values)) for values in naive_groups.values()])
    )
    values = np.array(
        list(weighted_stream.edge_frequencies().values()), dtype=np.float64
    )
    expected = float(values.var()) / naive_local
    assert variance_ratio(weighted_stream) == pytest.approx(expected, rel=1e-12)


# --------------------------------------------------------------------- #
# Array-backed router construction
# --------------------------------------------------------------------- #
def test_router_from_tree_matches_dict_construction(zipf_sample, small_config):
    stats = VertexStatistics.from_stream(zipf_sample)
    tree = build_partition_tree(stats, small_config)
    from_columns = VertexRouter.from_tree(tree)
    from_mapping = VertexRouter(
        tree.vertex_partition_map(), num_partitions=len(tree.leaves)
    )
    assert len(from_columns) == len(from_mapping)
    probes = stats.vertices() + [10_000_001, -5]
    for vertex in probes:
        assert from_columns.partition_of(vertex) == from_mapping.partition_of(vertex)
    batch = np.array(probes, dtype=np.int64)
    assert np.array_equal(
        from_columns.route_batch(batch), from_mapping.route_batch(batch)
    )
    assert from_columns.partition_of(10_000_001) == OUTLIER_PARTITION


def test_router_from_arrays_rejects_bad_partitions():
    with pytest.raises(ValueError):
        VertexRouter.from_arrays(
            labels=[1, 2],
            int_labels=np.array([1, 2], dtype=np.int64),
            partitions=np.array([0, 5], dtype=np.int64),
            num_partitions=2,
        )


# --------------------------------------------------------------------- #
# Vectorized query serving
# --------------------------------------------------------------------- #
def test_query_subgraph_uses_vectorized_estimates(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config)
    gsketch.process(zipf_stream.prefix(2_000))
    edges = sorted(zipf_stream.distinct_edges())[:12] + [(10_000_001, 5)]
    query = SubgraphQuery.from_edges(edges)
    expected = sum(gsketch.query_edge(edge) for edge in edges)
    assert gsketch.query_subgraph(query) == pytest.approx(expected, rel=1e-12)


def test_confidence_batch_matches_scalar_confidence(
    zipf_stream, zipf_sample, small_config
):
    gsketch = GSketch.build(zipf_sample, small_config)
    gsketch.process(zipf_stream.prefix(2_000))
    edges = sorted(zipf_stream.distinct_edges())[:40] + [(10_000_001, 5)]
    intervals = gsketch.confidence_batch(edges)
    assert len(intervals) == len(edges)
    for edge, interval in zip(edges, intervals):
        reference = gsketch.confidence(edge)
        assert interval.estimate == reference.estimate
        assert interval.additive_bound == reference.additive_bound
        assert interval.failure_probability == reference.failure_probability
    assert gsketch.confidence_batch([]) == []

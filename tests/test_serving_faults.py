"""Wire-level fault injection and the client retry discipline.

Satellite suite for the self-healing serve plane.  Each test arms a seeded
:class:`repro.faults.FaultPlan` against an in-process server and pins one
client-visible contract:

* a frame **torn mid-payload** surfaces as a typed ``ServerClosed`` on a
  bare client, and is absorbed — bit-exactly — by a client carrying a
  :class:`RetryPolicy` (transparent reconnect + resubmit);
* an **oversize frame** sent mid-stream gets that connection dropped
  without wounding the server or its other clients;
* a **stalled connection** delays only its own responses — a healthy peer
  keeps its latency while the victim waits (and still gets the exact
  answer);
* a connection **dropped after admission** has its queued request
  cancelled (the coalescer's ``cancelled`` stat) instead of being answered
  into a closed write queue;
* the **non-idempotent ingest window** is never retried: the engine
  mutated once, the client sees a typed disconnect, nothing double-counts;
* a :class:`SyncSession`'s generation **watermark survives reconnect** —
  monotonic reads hold across failover;
* the ``health`` wire op answers in every server state, and the
  ``repro serve --health`` probe maps states to exit codes.
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import make_zipf_stream
from repro import faults
from repro.api.engine import SketchEngine
from repro.core.config import GSketchConfig
from repro.serving import wire
from repro.serving.client import (
    RetryPolicy,
    ServerClosed,
    ServingError,
    SyncServingClient,
)
from repro.serving.server import ServingConfig, serve_in_background
from repro.serving.session import SyncSession

RETRY = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.05, seed=3)


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    """Fault plans are process-global: never let one escape a test."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def serve_stream():
    return make_zipf_stream(num_edges=3_000, population=300, seed=11)


def _build_engine(stream):
    config = GSketchConfig(total_cells=8_000, depth=4, seed=7)
    engine = SketchEngine.builder().config(config).dataset(stream).build()
    engine.ingest(stream)
    return engine


@pytest.fixture(scope="module")
def engine(serve_stream):
    engine = _build_engine(serve_stream)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def query_keys(serve_stream):
    return sorted(serve_stream.distinct_edges())[:32]


def _arm(*specs: faults.FaultSpec) -> None:
    faults.install(faults.FaultPlan(list(specs)))


# ---------------------------------------------------------------------- #
# Torn frames
# ---------------------------------------------------------------------- #
class TestTornFrame:
    def test_torn_frame_is_typed_disconnect_without_retry(self, engine, query_keys):
        handle = serve_in_background(engine)
        try:
            with SyncServingClient(*handle.address) as client:
                client.query_edges(query_keys[:4])  # healthy round trip first
                _arm(faults.FaultSpec(site=faults.SITE_SERVING_TORN_FRAME))
                with pytest.raises(ServerClosed, match="wire error"):
                    client.query_edges(query_keys[:4])
        finally:
            faults.clear()
            handle.stop()

    def test_retry_policy_absorbs_torn_frame_bit_exact(self, engine, query_keys):
        direct = list(engine.estimator.query_edges(query_keys[:8]))
        handle = serve_in_background(engine)
        try:
            with SyncServingClient(*handle.address, retry=RETRY) as client:
                client.query_edges(query_keys[:8])
                _arm(faults.FaultSpec(site=faults.SITE_SERVING_TORN_FRAME))
                result = client.query_edges(query_keys[:8])
                assert list(result.values) == direct
                assert client.retries >= 1
                assert client.reconnects >= 1
        finally:
            faults.clear()
            handle.stop()

    def test_connect_retries_through_torn_hello(self, engine, query_keys):
        """The fault can land on the hello frame itself; the dial retries."""
        direct = list(engine.estimator.query_edges(query_keys[:4]))
        handle = serve_in_background(engine)
        try:
            _arm(faults.FaultSpec(site=faults.SITE_SERVING_TORN_FRAME))
            with SyncServingClient(*handle.address, retry=RETRY) as client:
                result = client.query_edges(query_keys[:4])
                assert list(result.values) == direct
        finally:
            faults.clear()
            handle.stop()


# ---------------------------------------------------------------------- #
# Malformed input mid-stream
# ---------------------------------------------------------------------- #
class TestOversizeFrame:
    def test_oversize_frame_drops_sender_only(self, engine, query_keys):
        import socket
        import struct

        config = ServingConfig(max_frame_bytes=64 * 1024)
        handle = serve_in_background(engine, config=config)
        try:
            host, port = handle.address
            rogue = socket.create_connection((host, port), timeout=10)
            try:
                rogue.settimeout(10.0)
                # Consume the hello, then claim a frame far past the cap.
                size = struct.unpack(">I", rogue.recv(4))[0]
                while size:
                    size -= len(rogue.recv(size))
                rogue.sendall(struct.pack(">I", 2**31) + b"x" * 16)
                # The server sends a typed protocol error, then hangs up on
                # us (EOF) — not on everyone.
                closing = b""
                while True:
                    chunk = rogue.recv(4096)
                    if not chunk:
                        break
                    closing += chunk
                assert b"cap" in closing
            finally:
                rogue.close()
            direct = list(engine.estimator.query_edges(query_keys[:4]))
            with SyncServingClient(host, port) as client:
                assert list(client.query_edges(query_keys[:4]).values) == direct
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# Stalls
# ---------------------------------------------------------------------- #
class TestStalledConnection:
    def test_stall_delays_victim_not_healthy_peer(self, engine, query_keys):
        direct = list(engine.estimator.query_edges(query_keys[:4]))
        handle = serve_in_background(engine)
        try:
            host, port = handle.address
            victim = SyncServingClient(host, port)
            healthy = SyncServingClient(host, port)
            try:
                victim.query_edges(query_keys[:4])
                healthy.query_edges(query_keys[:4])
                _arm(
                    faults.FaultSpec(
                        site=faults.SITE_SERVING_STALL_CONNECTION,
                        delay_seconds=0.6,
                    )
                )
                outcome: dict = {}

                def stalled_query():
                    began = time.monotonic()
                    result = victim.query_edges(query_keys[:4])
                    outcome["elapsed"] = time.monotonic() - began
                    outcome["values"] = list(result.values)

                worker = threading.Thread(target=stalled_query)
                worker.start()
                time.sleep(0.1)  # the stall spec has fired on the victim
                began = time.monotonic()
                peer = healthy.query_edges(query_keys[:4])
                peer_elapsed = time.monotonic() - began
                worker.join(timeout=10)
                assert outcome["values"] == direct  # stalled, never wrong
                assert outcome["elapsed"] >= 0.5
                assert list(peer.values) == direct
                assert peer_elapsed < 0.5, "stall leaked onto a healthy peer"
            finally:
                victim.close()
                healthy.close()
        finally:
            faults.clear()
            handle.stop()


# ---------------------------------------------------------------------- #
# Disconnect while queued
# ---------------------------------------------------------------------- #
class TestDropAfterAdmission:
    def test_dropped_connection_cancels_queued_request(self, engine, query_keys):
        handle = serve_in_background(engine)
        try:
            with SyncServingClient(*handle.address) as client:
                client.query_edges(query_keys[:4])
                _arm(faults.FaultSpec(site=faults.SITE_SERVING_DROP_DRAIN))
                with pytest.raises((ServerClosed, ServingError)):
                    client.query_edges(query_keys[:4])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = handle.stats()
                if stats["coalescer"]["cancelled"] >= 1:
                    break
                time.sleep(0.05)
            assert stats["coalescer"]["cancelled"] >= 1
            assert stats["connections_dropped"] >= 1
            # The server took no damage: a fresh client gets exact answers.
            direct = list(engine.estimator.query_edges(query_keys[:4]))
            with SyncServingClient(*handle.address) as client:
                assert list(client.query_edges(query_keys[:4]).values) == direct
        finally:
            faults.clear()
            handle.stop()


# ---------------------------------------------------------------------- #
# The non-idempotent window
# ---------------------------------------------------------------------- #
class TestIngestCrashWindow:
    def test_ingest_is_never_retried_across_the_ack_gap(self, serve_stream):
        engine = _build_engine(serve_stream)
        try:
            config = ServingConfig(allow_ingest=True)
            handle = serve_in_background(engine, config=config)
            try:
                with SyncServingClient(*handle.address, retry=RETRY) as client:
                    before = int(engine.estimator.ingest_generation)
                    _arm(faults.FaultSpec(site=faults.SITE_SERVING_INGEST_CRASH))
                    # The engine applies the batch, then the ack vanishes.  A
                    # retrying client MUST surface the disconnect instead of
                    # resubmitting — a resubmit here double-counts.
                    with pytest.raises((ServerClosed, ServingError)):
                        client.ingest([(1, 2), (3, 4)])
                    assert client.retries == 0, "non-idempotent op was retried"
                after = int(engine.estimator.ingest_generation)
                assert after == before + 1, "batch applied a number of times != 1"
            finally:
                faults.clear()
                handle.stop()
        finally:
            engine.close()


# ---------------------------------------------------------------------- #
# Sessions across failover
# ---------------------------------------------------------------------- #
class TestSessionFailover:
    def test_watermark_survives_transparent_reconnect(self, engine, query_keys):
        direct = list(engine.estimator.query_edges(query_keys[:6]))
        handle = serve_in_background(engine)
        try:
            with SyncSession(*handle.address, retry=RETRY) as session:
                first = session.query_edges(query_keys[:6])
                watermark = session.generation_observed
                assert watermark >= first.generation
                _arm(faults.FaultSpec(site=faults.SITE_SERVING_TORN_FRAME))
                second = session.query_edges(query_keys[:6])
                assert list(second.values) == direct
                assert session.reconnects >= 1
                # Monotonic reads held across the failover: the watermark
                # never regressed, and the post-reconnect answer advanced it.
                assert session.generation_observed >= watermark
                assert second.generation >= first.generation
        finally:
            faults.clear()
            handle.stop()


# ---------------------------------------------------------------------- #
# Health surface
# ---------------------------------------------------------------------- #
class TestHealth:
    def test_health_op_reports_serving_then_draining(self, engine):
        handle = serve_in_background(engine)
        try:
            with SyncServingClient(*handle.address) as client:
                document = client.health()
                assert document["state"] == wire.STATE_SERVING
                assert document["degraded"] is False
                assert document["generation"] >= 0
                # Drain announced: health still answers, reporting the state
                # instead of shedding the probe.
                handle.server._draining = True
                try:
                    assert client.health()["state"] == wire.STATE_DRAINING
                finally:
                    handle.server._draining = False
        finally:
            handle.stop()

    def test_cli_health_probe_exit_codes(self, engine, capsys):
        import json

        from repro.api.cli import main as cli_main

        handle = serve_in_background(engine)
        try:
            host, port = handle.address
            assert cli_main(["serve", "--health", f"{host}:{port}"]) == 0
            document = json.loads(capsys.readouterr().out)
            assert document["healthy"] is True
            assert document["state"] == wire.STATE_SERVING
        finally:
            handle.stop()
        # The listener is gone: the probe reports unreachable, exit 1.
        assert cli_main(["serve", "--health", f"{host}:{port}"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["healthy"] is False

"""Unit tests for the Count-Min sketch: guarantees, batching, state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.countmin import CountMinSketch
from repro.sketches.hashing import key_to_uint64


def _insert_counts(sketch: CountMinSketch, counts: dict) -> None:
    for key, count in counts.items():
        for _ in range(count):
            sketch.update(key)


def test_point_estimates_never_undercount():
    """Equation 1 is one-sided: estimates can only overcount."""
    rng = np.random.default_rng(3)
    sketch = CountMinSketch(width=128, depth=4, seed=1)
    truth = {int(k): int(c) for k, c in zip(rng.integers(0, 10_000, 400),
                                            rng.integers(1, 20, 400))}
    for key, count in truth.items():
        sketch.update(key, float(count))
    for key, count in truth.items():
        assert sketch.estimate(key) >= count


def test_overcount_bounded_by_error_bound_mostly():
    sketch = CountMinSketch(width=256, depth=5, seed=2)
    truth = {k: 1 for k in range(2_000)}
    _insert_counts(sketch, truth)
    bound = sketch.error_bound()
    violations = sum(
        1 for key in truth if sketch.estimate(key) > truth[key] + bound
    )
    # Equation 1: violation probability e^-depth per query.
    assert violations / len(truth) <= 2 * sketch.failure_probability() + 0.01


def test_conservative_updates_never_undercount_and_dominate_plain():
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 500, size=3_000).tolist()
    plain = CountMinSketch(width=64, depth=4, seed=9)
    conservative = CountMinSketch(width=64, depth=4, seed=9, conservative=True)
    truth: dict = {}
    for key in keys:
        key = int(key)
        plain.update(key)
        conservative.update(key)
        truth[key] = truth.get(key, 0) + 1
    for key, count in truth.items():
        est_conservative = conservative.estimate(key)
        assert est_conservative >= count
        assert est_conservative <= plain.estimate(key)


def test_update_rejects_negative_counts():
    sketch = CountMinSketch(width=16, depth=2, seed=0)
    with pytest.raises(ValueError):
        sketch.update("a", -1.0)
    with pytest.raises(ValueError):
        sketch.update_batch(np.array([1], dtype=np.uint64), np.array([-0.5]))


@pytest.mark.parametrize("conservative", [False, True])
def test_update_batch_matches_sequential_updates(conservative):
    rng = np.random.default_rng(7)
    keys = [key_to_uint64(int(k)) for k in rng.integers(0, 300, size=2_000)]
    counts = rng.integers(1, 5, size=2_000).astype(np.float64)

    sequential = CountMinSketch(width=97, depth=4, seed=13, conservative=conservative)
    for key, count in zip(keys, counts):
        sequential.update_precomputed(key, float(count))

    batched = CountMinSketch(width=97, depth=4, seed=13, conservative=conservative)
    batched.update_batch(np.array(keys, dtype=np.uint64), counts)

    assert np.array_equal(sequential.table, batched.table)
    assert sequential.total_count == batched.total_count
    assert sequential.update_count == batched.update_count


def test_estimate_batch_matches_scalar_estimates():
    rng = np.random.default_rng(11)
    sketch = CountMinSketch(width=64, depth=3, seed=4)
    inserted = rng.integers(0, 200, size=1_000)
    sketch.update_batch(
        np.array([key_to_uint64(int(k)) for k in inserted], dtype=np.uint64),
        np.ones(len(inserted)),
    )
    queries = [key_to_uint64(int(k)) for k in range(250)]
    batch = sketch.estimate_batch(np.array(queries, dtype=np.uint64))
    scalar = [sketch.estimate_precomputed(q) for q in queries]
    assert batch.tolist() == scalar


def test_state_dict_round_trip_preserves_estimates():
    sketch = CountMinSketch(width=50, depth=4, seed=21)
    for key in range(500):
        sketch.update(key % 37)
    revived = CountMinSketch.from_state(sketch.state_dict())
    assert np.array_equal(revived.table, sketch.table)
    assert revived.total_count == sketch.total_count
    assert revived.update_count == sketch.update_count
    for key in range(40):
        assert revived.estimate(key) == sketch.estimate(key)
    # The revived sketch keeps absorbing updates identically.
    sketch.update(1); revived.update(1)
    assert np.array_equal(revived.table, sketch.table)


def test_load_state_rejects_wrong_dimensions():
    a = CountMinSketch(width=32, depth=3, seed=1)
    b = CountMinSketch(width=64, depth=3, seed=1)
    with pytest.raises(ValueError):
        a.load_state(b.state_dict())


def test_merge_equals_ingesting_concatenation():
    left = CountMinSketch(width=80, depth=4, seed=6)
    right = left.compatible_empty()
    whole = left.compatible_empty()
    rng = np.random.default_rng(17)
    keys = rng.integers(0, 120, size=2_000).tolist()
    half = len(keys) // 2
    for key in keys[:half]:
        left.update(int(key)); whole.update(int(key))
    for key in keys[half:]:
        right.update(int(key)); whole.update(int(key))
    left.merge(right)
    assert np.array_equal(left.table, whole.table)
    assert left.total_count == whole.total_count


def test_merge_rejects_different_hash_families():
    a = CountMinSketch(width=32, depth=3, seed=1)
    b = CountMinSketch(width=32, depth=3, seed=2)
    with pytest.raises(ValueError):
        a.merge(b)

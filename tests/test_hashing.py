"""Bit-parity tests for the vectorized hashing kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.hashing import (
    MERSENNE_PRIME_61,
    PairwiseHashFamily,
    key_to_uint64,
    pair_keys_to_uint64,
    splitmix64_batch,
)

EDGE_CASE_KEYS = np.array(
    [0, 1, 2, MERSENNE_PRIME_61 - 1, MERSENNE_PRIME_61, MERSENNE_PRIME_61 + 1,
     2**32 - 1, 2**32, 2**63 - 1, 2**63, 2**64 - 1],
    dtype=np.uint64,
)


def test_indices_batch_bit_identical_to_scalar_path():
    rng = np.random.default_rng(0)
    family = PairwiseHashFamily(depth=5, width=1021, seed=3)
    values = np.concatenate(
        [rng.integers(0, 2**63, size=2_000, dtype=np.uint64) * 2
         + rng.integers(0, 2, size=2_000, dtype=np.uint64),
         EDGE_CASE_KEYS]
    )
    batch = family.indices_batch(values)
    assert batch.shape == (5, len(values))
    for column, value in enumerate(values.tolist()):
        assert np.array_equal(family.indices_for_uint64(int(value)), batch[:, column])


def test_indices_batch_width_one():
    family = PairwiseHashFamily(depth=2, width=1, seed=1)
    assert np.all(family.indices_batch(EDGE_CASE_KEYS) == 0)


def test_splitmix64_batch_matches_scalar():
    from repro.sketches.hashing import _splitmix64

    values = EDGE_CASE_KEYS
    batch = splitmix64_batch(values)
    for i, value in enumerate(values.tolist()):
        assert int(batch[i]) == _splitmix64(int(value))


def test_pair_keys_match_tuple_canonicalization():
    rng = np.random.default_rng(2)
    sources = rng.integers(-(2**40), 2**40, size=1_000)
    targets = rng.integers(0, 2**50, size=1_000)
    vectorized = pair_keys_to_uint64(sources, targets)
    for i in range(len(sources)):
        expected = key_to_uint64((int(sources[i]), int(targets[i])))
        assert int(vectorized[i]) == expected


def test_from_coefficients_round_trip():
    family = PairwiseHashFamily(depth=4, width=333, seed=9)
    a, b = zip(*family.coefficients())
    clone = PairwiseHashFamily.from_coefficients(333, list(a), list(b))
    values = EDGE_CASE_KEYS
    assert np.array_equal(clone.indices_batch(values), family.indices_batch(values))


def test_from_coefficients_validates():
    with pytest.raises(ValueError):
        PairwiseHashFamily.from_coefficients(8, [0], [0])  # a must be non-zero
    with pytest.raises(ValueError):
        PairwiseHashFamily.from_coefficients(8, [1], [MERSENNE_PRIME_61])
    with pytest.raises(ValueError):
        PairwiseHashFamily.from_coefficients(8, [], [])

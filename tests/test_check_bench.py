"""Unit tests for the benchmark regression gate (experiments/check_bench.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    pathlib.Path(__file__).resolve().parents[1] / "experiments" / "check_bench.py",
)
check_bench = importlib.util.module_from_spec(_SPEC)
sys.modules["check_bench"] = check_bench
_SPEC.loader.exec_module(check_bench)


def _throughput_report(rates: dict, parity: bool = True) -> dict:
    return {
        "parity_ok": parity,
        "results": [
            {"dataset": dataset, "mode": mode, "edges_per_second": value}
            for (dataset, mode), value in rates.items()
        ],
    }


BASELINES = {
    "tolerance": 0.1,
    "profiles": {
        "quick": {
            "throughput": {
                "require_parity": True,
                "floors": [
                    {
                        "dataset": "rmat",
                        "numerator": "batched",
                        "denominator": "per-edge",
                        "min_ratio": 5.0,
                    }
                ],
            },
            "build": {"require_equivalence": True, "min_speedup": 4.0},
        }
    },
}


@pytest.fixture
def reports(tmp_path):
    def write(name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    baselines = write("baselines.json", BASELINES)
    good_throughput = write(
        "tp_good.json",
        _throughput_report({("rmat", "per-edge"): 100.0, ("rmat", "batched"): 800.0}),
    )
    good_build = write(
        "build_good.json",
        {"trees_identical": True, "results": [{"speedup": 12.0}, {"speedup": 9.0}]},
    )
    return tmp_path, baselines, good_throughput, good_build, write


def test_gate_passes_on_healthy_reports(reports, capsys):
    _, baselines, throughput, build, _ = reports
    code = check_bench.main(
        [
            "--profile",
            "quick",
            "--throughput",
            throughput,
            "--build",
            build,
            "--baselines",
            baselines,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "all 4 checks hold" in out


def test_gate_fails_on_ratio_regression(reports):
    _, baselines, _, build, write = reports
    slow = write(
        "tp_slow.json",
        _throughput_report({("rmat", "per-edge"): 100.0, ("rmat", "batched"): 300.0}),
    )
    code = check_bench.main(
        ["--profile", "quick", "--throughput", slow, "--build", build,
         "--baselines", baselines]
    )
    assert code == 1


def test_gate_fails_on_parity_break(reports):
    _, baselines, _, build, write = reports
    broken = write(
        "tp_parity.json",
        _throughput_report(
            {("rmat", "per-edge"): 100.0, ("rmat", "batched"): 900.0}, parity=False
        ),
    )
    code = check_bench.main(
        ["--profile", "quick", "--throughput", broken, "--build", build,
         "--baselines", baselines]
    )
    assert code == 1


def test_gate_fails_on_missing_mode(reports):
    _, baselines, _, build, write = reports
    missing = write(
        "tp_missing.json", _throughput_report({("rmat", "per-edge"): 100.0})
    )
    code = check_bench.main(
        ["--profile", "quick", "--throughput", missing, "--build", build,
         "--baselines", baselines]
    )
    assert code == 1


def test_gate_fails_on_build_regression(reports):
    _, baselines, throughput, _, write = reports
    slow_build = write(
        "build_slow.json",
        {"trees_identical": True, "results": [{"speedup": 1.5}]},
    )
    code = check_bench.main(
        ["--profile", "quick", "--throughput", throughput, "--build", slow_build,
         "--baselines", baselines]
    )
    assert code == 1


def test_tolerance_override_relaxes_floor(reports):
    _, baselines, _, build, write = reports
    borderline = write(
        "tp_borderline.json",
        _throughput_report({("rmat", "per-edge"): 100.0, ("rmat", "batched"): 420.0}),
    )
    strict = check_bench.main(
        ["--profile", "quick", "--throughput", borderline, "--build", build,
         "--baselines", baselines, "--tolerance", "0.0"]
    )
    relaxed = check_bench.main(
        ["--profile", "quick", "--throughput", borderline, "--build", build,
         "--baselines", baselines, "--tolerance", "0.2"]
    )
    assert strict == 1
    assert relaxed == 0


def test_markdown_summary_written(reports, monkeypatch):
    tmp_path, baselines, throughput, build, _ = reports
    summary = tmp_path / "summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    code = check_bench.main(
        ["--profile", "quick", "--throughput", throughput, "--build", build,
         "--baselines", baselines]
    )
    assert code == 0
    text = summary.read_text()
    assert "| check | measured | required | status |" in text
    assert "batched / per-edge" in text
    assert "✅" in text


QUERY_BASELINES = {
    "tolerance": 0.1,
    "profiles": {
        "quick": {
            "query": {
                "require_parity": True,
                "floors": [
                    {"backend": "gsketch", "batch_size": 1, "min_ratio": 5.0},
                    {"backend": "gsketch", "batch_size": 8, "min_ratio": 5.0},
                ],
            }
        }
    },
}


def _query_report(rows, parity: bool = True, row_parity: bool = True) -> dict:
    return {
        "parity_ok": parity,
        "results": [
            {
                "backend": backend,
                "batch_size": batch_size,
                "direct_qps": direct,
                "plan_qps": plan,
                "parity_ok": row_parity,
            }
            for backend, batch_size, direct, plan in rows
        ],
    }


@pytest.fixture
def query_reports(tmp_path):
    def write(name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    baselines = write("query_baselines.json", QUERY_BASELINES)
    healthy = write(
        "query_good.json",
        _query_report(
            [("gsketch", 1, 5_000.0, 200_000.0), ("gsketch", 8, 20_000.0, 300_000.0)]
        ),
    )
    return baselines, healthy, write


def test_query_gate_passes_on_healthy_report(query_reports, capsys):
    baselines, healthy, _ = query_reports
    code = check_bench.main(
        ["--profile", "quick", "--query", healthy, "--baselines", baselines]
    )
    assert code == 0
    assert "plan / direct" in capsys.readouterr().out


def test_query_gate_fails_on_speedup_regression(query_reports):
    baselines, _, write = query_reports
    slow = write(
        "query_slow.json",
        _query_report(
            [("gsketch", 1, 5_000.0, 15_000.0), ("gsketch", 8, 20_000.0, 300_000.0)]
        ),
    )
    code = check_bench.main(
        ["--profile", "quick", "--query", slow, "--baselines", baselines]
    )
    assert code == 1


def test_query_gate_fails_on_row_level_parity_break(query_reports):
    baselines, _, write = query_reports
    broken = write(
        "query_parity.json",
        _query_report(
            [("gsketch", 1, 5_000.0, 200_000.0), ("gsketch", 8, 20_000.0, 300_000.0)],
            parity=True,
            row_parity=False,
        ),
    )
    code = check_bench.main(
        ["--profile", "quick", "--query", broken, "--baselines", baselines]
    )
    assert code == 1


def test_query_gate_fails_on_missing_row(query_reports):
    baselines, _, write = query_reports
    missing = write(
        "query_missing.json",
        _query_report([("gsketch", 1, 5_000.0, 200_000.0)]),
    )
    code = check_bench.main(
        ["--profile", "quick", "--query", missing, "--baselines", baselines]
    )
    assert code == 1


SERVE_BASELINES = {
    "tolerance": 0.1,
    "profiles": {
        "quick": {
            "serve": {
                "require_parity": True,
                "require_overload": True,
                "floors": [
                    {
                        "clients": 64,
                        "baseline_clients": 1,
                        "min_qps_ratio": 2.0,
                        "max_p99_ms": 100.0,
                    }
                ],
            }
        }
    },
}


def _serve_report(
    rows,
    parity: bool = True,
    row_parity: bool = True,
    overload_ok: bool = True,
) -> dict:
    return {
        "parity_ok": parity,
        "results": [
            {
                "clients": clients,
                "qps": qps,
                "p99_ms": p99_ms,
                "parity_ok": row_parity,
            }
            for clients, qps, p99_ms in rows
        ],
        "overload": {
            "ok": overload_ok,
            "rejected": 17,
            "max_depth": 128,
            "max_pending": 128,
        },
    }


@pytest.fixture
def serve_reports(tmp_path):
    def write(name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    baselines = write("serve_baselines.json", SERVE_BASELINES)
    healthy = write(
        "serve_good.json", _serve_report([(1, 700.0, 3.0), (64, 6_000.0, 40.0)])
    )
    return baselines, healthy, write


def test_serve_gate_passes_on_healthy_report(serve_reports, capsys):
    baselines, healthy, _ = serve_reports
    code = check_bench.main(
        ["--profile", "quick", "--serve", healthy, "--baselines", baselines]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "64 clients" in out
    assert "overload" in out


def test_serve_gate_fails_on_qps_ratio_regression(serve_reports):
    baselines, _, write = serve_reports
    flat = write(
        "serve_flat.json", _serve_report([(1, 700.0, 3.0), (64, 900.0, 40.0)])
    )
    code = check_bench.main(
        ["--profile", "quick", "--serve", flat, "--baselines", baselines]
    )
    assert code == 1


def test_serve_gate_fails_on_p99_ceiling(serve_reports):
    baselines, _, write = serve_reports
    laggy = write(
        "serve_laggy.json", _serve_report([(1, 700.0, 3.0), (64, 6_000.0, 500.0)])
    )
    code = check_bench.main(
        ["--profile", "quick", "--serve", laggy, "--baselines", baselines]
    )
    assert code == 1


def test_serve_gate_fails_on_overload_drill(serve_reports):
    baselines, _, write = serve_reports
    hung = write(
        "serve_hung.json",
        _serve_report([(1, 700.0, 3.0), (64, 6_000.0, 40.0)], overload_ok=False),
    )
    code = check_bench.main(
        ["--profile", "quick", "--serve", hung, "--baselines", baselines]
    )
    assert code == 1


def test_serve_gate_fails_on_row_level_parity_break(serve_reports):
    baselines, _, write = serve_reports
    broken = write(
        "serve_parity.json",
        _serve_report([(1, 700.0, 3.0), (64, 6_000.0, 40.0)], row_parity=False),
    )
    code = check_bench.main(
        ["--profile", "quick", "--serve", broken, "--baselines", baselines]
    )
    assert code == 1


def test_serve_gate_fails_on_missing_concurrency_row(serve_reports):
    baselines, _, write = serve_reports
    missing = write("serve_missing.json", _serve_report([(1, 700.0, 3.0)]))
    code = check_bench.main(
        ["--profile", "quick", "--serve", missing, "--baselines", baselines]
    )
    assert code == 1


def test_committed_baselines_parse_and_cover_both_profiles():
    """The checked-in floor file stays loadable and structurally sound."""
    path = pathlib.Path(__file__).resolve().parents[1] / "experiments" / "bench_baselines.json"
    data = json.loads(path.read_text())
    assert 0.0 <= data["tolerance"] < 1.0
    for profile in ("quick", "full"):
        rules = data["profiles"][profile]
        assert rules["throughput"]["require_parity"] is True
        for floor in rules["throughput"]["floors"]:
            assert floor["min_ratio"] > 0
    # The tentpole acceptance bar: full profile enforces shared-memory
    # sharded-4 >= 1.5x single-threaded batched on the R-MAT stream.
    full_floors = {
        (f["dataset"], f["numerator"], f["denominator"]): f["min_ratio"]
        for f in data["profiles"]["full"]["throughput"]["floors"]
    }
    assert full_floors[("rmat", "sharded-4-shared", "batched")] >= 1.5
    # The query-plane acceptance bar: both profiles enforce the compiled
    # plan >= 5x the pre-plan path on small gsketch batches, parity required.
    for profile in ("quick", "full"):
        query_rules = data["profiles"][profile]["query"]
        assert query_rules["require_parity"] is True
        query_floors = {
            (f["backend"], f["batch_size"]): f["min_ratio"]
            for f in query_rules["floors"]
        }
        assert query_floors[("gsketch", 1)] >= 5.0
        assert query_floors[("gsketch", 8)] >= 5.0
        # At least one floor must sit beyond the hot-edge cache's batch
        # ceiling, so the arena gather path itself is gated (a cache-only
        # floor would let an estimate_keys regression through).
        assert query_floors[("gsketch", 64)] > 1.0
    # The serving acceptance bar: both profiles require wire parity and the
    # overload drill, and gate the coalescing dividend (concurrent QPS over
    # 1-client QPS); the full profile additionally bounds p99 at 256 clients
    # so throughput can't be bought with unbounded queueing.
    for profile in ("quick", "full"):
        serve_rules = data["profiles"][profile]["serve"]
        assert serve_rules["require_parity"] is True
        assert serve_rules["require_overload"] is True
        for floor in serve_rules["floors"]:
            assert floor["clients"] > floor.get("baseline_clients", 1)
            assert floor["min_qps_ratio"] >= 2.0
    full_serve = {
        f["clients"]: f for f in data["profiles"]["full"]["serve"]["floors"]
    }
    assert full_serve[256]["min_qps_ratio"] >= 3.0
    assert full_serve[256]["max_p99_ms"] <= 250.0

"""Build → ingest → query round trips for the single-process GSketch."""

from __future__ import annotations

import numpy as np

from repro.core.gsketch import GSketch


def test_build_and_query_round_trip(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(
        zipf_sample, small_config, stream_size_hint=len(zipf_stream)
    )
    gsketch.process(zipf_stream)

    truth = zipf_stream.edge_frequencies()
    assert gsketch.elements_processed == len(zipf_stream)
    assert gsketch.total_frequency == sum(truth.values())

    # One-sided guarantee on every distinct edge.
    for edge, frequency in truth.items():
        assert gsketch.query_edge(edge) >= frequency

    # Accuracy sanity: the average estimate should stay within a small
    # multiple of the truth at this load factor (not a paper-grade metric,
    # just a regression tripwire).
    edges = sorted(truth)[:400]
    estimates = gsketch.query_edges(edges)
    relative_errors = [
        (estimate - truth[edge]) / truth[edge]
        for edge, estimate in zip(edges, estimates)
    ]
    assert np.mean(relative_errors) < 5.0


def test_query_edges_accepts_numpy_arrays(zipf_stream, zipf_sample, small_config):
    """A (n, 2) ndarray of edges queries like the equivalent list of tuples."""
    gsketch = GSketch.build(zipf_sample, small_config)
    gsketch.process(zipf_stream.prefix(1_000))
    edges = sorted(zipf_stream.distinct_edges())[:50]
    as_array = np.array(edges)
    assert gsketch.query_edges(as_array) == gsketch.query_edges(edges)
    assert gsketch.query_edges(np.empty((0, 2), dtype=np.int64)) == []


def test_unseen_vertices_route_to_outlier(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config)
    before = gsketch.outlier_elements
    gsketch.update(10_000_001, 5)
    assert gsketch.outlier_elements == before + 1
    assert gsketch.is_outlier_query((10_000_001, 5))
    assert gsketch.query_edge((10_000_001, 5)) >= 1.0


def test_confidence_interval_brackets_estimate(zipf_stream, zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config)
    gsketch.process(zipf_stream.prefix(2_000))
    edge = next(iter(zipf_stream.distinct_edges()))
    interval = gsketch.confidence(edge)
    estimate = gsketch.query_edge(edge)
    assert interval.lower <= estimate
    assert interval.upper == estimate
    assert 0.0 <= interval.failure_probability < 1.0


def test_partition_summaries_cover_all_partitions(zipf_sample, small_config):
    gsketch = GSketch.build(zipf_sample, small_config)
    summaries = gsketch.partition_summaries()
    assert len(summaries) == gsketch.num_partitions + 1  # + outlier
    assert summaries[-1].leaf_reason == "outlier"

"""Executor lifecycle tests: shared-memory parity, restart, crash recovery.

The acceptance bar for the shared-memory backend is the strongest one the
engine offers: after any interleaving of ingest / query / snapshot, a
:class:`~repro.distributed.shared_memory.SharedMemoryExecutor`-backed engine
holds **bit-exact** ``state_dict`` contents versus the in-process
:class:`~repro.distributed.executor.SequentialExecutor` reference — counter
tables, totals and update counts alike — for unit, fractional and
conservative-update streams.  On top of parity, this module covers the
lifecycle edges: restart after close, snapshot-while-attached, worker death
(:class:`~repro.distributed.executor.ShardExecutionError`) and idempotent
teardown for both out-of-process executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.engine import EngineError, SketchEngine
from repro.core.config import GSketchConfig
from repro.distributed import (
    ProcessPoolExecutor,
    SequentialExecutor,
    ShardExecutionError,
    ShardedGSketch,
    SharedMemoryExecutor,
    make_executor,
)


def _build(sample, config, stream, num_shards=2, executor=None):
    return ShardedGSketch.build(
        sample,
        config,
        num_shards=num_shards,
        executor=executor,
        stream_size_hint=len(stream),
    )


def _assert_states_bit_exact(left: dict, right: dict) -> None:
    """Shard-by-shard, partition-by-partition state_dict equality."""
    assert left["elements_processed"] == right["elements_processed"]
    assert left["outlier_elements"] == right["outlier_elements"]
    assert len(left["shards"]) == len(right["shards"])
    for shard_left, shard_right in zip(left["shards"], right["shards"]):
        assert shard_left["sketches"].keys() == shard_right["sketches"].keys()
        for partition, sketch_left in shard_left["sketches"].items():
            sketch_right = shard_right["sketches"][partition]
            assert np.array_equal(sketch_left["table"], sketch_right["table"]), (
                f"partition {partition}: counter tables diverge"
            )
            assert sketch_left["total"] == sketch_right["total"]
            assert sketch_left["update_count"] == sketch_right["update_count"]


class TestSharedMemoryParity:
    def test_interleaved_ingest_query_snapshot_bit_exact(
        self, zipf_stream, zipf_sample, small_config
    ):
        """Ingest → query → snapshot → ingest again: state stays bit-exact."""
        reference = _build(
            zipf_sample, small_config, zipf_stream, executor=SequentialExecutor()
        )
        with _build(
            zipf_sample, small_config, zipf_stream, executor=SharedMemoryExecutor()
        ) as shared:
            half = len(zipf_stream) // 2
            edges = sorted(zipf_stream.distinct_edges())[:150]

            reference.ingest(zipf_stream.prefix(half), batch_size=512)
            shared.ingest(zipf_stream.prefix(half), batch_size=512)
            # Mid-stream queries force a pipeline flush; answers must agree.
            assert shared.query_edges(edges) == reference.query_edges(edges)
            # Mid-stream snapshot while workers stay attached.
            _assert_states_bit_exact(reference.state_dict(), shared.state_dict())

            reference.ingest(zipf_stream.suffix(half), batch_size=512)
            shared.ingest(zipf_stream.suffix(half), batch_size=512)
            assert shared.query_edges(edges) == reference.query_edges(edges)
            _assert_states_bit_exact(reference.state_dict(), shared.state_dict())
            assert shared.total_frequency == reference.total_frequency

    def test_fractional_frequencies_bit_exact(self, weighted_stream, small_config):
        """Float (non-integral) frequencies keep bit-exact accumulation order."""
        from repro.graph.sampling import reservoir_sample

        sample = reservoir_sample(weighted_stream, 400, seed=3)
        reference = _build(sample, small_config, weighted_stream, num_shards=3)
        reference.ingest(weighted_stream, batch_size=256)
        with _build(
            sample,
            small_config,
            weighted_stream,
            num_shards=3,
            executor=SharedMemoryExecutor(),
        ) as shared:
            shared.ingest(weighted_stream, batch_size=256)
            _assert_states_bit_exact(reference.state_dict(), shared.state_dict())

    def test_conservative_updates_bit_exact(self, zipf_stream, zipf_sample):
        """Conservative update falls back to the sequential worker kernel."""
        config = GSketchConfig(
            total_cells=4_000, depth=3, seed=11, conservative_updates=True
        )
        prefix = zipf_stream.prefix(1_500)
        reference = _build(zipf_sample, config, prefix)
        reference.ingest(prefix, batch_size=256)
        with _build(
            zipf_sample, config, prefix, executor=SharedMemoryExecutor()
        ) as shared:
            shared.ingest(prefix, batch_size=256)
            _assert_states_bit_exact(reference.state_dict(), shared.state_dict())

    def test_more_shards_than_partitions(self, zipf_stream, zipf_sample, small_config):
        """Empty shards get no worker but the engine still answers exactly."""
        reference = _build(zipf_sample, small_config, zipf_stream)
        reference.ingest(zipf_stream)
        with _build(
            zipf_sample,
            small_config,
            zipf_stream,
            num_shards=50,
            executor=SharedMemoryExecutor(),
        ) as shared:
            shared.ingest(zipf_stream)
            edges = sorted(zipf_stream.distinct_edges())[:100]
            assert shared.query_edges(edges) == reference.query_edges(edges)


class TestSharedMemoryLifecycle:
    def test_restart_after_close(self, zipf_stream, zipf_sample, small_config):
        """close() detaches state; further ingest respawns workers correctly."""
        half = len(zipf_stream) // 2
        reference = _build(zipf_sample, small_config, zipf_stream)
        reference.ingest(zipf_stream, batch_size=1024)

        shared = _build(
            zipf_sample, small_config, zipf_stream, executor=SharedMemoryExecutor()
        )
        shared.ingest(zipf_stream.prefix(half), batch_size=1024)
        shared.close()
        # Ingestion after close restarts the executor from detached state.
        shared.ingest(zipf_stream.suffix(half), batch_size=1024)
        _assert_states_bit_exact(reference.state_dict(), shared.state_dict())
        shared.close()
        shared.close()  # idempotent

    def test_snapshot_restore_resumes_exactly(
        self, zipf_stream, zipf_sample, small_config
    ):
        """A snapshot taken while attached restores to a bit-exact resume."""
        half = len(zipf_stream) // 2
        reference = _build(zipf_sample, small_config, zipf_stream)
        reference.ingest(zipf_stream, batch_size=512)

        with _build(
            zipf_sample, small_config, zipf_stream, executor=SharedMemoryExecutor()
        ) as shared:
            shared.ingest(zipf_stream.prefix(half), batch_size=512)
            snapshot = shared.state_dict()

        resumed = ShardedGSketch.from_state(snapshot, executor=SharedMemoryExecutor())
        try:
            resumed.ingest(zipf_stream.suffix(half), batch_size=512)
            _assert_states_bit_exact(reference.state_dict(), resumed.state_dict())
        finally:
            resumed.close()

    def test_checkpoint_and_merge_through_shared_executor(
        self, zipf_stream, zipf_sample, small_config
    ):
        """Coordinator-side merge survives attached arenas and keeps serving."""
        half = len(zipf_stream) // 2
        reference = _build(zipf_sample, small_config, zipf_stream)
        reference.ingest(zipf_stream, batch_size=1024)
        edges = sorted(zipf_stream.distinct_edges())[:100]

        with _build(
            zipf_sample, small_config, zipf_stream, executor=SharedMemoryExecutor()
        ) as first:
            first.ingest(zipf_stream.prefix(half), batch_size=1024)
            second = _build(zipf_sample, small_config, zipf_stream)
            second.ingest(zipf_stream.suffix(half), batch_size=1024)
            first.merge(second)
            assert first.query_edges(edges) == reference.query_edges(edges)
            # Workers were reset by the merge; keep ingesting through them.
            first.update(987_654_321, 42)
            assert first.query_edge((987_654_321, 42)) >= 1.0

    def test_to_gsketch_does_not_alias_arena(
        self, zipf_stream, zipf_sample, small_config
    ):
        """Re-aggregation deep-copies: closing the engine must not corrupt it."""
        with _build(
            zipf_sample, small_config, zipf_stream, executor=SharedMemoryExecutor()
        ) as shared:
            shared.ingest(zipf_stream, batch_size=2048)
            gsketch = shared.to_gsketch()
            tables_before = [p.table.copy() for p in gsketch.partitions]
        for partition, before in zip(gsketch.partitions, tables_before):
            assert np.array_equal(partition.table, before)


class TestWorkerCrashRecovery:
    def _kill_first_worker(self, executor: SharedMemoryExecutor) -> None:
        for process in executor.worker_processes:
            if process is not None:
                process.kill()
                process.join(timeout=5.0)
                return
        raise AssertionError("no worker process to kill")

    def test_shared_memory_crash_raises_named_error(
        self, zipf_stream, zipf_sample, small_config
    ):
        executor = SharedMemoryExecutor()
        engine = _build(
            zipf_sample, small_config, zipf_stream, executor=executor
        )
        engine.ingest(zipf_stream.prefix(2_000), batch_size=512)
        engine.flush()
        self._kill_first_worker(executor)
        with pytest.raises(ShardExecutionError, match=r"shard \d+"):
            engine.ingest(zipf_stream.suffix(2_000), batch_size=512)
            engine.flush()
        # The failed batch may be half-applied across shards: reads must
        # refuse to serve (no silently inconsistent totals or snapshots).
        with pytest.raises(RuntimeError, match="incomplete"):
            engine.total_frequency
        with pytest.raises(RuntimeError, match="incomplete"):
            engine.state_dict()
        engine.close()
        engine.close()  # close stays idempotent after the failure

    def test_process_pool_crash_raises_named_error(
        self, zipf_stream, zipf_sample, small_config
    ):
        executor = ProcessPoolExecutor()
        engine = _build(
            zipf_sample, small_config, zipf_stream, executor=executor
        )
        engine.ingest(zipf_stream.prefix(2_000), batch_size=512)
        for process in executor._workers:
            process.kill()
        for process in executor._workers:
            process.join(timeout=5.0)
        with pytest.raises(ShardExecutionError, match=r"shard \d+"):
            engine.ingest(zipf_stream.suffix(2_000), batch_size=512)
        executor.close()
        executor.close()  # close stays idempotent after the failure

    def test_failed_close_poisons_reads_until_restore(
        self, zipf_stream, zipf_sample, small_config
    ):
        """Losing worker state at close() must not silently serve partial data."""
        executor = ProcessPoolExecutor()
        engine = _build(zipf_sample, small_config, zipf_stream, executor=executor)
        engine.ingest(zipf_stream.prefix(2_000), batch_size=512)  # state in workers
        for process in executor._workers:
            process.kill()
        for process in executor._workers:
            process.join(timeout=5.0)
        with pytest.raises(ShardExecutionError):
            engine.close()
        engine.close()  # second close is a clean no-op
        with pytest.raises(RuntimeError, match="incomplete"):
            engine.query_edge((1, 2))
        with pytest.raises(RuntimeError, match="incomplete"):
            engine.state_dict()
        # Restoring a checkpoint recovers the engine.
        donor = _build(zipf_sample, small_config, zipf_stream)
        donor.ingest(zipf_stream.prefix(2_000), batch_size=512)
        engine.load_shard_states(donor.shard_states())
        assert engine.query_edges([(1, 2)]) == donor.query_edges([(1, 2)])

    def test_error_names_the_failing_shard(self, zipf_stream, zipf_sample, small_config):
        executor = SharedMemoryExecutor()
        engine = _build(zipf_sample, small_config, zipf_stream, executor=executor)
        engine.ingest(zipf_stream.prefix(1_000), batch_size=512)
        engine.flush()
        killed_index = None
        for index, process in enumerate(executor.worker_processes):
            if process is not None:
                process.kill()
                process.join(timeout=5.0)
                killed_index = index
                break
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.ingest(zipf_stream.suffix(1_000), batch_size=512)
            engine.flush()
        assert excinfo.value.shard_index == killed_index
        assert f"shard {killed_index}" in str(excinfo.value)
        engine.close()


class TestEngineExecutorKnob:
    @pytest.mark.parametrize("spec", ["sequential", "threads", "processes", "shared"])
    def test_named_executors_reach_parity(
        self, zipf_stream, zipf_sample, small_config, spec
    ):
        prefix = zipf_stream.prefix(2_000)
        reference = _build(zipf_sample, small_config, prefix)
        reference.ingest(prefix, batch_size=512)
        edges = sorted(prefix.distinct_edges())[:50]
        with (
            SketchEngine.builder()
            .config(small_config)
            .sample(zipf_sample)
            .stream_size_hint(len(prefix))
            .sharded(2)
            .executor(spec)
            .build()
        ) as engine:
            engine.ingest(prefix, batch_size=512)
            assert engine.estimator.query_edges(edges) == reference.query_edges(edges)

    def test_executor_without_sharded_is_rejected(self, zipf_sample, small_config):
        with pytest.raises(EngineError, match="sharded"):
            (
                SketchEngine.builder()
                .config(small_config)
                .sample(zipf_sample)
                .executor("shared")
                .build()
            )

    def test_unknown_executor_name_is_rejected(self, zipf_sample, small_config):
        with pytest.raises(EngineError, match="unknown executor"):
            (
                SketchEngine.builder()
                .config(small_config)
                .sample(zipf_sample)
                .sharded(2)
                .executor("warp-drive")
                .build()
            )

    def test_make_executor_passthrough_and_names(self):
        sequential = SequentialExecutor()
        assert make_executor(sequential) is sequential
        assert make_executor(None) is None
        assert isinstance(make_executor("shared"), SharedMemoryExecutor)
        with pytest.raises(ValueError):
            make_executor("bogus")


class TestSupervisedLifecycle:
    """Supervised recovery on the raw executor lifecycle edges."""

    POLICY_KWARGS = dict(max_restarts=2, backoff_seconds=0.01)

    @staticmethod
    def _worker_processes(executor):
        if isinstance(executor, SharedMemoryExecutor):
            return executor.worker_processes
        return executor._workers

    def _kill_one(self, executor) -> None:
        for process in self._worker_processes(executor):
            if process is not None and process.is_alive():
                process.kill()
                process.join(timeout=5.0)
                return
        raise AssertionError("no worker process to kill")

    @pytest.mark.parametrize("executor_name", ["processes", "shared"])
    def test_crash_during_flush_recovers_bit_exact(
        self, executor_name, zipf_stream, zipf_sample, small_config
    ):
        """A worker killed with batches outstanding: flush recovers, parity holds."""
        from repro.distributed import RecoveryPolicy

        reference = _build(zipf_sample, small_config, zipf_stream)
        reference.ingest(zipf_stream, batch_size=512)

        executor = make_executor(executor_name)
        half = len(zipf_stream) // 2
        engine = ShardedGSketch.build(
            zipf_sample,
            small_config,
            num_shards=2,
            executor=executor,
            stream_size_hint=len(zipf_stream),
            recovery=RecoveryPolicy(**self.POLICY_KWARGS),
        )
        try:
            engine.ingest(zipf_stream.prefix(half), batch_size=512)
            self._kill_one(executor)  # dies with un-synced state in the worker
            engine.ingest(zipf_stream.suffix(half), batch_size=512)
            engine.flush()
            _assert_states_bit_exact(reference.state_dict(), engine.state_dict())
            assert engine.supervisor.restarts >= 1
            assert engine.dead_shards == ()
        finally:
            engine.close()

    @pytest.mark.parametrize("executor_name", ["processes", "shared"])
    def test_repeated_crashes_keep_recovering(
        self, executor_name, zipf_stream, zipf_sample, small_config
    ):
        """Each incident gets a fresh restart budget; serial crashes all heal."""
        from repro.distributed import RecoveryPolicy

        reference = _build(zipf_sample, small_config, zipf_stream)
        reference.ingest(zipf_stream, batch_size=1024)

        executor = make_executor(executor_name)
        third = len(zipf_stream) // 3
        engine = ShardedGSketch.build(
            zipf_sample,
            small_config,
            num_shards=2,
            executor=executor,
            stream_size_hint=len(zipf_stream),
            recovery=RecoveryPolicy(**self.POLICY_KWARGS),
        )
        try:
            engine.ingest(zipf_stream.prefix(third), batch_size=1024)
            self._kill_one(executor)
            engine.ingest(zipf_stream.prefix(2 * third).suffix(third), batch_size=1024)
            engine.flush()
            self._kill_one(executor)
            engine.ingest(zipf_stream.suffix(2 * third), batch_size=1024)
            engine.flush()
            _assert_states_bit_exact(reference.state_dict(), engine.state_dict())
            assert engine.supervisor.restarts >= 2
        finally:
            engine.close()

    def test_supervised_empty_shards_reach_parity(
        self, zipf_stream, zipf_sample, small_config
    ):
        """More shards than partitions: empty shards have no worker to
        restart, and supervision must not trip over them."""
        from repro.distributed import RecoveryPolicy

        reference = _build(zipf_sample, small_config, zipf_stream)
        reference.ingest(zipf_stream, batch_size=1024)
        executor = SharedMemoryExecutor()
        engine = ShardedGSketch.build(
            zipf_sample,
            small_config,
            num_shards=50,
            executor=executor,
            stream_size_hint=len(zipf_stream),
            recovery=RecoveryPolicy(**self.POLICY_KWARGS),
        )
        try:
            engine.ingest(zipf_stream.prefix(2_000), batch_size=1024)
            self._kill_one(executor)
            engine.ingest(zipf_stream.suffix(2_000), batch_size=1024)
            engine.flush()
            edges = sorted(zipf_stream.distinct_edges())[:100]
            assert engine.query_edges(edges) == reference.query_edges(edges)
            # An empty shard has no worker: restarting it is a named error,
            # not a hang or a silent no-op.
            empty = next(
                index
                for index, process in enumerate(executor.worker_processes)
                if process is None
            )
            with pytest.raises(ShardExecutionError, match="no worker"):
                executor.restart_shard(engine.shards, empty)
        finally:
            engine.close()

    def test_teardown_escalates_to_kill(self):
        """A worker ignoring SIGTERM is force-killed within the deadline."""
        import multiprocessing
        import signal
        import time as time_module

        from repro.distributed.executor import reap_workers

        def stubborn() -> None:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time_module.sleep(0.1)

        process = multiprocessing.get_context("fork").Process(target=stubborn)
        process.start()
        try:
            start = time_module.monotonic()
            reap_workers([], [process], deadline=0.5)
            elapsed = time_module.monotonic() - start
            assert not process.is_alive()
            assert elapsed < 5.0  # escalated instead of waiting out SIGTERM
            assert process.exitcode == -signal.SIGKILL
        finally:
            if process.is_alive():  # pragma: no cover - cleanup on failure
                process.kill()

#!/usr/bin/env python
"""Serve-plane chaos drill entry point.

Thin wrapper so the benchmark runs from a checkout without installation::

    python experiments/chaos_bench.py [--quick] [--seed N] [--output PATH]

The logic lives in :mod:`repro.experiments.chaos_bench`.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.chaos_bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Benchmark regression gate: compare bench reports against committed floors.

CI records ingestion-throughput, partition-build and query-throughput
benchmark artifacts on every run; this script turns them from *recorded*
numbers into *enforced* ones.  It reads the reports, evaluates them against
the ratio floors committed in ``experiments/bench_baselines.json``, prints a
comparison table, appends the same table as markdown to
``$GITHUB_STEP_SUMMARY`` when that variable is set (the GitHub Actions job
summary), and exits non-zero on any regression.

Floors are *ratios between modes of the same run* (batched vs per-edge,
shared-memory sharded vs batched, columnar vs scalar build, compiled query
plan vs the pre-plan routed path, N-client serving QPS vs 1-client), so they
are portable across machine speeds; the ``quick`` profile carries loose
sanity floors suitable for PR smoke sizes, the ``full`` profile carries the
real performance bars enforced nightly and locally::

    python experiments/check_bench.py --profile quick \
        --throughput BENCH_throughput_ci.json --build BENCH_build_ci.json \
        --query BENCH_query_ci.json --serve BENCH_serve_ci.json
    python experiments/check_bench.py --profile full \
        --throughput BENCH_throughput.json --build BENCH_build.json \
        --query BENCH_query.json --serve BENCH_serve.json

A floor passes when ``measured >= min_ratio * (1 - tolerance)``; the
tolerance (from the baselines file, overridable with ``--tolerance``)
absorbs runner noise without letting a real regression through.  Boolean
gates (estimate parity, tree equivalence, facade round-trip) carry no
tolerance: they must hold exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class CheckResult:
    """One evaluated gate row."""

    name: str
    measured: str
    required: str
    ok: bool

    @property
    def status(self) -> str:
        return "ok" if self.ok else "FAIL"


def _load_json(path: str, label: str) -> dict:
    if not os.path.exists(path):
        raise SystemExit(f"check_bench: {label} report not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ---------------------------------------------------------------------- #
# Shared row constructors — every check_* section formats through these,
# so gate semantics (tolerance application, missing-row failure, advisory
# rows) stay identical across benchmark families.
# ---------------------------------------------------------------------- #
def bool_row(name: str, value: bool) -> CheckResult:
    """A boolean gate: no tolerance, must hold exactly."""
    return CheckResult(name=name, measured=str(value), required="True", ok=value)


def ratio_row(
    name: str, ratio: float, min_ratio: float, tolerance: float
) -> CheckResult:
    """A ratio floor: passes when ``ratio >= min_ratio * (1 - tolerance)``."""
    effective = min_ratio * (1.0 - tolerance)
    return CheckResult(
        name=name,
        measured=f"{ratio:.2f}x",
        required=f">= {effective:.2f}x ({min_ratio:.2f} - {tolerance:.0%})",
        ok=ratio >= effective,
    )


def ceiling_row(
    name: str, value: float, max_value: float, tolerance: float, unit: str = ""
) -> CheckResult:
    """An upper bound: passes when ``value <= max_value * (1 + tolerance)``."""
    effective = max_value * (1.0 + tolerance)
    return CheckResult(
        name=name,
        measured=f"{value:.2f}{unit}",
        required=f"<= {effective:.2f}{unit} ({max_value:.2f} + {tolerance:.0%})",
        ok=value <= effective,
    )


def missing_row(name: str, detail: str, min_ratio: float, tolerance: float) -> CheckResult:
    """A floor whose input is absent from the report: always a failure."""
    effective = min_ratio * (1.0 - tolerance)
    return CheckResult(
        name=name, measured=detail, required=f">= {effective:.2f}x", ok=False
    )


def advisory_row(name: str, measured: str, required: str) -> CheckResult:
    """An always-passing row that surfaces a number gated elsewhere."""
    return CheckResult(name=name, measured=measured, required=required, ok=True)


def _throughput_rates(report: dict) -> Dict[tuple, float]:
    return {
        (row["dataset"], row["mode"]): float(row["edges_per_second"])
        for row in report["results"]
    }


def check_throughput(
    report: dict, rules: dict, tolerance: float
) -> List[CheckResult]:
    """Evaluate parity and mode-ratio floors on a throughput report."""
    checks: List[CheckResult] = []
    if rules.get("require_parity", True):
        checks.append(
            bool_row(
                "throughput: estimate parity across modes",
                bool(report.get("parity_ok", False)),
            )
        )
    rates = _throughput_rates(report)
    for floor in rules.get("floors", []):
        dataset = floor["dataset"]
        numerator = floor["numerator"]
        denominator = floor["denominator"]
        min_ratio = float(floor["min_ratio"])
        name = f"throughput[{dataset}]: {numerator} / {denominator}"
        num = rates.get((dataset, numerator))
        den = rates.get((dataset, denominator))
        if num is None or den is None or den <= 0:
            missing = numerator if num is None else denominator
            checks.append(
                missing_row(
                    name, f"mode {missing!r} missing from report", min_ratio, tolerance
                )
            )
            continue
        checks.append(ratio_row(name, num / den, min_ratio, tolerance))
    return checks


def check_build(report: dict, rules: dict, tolerance: float) -> List[CheckResult]:
    """Evaluate equivalence and columnar-speedup floors on a build report."""
    checks: List[CheckResult] = []
    if rules.get("require_equivalence", True):
        checks.append(
            bool_row(
                "build: columnar and scalar trees identical",
                bool(report.get("trees_identical", False)),
            )
        )
    if rules.get("require_facade_roundtrip", False):
        checks.append(
            bool_row(
                "build: facade build/ingest round-trip",
                bool(report.get("facade_roundtrip_ok", False)),
            )
        )
    min_speedup = rules.get("min_speedup")
    if min_speedup is not None:
        name = "build: columnar speedup vs scalar (min over rows)"
        speedups = [float(row["speedup"]) for row in report.get("results", [])]
        if not speedups:
            checks.append(
                missing_row(name, "no rows in report", float(min_speedup), tolerance)
            )
        else:
            checks.append(
                ratio_row(name, min(speedups), float(min_speedup), tolerance)
            )
    return checks


def check_query(report: dict, rules: dict, tolerance: float) -> List[CheckResult]:
    """Evaluate parity and plan-speedup floors on a query-throughput report.

    Each floor names a ``(backend, batch_size)`` row and requires
    ``plan_qps / direct_qps >= min_ratio * (1 - tolerance)``; parity (the
    compiled plan answering bit-identically to the routed path, every
    backend) carries no tolerance.

    ``reader_floors`` gate the parallel read plane: each names a pool size
    and requires the report's ``readers-N`` keys/s to beat the
    single-process coalesced-gather baseline (the ``readers=0`` row of the
    same run) by ``min_ratio``, with pool demux parity required bit-exactly.
    """
    checks: List[CheckResult] = []
    rows = {
        (row["backend"], int(row["batch_size"])): row
        for row in report.get("results", [])
    }
    if rules.get("require_parity", True):
        parity = bool(report.get("parity_ok", False)) and all(
            bool(row.get("parity_ok", False)) for row in report.get("results", [])
        )
        checks.append(
            bool_row("query: plan vs direct bit-exact parity (all backends)", parity)
        )
    for floor in rules.get("floors", []):
        backend = floor["backend"]
        batch_size = int(floor["batch_size"])
        min_ratio = float(floor["min_ratio"])
        name = f"query[{backend} @ batch {batch_size}]: plan / direct"
        row = rows.get((backend, batch_size))
        if row is None or float(row.get("direct_qps", 0.0)) <= 0:
            checks.append(
                missing_row(name, "row missing from report", min_ratio, tolerance)
            )
            continue
        checks.append(
            ratio_row(
                name,
                float(row["plan_qps"]) / float(row["direct_qps"]),
                min_ratio,
                tolerance,
            )
        )
    reader_rows = {int(row["readers"]): row for row in report.get("readers", [])}
    reader_floors = rules.get("reader_floors", [])
    if reader_floors:
        parity = bool(reader_rows) and all(
            bool(row.get("parity_ok", False)) for row in reader_rows.values()
        )
        checks.append(
            bool_row("query: reader-pool demux bit-exact parity (all rows)", parity)
        )
    for floor in reader_floors:
        readers = int(floor["readers"])
        min_ratio = float(floor["min_ratio"])
        name = f"query[readers-{readers}]: pool / single-process gather"
        row = reader_rows.get(readers)
        if row is None:
            checks.append(
                missing_row(name, "row missing from report", min_ratio, tolerance)
            )
            continue
        checks.append(ratio_row(name, float(row["ratio"]), min_ratio, tolerance))
    return checks


def check_serve(report: dict, rules: dict, tolerance: float) -> List[CheckResult]:
    """Evaluate the serving-tier report: parity, concurrency scaling, overload.

    Each floor names a ``(clients, baseline_clients)`` pair and requires
    ``qps[clients] / qps[baseline_clients] >= min_qps_ratio * (1 - tolerance)``
    — the cross-client coalescing dividend.  An optional ``max_p99_ms`` on
    the same row bounds the p99 latency at that concurrency, so the QPS
    can't be bought with unbounded queueing.  Parity (every wire answer
    bit-identical to the direct oracle) and the overload drill (typed
    rejects, bounded queue depth, no hung clients) carry no tolerance.
    """
    checks: List[CheckResult] = []
    rows = {int(row["clients"]): row for row in report.get("results", [])}
    if rules.get("require_parity", True):
        parity = bool(report.get("parity_ok", False)) and all(
            bool(row.get("parity_ok", False)) for row in report.get("results", [])
        )
        checks.append(
            bool_row("serve: wire answers bit-exact vs direct oracle", parity)
        )
    if rules.get("require_readers", False):
        reader_rows = report.get("readers", [])
        pool_parity = bool(reader_rows) and all(
            bool(row.get("parity_ok", False)) for row in reader_rows
        )
        checks.append(
            bool_row("serve: pool-served answers bit-exact (readers rows)", pool_parity)
        )
    if rules.get("require_overload", True):
        drill = report.get("overload", {})
        checks.append(
            CheckResult(
                name="serve: 2x-overload drill (typed rejects, bounded, no hangs)",
                measured=(
                    f"ok={drill.get('ok')} rejected={drill.get('rejected')} "
                    f"depth {drill.get('max_depth')}/{drill.get('max_pending')}"
                ),
                required="ok=True",
                ok=bool(drill.get("ok", False)),
            )
        )
    for floor in rules.get("floors", []):
        clients = int(floor["clients"])
        baseline = int(floor.get("baseline_clients", 1))
        min_ratio = float(floor["min_qps_ratio"])
        name = f"serve[{clients} clients]: qps / {baseline}-client qps"
        row = rows.get(clients)
        base = rows.get(baseline)
        if row is None or base is None or float(base.get("qps", 0.0)) <= 0:
            missing = clients if row is None else baseline
            checks.append(
                missing_row(
                    name, f"clients={missing} row missing", min_ratio, tolerance
                )
            )
            continue
        checks.append(
            ratio_row(
                name, float(row["qps"]) / float(base["qps"]), min_ratio, tolerance
            )
        )
        max_p99 = floor.get("max_p99_ms")
        if max_p99 is not None:
            checks.append(
                ceiling_row(
                    f"serve[{clients} clients]: p99 latency",
                    float(row.get("p99_ms", float("inf"))),
                    float(max_p99),
                    tolerance,
                    unit="ms",
                )
            )
    return checks


def check_chaos(report: dict, rules: dict, tolerance: float) -> List[CheckResult]:
    """Evaluate the serve-plane chaos drill: correctness under faults.

    The boolean clauses carry no tolerance: every answer bit-exact or a
    typed error (``zero_incorrect``), every request resolved (no hangs),
    the reader pool back to full width after the schedule (``self_healed``
    with a clean final sweep), and the drill actually injected faults
    (``faults_exercised`` — a quiet run can't pass as a green one).  The
    p99 ceiling bounds the latency cost of riding through the faults.
    """
    checks: List[CheckResult] = []
    load = report.get("load", {})
    heal = report.get("heal", {})
    chaos = report.get("chaos", {})
    checks.append(
        CheckResult(
            name="chaos: zero incorrect answers (bit-exact or typed error)",
            measured=(
                f"incorrect={load.get('incorrect')} "
                f"other_errors={load.get('other_errors')} "
                f"of {load.get('requests')} requests"
            ),
            required="0 incorrect, 0 untyped",
            ok=bool(report.get("zero_incorrect", False)),
        )
    )
    checks.append(
        bool_row(
            "chaos: every request resolved (answer or typed error, no hangs)",
            bool(report.get("all_resolved", False)),
        )
    )
    checks.append(
        CheckResult(
            name="chaos: pool self-healed to full width, final sweep bit-exact",
            measured=(
                f"alive={heal.get('alive')}/{heal.get('width')} "
                f"restarts={chaos.get('restarts')} "
                f"final_mismatches={heal.get('final_mismatches')}"
            ),
            required="full width, 0 mismatches",
            ok=bool(heal.get("self_healed", False))
            and heal.get("final_mismatches") == 0,
        )
    )
    checks.append(
        CheckResult(
            name="chaos: faults actually exercised (kills, restarts, injections)",
            measured=(
                f"kills={chaos.get('kills')} restarts={chaos.get('restarts')} "
                f"injected={sum((chaos.get('faults_injected') or {}).values())}"
            ),
            required="all > 0",
            ok=bool(report.get("faults_exercised", False)),
        )
    )
    max_p99 = rules.get("max_p99_ms")
    if max_p99 is not None:
        checks.append(
            ceiling_row(
                "chaos: p99 latency under faults",
                float(load.get("p99_ms", float("inf"))),
                float(max_p99),
                tolerance,
                unit="ms",
            )
        )
    return checks


def check_overhead(report: dict) -> List[CheckResult]:
    """Advisory telemetry-overhead rows — always reported, never failing.

    The real gate lives in ``experiments/overhead_bench.py`` (it exits
    non-zero when disabled hooks cost more than its threshold); these rows
    only surface the measured numbers next to the performance floors.
    """
    ratio = float(report.get("disabled_overhead_ratio", 0.0))
    gate = float(report.get("max_disabled_overhead", 0.02))
    enabled = float(report.get("enabled_overhead_ratio", 0.0))
    return [
        advisory_row(
            "overhead (advisory): disabled telemetry hooks / wall",
            f"{ratio:.4%}",
            f"< {gate:.0%} (gated by overhead_bench itself)",
        ),
        advisory_row(
            "overhead (advisory): enabled telemetry wall-time delta",
            f"{enabled:+.2%}",
            "advisory only",
        ),
    ]


def check_recovery(report: dict) -> List[CheckResult]:
    """Advisory fault-injection recovery rows — always reported, never failing.

    The real gate lives in ``experiments/recovery_bench.py`` (it exits
    non-zero on a parity or bound-soundness failure); these rows surface the
    drill outcome and recovery cost next to the performance floors.
    """
    checks: List[CheckResult] = []
    for row in report.get("parity", []):
        checks.append(
            advisory_row(
                f"recovery (advisory) [{row['executor']}]: crash/recover parity",
                f"parity={row.get('parity_ok')} restarts={row.get('restarts')} "
                f"cost {float(row.get('recovery_cost_ratio', 0.0)):.2f}x",
                "bit-exact (gated by recovery_bench itself)",
            )
        )
    degraded = report.get("degraded", {})
    checks.append(
        advisory_row(
            "recovery (advisory): degraded-serving bound soundness",
            f"widened={degraded.get('queries_widened')} "
            f"violations={degraded.get('bound_violations')} "
            f"lost={degraded.get('lost_elements')}",
            "0 violations (gated by recovery_bench itself)",
        )
    )
    return checks


def render_markdown(checks: Sequence[CheckResult], profile: str) -> str:
    """The comparison table as GitHub-flavoured markdown."""
    failed = sum(not check.ok for check in checks)
    verdict = "all floors hold" if failed == 0 else f"{failed} regression(s)"
    lines = [
        f"## Benchmark gate — `{profile}` profile: {verdict}",
        "",
        "| check | measured | required | status |",
        "| --- | --- | --- | --- |",
    ]
    for check in checks:
        icon = "✅" if check.ok else "❌"
        lines.append(
            f"| {check.name} | {check.measured} | {check.required} | {icon} |"
        )
    lines.append("")
    return "\n".join(lines)


def render_text(checks: Sequence[CheckResult]) -> str:
    width = max(len(check.name) for check in checks)
    rows = [
        f"{check.name:<{width}}  {check.status:<4}  "
        f"measured {check.measured}  required {check.required}"
        for check in checks
    ]
    return "\n".join(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        required=True,
        help="which floor set to enforce (quick = PR smoke, full = nightly)",
    )
    parser.add_argument(
        "--throughput",
        default="BENCH_throughput_ci.json",
        help="throughput report to check (default BENCH_throughput_ci.json)",
    )
    parser.add_argument(
        "--build",
        default="BENCH_build_ci.json",
        help="partition-build report to check (default BENCH_build_ci.json)",
    )
    parser.add_argument(
        "--query",
        default="BENCH_query_ci.json",
        help="query-throughput report to check (default BENCH_query_ci.json)",
    )
    parser.add_argument(
        "--serve",
        default="BENCH_serve_ci.json",
        help="serving-tier report to check (default BENCH_serve_ci.json)",
    )
    parser.add_argument(
        "--chaos",
        default="BENCH_chaos_ci.json",
        help="serve-plane chaos-drill report to check; skipped silently "
        "when the file is absent (default BENCH_chaos_ci.json)",
    )
    parser.add_argument(
        "--overhead",
        default="BENCH_overhead_ci.json",
        help="telemetry-overhead report for advisory rows; skipped silently "
        "when the file is absent (default BENCH_overhead_ci.json)",
    )
    parser.add_argument(
        "--recovery",
        default="BENCH_recovery_ci.json",
        help="fault-injection recovery report for advisory rows; skipped "
        "silently when the file is absent (default BENCH_recovery_ci.json)",
    )
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(__file__), "bench_baselines.json"),
        help="committed floor definitions (default experiments/bench_baselines.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's relative tolerance (e.g. 0.15)",
    )
    args = parser.parse_args(argv)

    baselines = _load_json(args.baselines, "baselines")
    profile = baselines["profiles"].get(args.profile)
    if profile is None:
        raise SystemExit(
            f"check_bench: profile {args.profile!r} not in {args.baselines}"
        )
    tolerance = (
        args.tolerance if args.tolerance is not None else float(baselines["tolerance"])
    )
    if not 0.0 <= tolerance < 1.0:
        raise SystemExit(f"check_bench: tolerance must be in [0, 1), got {tolerance}")

    checks: List[CheckResult] = []
    if "throughput" in profile:
        report = _load_json(args.throughput, "throughput")
        checks.extend(check_throughput(report, profile["throughput"], tolerance))
    if "build" in profile:
        report = _load_json(args.build, "build")
        checks.extend(check_build(report, profile["build"], tolerance))
    if "query" in profile:
        report = _load_json(args.query, "query")
        checks.extend(check_query(report, profile["query"], tolerance))
    if "serve" in profile:
        report = _load_json(args.serve, "serve")
        checks.extend(check_serve(report, profile["serve"], tolerance))
    if "chaos" in profile and args.chaos and os.path.exists(args.chaos):
        report = _load_json(args.chaos, "chaos")
        checks.extend(check_chaos(report, profile["chaos"], tolerance))
    if args.overhead and os.path.exists(args.overhead):
        checks.extend(check_overhead(_load_json(args.overhead, "overhead")))
    if args.recovery and os.path.exists(args.recovery):
        checks.extend(check_recovery(_load_json(args.recovery, "recovery")))
    if not checks:
        raise SystemExit("check_bench: profile defines no checks")

    print(render_text(checks))
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(render_markdown(checks, args.profile))
            handle.write("\n")

    failed = [check for check in checks if not check.ok]
    if failed:
        print(
            f"check_bench: {len(failed)} regression(s) against the "
            f"{args.profile!r} floors",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench: all {len(checks)} checks hold ({args.profile!r} profile)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

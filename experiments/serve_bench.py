#!/usr/bin/env python
"""Serving-tier benchmark entry point.

Thin wrapper so the benchmark runs from a checkout without installation::

    python experiments/serve_bench.py [--quick] [--clients N ...] [--output PATH]

The logic lives in :mod:`repro.experiments.serve_bench`.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.serve_bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

"""repro — a reproduction of "gSketch: On Query Estimation in Graph Streams".

The library provides:

* :class:`~repro.core.gsketch.GSketch` — the partitioned graph-stream sketch
  (the paper's contribution), built from a data sample and optionally a query
  workload sample;
* :class:`~repro.core.global_sketch.GlobalSketch` — the single-sketch baseline;
* the stream-synopsis substrates in :mod:`repro.sketches`;
* the graph-stream model, sampling and statistics in :mod:`repro.graph`;
* query objects and accuracy metrics in :mod:`repro.queries`;
* synthetic dataset generators in :mod:`repro.datasets`;
* the concurrent query-serving tier (TCP server, cross-client batch
  coalescing, admission control) in :mod:`repro.serving`;
* the experiment harness regenerating every paper figure in
  :mod:`repro.experiments`.

Quickstart (the unified API in :mod:`repro.api` is the canonical surface)::

    from repro import EdgeQuery, GSketchConfig, SketchEngine
    from repro.datasets import load_dataset

    stream = load_dataset("dblp-tiny").stream
    engine = (SketchEngine.builder()
              .config(GSketchConfig.from_memory_bytes(64_000))
              .dataset(stream)
              .build())
    engine.ingest(stream)
    estimate = engine.query(EdgeQuery(*next(iter(stream.distinct_edges()))))
    estimate.value, estimate.interval.lower, estimate.provenance.partition
"""

from repro.api.engine import EngineBuilder, EngineError, SketchEngine
from repro.api.protocol import Estimator
from repro.api.queries import WindowQuery
from repro.api.results import Estimate, Provenance
from repro.api.snapshot import (
    SnapshotError,
    load_checkpoint,
    load_snapshot,
    save_checkpoint,
    save_snapshot,
)
from repro.core.config import GSketchConfig
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.core.windowed import WindowedGSketch
from repro.distributed import (
    RecoveryPolicy,
    ShardExecutionError,
    ShardPlan,
    ShardedGSketch,
    SharedMemoryExecutor,
    make_executor,
)
from repro.faults import FaultPlan, FaultSpec
from repro.graph.batch import EdgeBatch
from repro.graph.edge import StreamEdge
from repro.graph.stream import GraphStream
from repro.queries.edge_query import EdgeQuery
from repro.queries.plan import CompiledQueryPlan
from repro.queries.subgraph_query import SubgraphQuery
from repro.serving import (
    ServingClient,
    ServingConfig,
    SketchServer,
    SyncServingClient,
    SyncSession,
)
from repro.sketches.countmin import CountMinSketch

__version__ = "1.0.0"

__all__ = [
    "CompiledQueryPlan",
    "CountMinSketch",
    "EdgeBatch",
    "EdgeQuery",
    "EngineBuilder",
    "EngineError",
    "Estimate",
    "Estimator",
    "FaultPlan",
    "FaultSpec",
    "GSketch",
    "GSketchConfig",
    "GlobalSketch",
    "GraphStream",
    "Provenance",
    "RecoveryPolicy",
    "ShardExecutionError",
    "ShardPlan",
    "ShardedGSketch",
    "SharedMemoryExecutor",
    "ServingClient",
    "ServingConfig",
    "SketchEngine",
    "SketchServer",
    "SnapshotError",
    "SyncServingClient",
    "SyncSession",
    "StreamEdge",
    "SubgraphQuery",
    "WindowQuery",
    "WindowedGSketch",
    "__version__",
    "load_checkpoint",
    "load_snapshot",
    "make_executor",
    "save_checkpoint",
    "save_snapshot",
]

"""repro — a reproduction of "gSketch: On Query Estimation in Graph Streams".

The library provides:

* :class:`~repro.core.gsketch.GSketch` — the partitioned graph-stream sketch
  (the paper's contribution), built from a data sample and optionally a query
  workload sample;
* :class:`~repro.core.global_sketch.GlobalSketch` — the single-sketch baseline;
* the stream-synopsis substrates in :mod:`repro.sketches`;
* the graph-stream model, sampling and statistics in :mod:`repro.graph`;
* query objects and accuracy metrics in :mod:`repro.queries`;
* synthetic dataset generators in :mod:`repro.datasets`;
* the experiment harness regenerating every paper figure in
  :mod:`repro.experiments`.

Quickstart::

    from repro import GSketch, GSketchConfig, GlobalSketch
    from repro.datasets import load_dataset
    from repro.graph import reservoir_sample

    stream = load_dataset("dblp-tiny").stream
    sample = reservoir_sample(stream, 2_000, seed=1)
    config = GSketchConfig.from_memory_bytes(64_000)
    gsketch = GSketch.build(sample, config)
    gsketch.process(stream)
    estimate = gsketch.query_edge(next(iter(stream.distinct_edges())))
"""

from repro.core.config import GSketchConfig
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.core.windowed import WindowedGSketch
from repro.distributed import ShardedGSketch, ShardPlan
from repro.graph.batch import EdgeBatch
from repro.graph.edge import StreamEdge
from repro.graph.stream import GraphStream
from repro.queries.edge_query import EdgeQuery
from repro.queries.subgraph_query import SubgraphQuery
from repro.sketches.countmin import CountMinSketch

__version__ = "1.0.0"

__all__ = [
    "CountMinSketch",
    "EdgeBatch",
    "EdgeQuery",
    "GSketch",
    "GSketchConfig",
    "GlobalSketch",
    "GraphStream",
    "ShardPlan",
    "ShardedGSketch",
    "StreamEdge",
    "SubgraphQuery",
    "WindowedGSketch",
    "__version__",
]

"""Abstract interface shared by all frequency synopses."""

from __future__ import annotations

import abc
from typing import Hashable


class FrequencySketch(abc.ABC):
    """A bounded-memory synopsis supporting frequency updates and point queries.

    All sketches in this package observe a stream of ``(key, count)`` updates
    with non-negative counts and answer point queries ``estimate(key)``.  The
    estimate semantics (one-sided overestimate for Count-Min, unbiased for
    Count sketch, support-thresholded for Lossy Counting, ...) are documented
    by each concrete class.
    """

    @abc.abstractmethod
    def update(self, key: Hashable, count: float = 1.0) -> None:
        """Record ``count`` additional occurrences of ``key``."""

    @abc.abstractmethod
    def estimate(self, key: Hashable) -> float:
        """Return the estimated total frequency of ``key``."""

    @property
    @abc.abstractmethod
    def total_count(self) -> float:
        """Total frequency mass observed so far (the ``N`` of Equation 1)."""

    @property
    @abc.abstractmethod
    def memory_cells(self) -> int:
        """Number of counter cells the sketch allocates."""

    def memory_bytes(self, cell_bytes: int = 4) -> float:
        """Approximate memory footprint assuming ``cell_bytes`` per counter.

        The paper's memory axis (512 KB ... 2 GB) refers to 4-byte C++
        counters; this helper converts a cell budget back into bytes so the
        experiment harness can report comparable axes.
        """
        return float(self.memory_cells * cell_bytes)

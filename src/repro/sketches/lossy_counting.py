"""Lossy Counting (Manku & Motwani, 2002).

Reference [23] of the paper: a deterministic heavy-hitter synopsis that keeps
``(key, count, max_error)`` entries and periodically prunes entries whose
count cannot exceed the error floor of their bucket.  Guarantees:

* no false negatives for keys with true frequency >= ``epsilon * N``;
* estimated counts under-estimate by at most ``epsilon * N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.sketches.base import FrequencySketch
from repro.utils.validation import require_non_negative, require_probability


@dataclass
class _Entry:
    count: float
    max_error: float


class LossyCounting(FrequencySketch):
    """Lossy Counting with error parameter ``epsilon``.

    Args:
        epsilon: per-key frequency error as a fraction of the stream length.
            The bucket width is ``ceil(1 / epsilon)``.
    """

    def __init__(self, epsilon: float) -> None:
        self._epsilon = require_probability(epsilon, "epsilon")
        self._bucket_width = int(math.ceil(1.0 / self._epsilon))
        self._entries: Dict[Hashable, _Entry] = {}
        self._n = 0
        self._total = 0.0
        self._current_bucket = 1

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def bucket_width(self) -> int:
        return self._bucket_width

    @property
    def total_count(self) -> float:
        return self._total

    @property
    def memory_cells(self) -> int:
        return len(self._entries)

    def update(self, key: Hashable, count: float = 1.0) -> None:
        count = require_non_negative(count, "count")
        if count == 0:
            return
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _Entry(count=count, max_error=float(self._current_bucket - 1))
        else:
            entry.count += count
        self._n += 1
        self._total += count
        if self._n % self._bucket_width == 0:
            self._prune()
            self._current_bucket += 1

    def _prune(self) -> None:
        bucket = self._current_bucket
        stale = [key for key, e in self._entries.items() if e.count + e.max_error <= bucket]
        for key in stale:
            del self._entries[key]

    def estimate(self, key: Hashable) -> float:
        """Lower-bound estimate of the frequency of ``key`` (0 if pruned)."""
        entry = self._entries.get(key)
        return entry.count if entry is not None else 0.0

    def upper_bound(self, key: Hashable) -> float:
        """Upper bound on the frequency of ``key`` (count + bucket error)."""
        entry = self._entries.get(key)
        if entry is None:
            return float(self._current_bucket - 1)
        return entry.count + entry.max_error

    def frequent_items(self, support: float) -> List[Tuple[Hashable, float]]:
        """Keys whose estimated frequency is at least ``(support - epsilon) * N``.

        This is the classical Lossy Counting output guarantee: it contains all
        keys with true frequency >= ``support * N`` and no key with true
        frequency < ``(support - epsilon) * N``.
        """
        require_non_negative(support, "support")
        threshold = (support - self._epsilon) * self._n
        return sorted(
            ((k, e.count) for k, e in self._entries.items() if e.count >= threshold),
            key=lambda item: -item[1],
        )

"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

This is the synopsis that both the Global Sketch baseline and every localized
gSketch partition are built from (paper Section 3.2 and Figure 1).  With width
``w = ceil(e / epsilon)`` and depth ``d = ceil(ln(1 / delta))``, a point query
is overestimated by at most ``e * N / w`` with probability at least
``1 - e^-d`` (Equation 1), where ``N`` is the total frequency mass inserted.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.sketches.base import FrequencySketch
from repro.sketches.hashing import PairwiseHashFamily, key_to_uint64
from repro.utils.rng import SeedLike
from repro.utils.validation import (
    require_non_negative,
    require_positive_int,
    require_probability,
)


class CountMinSketch(FrequencySketch):
    """A ``depth x width`` Count-Min sketch over arbitrary hashable keys.

    Args:
        width: number of counters per row (``w`` in the paper).
        depth: number of rows / independent hash functions (``d``).
        seed: seed for drawing the hash family.
        conservative: if ``True``, use conservative update (only raise the
            cells that currently equal the minimum), a standard variance
            reduction that never breaks the one-sided error guarantee.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        seed: SeedLike = None,
        conservative: bool = False,
    ) -> None:
        self._width = require_positive_int(width, "width")
        self._depth = require_positive_int(depth, "depth")
        self._conservative = bool(conservative)
        self._hashes = PairwiseHashFamily(self._depth, self._width, seed=seed)
        self._table = np.zeros((self._depth, self._width), dtype=np.float64)
        self._rows = np.arange(self._depth)
        self._total = 0.0
        self._update_count = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_error_guarantees(
        cls,
        epsilon: float,
        delta: float,
        seed: SeedLike = None,
        conservative: bool = False,
    ) -> "CountMinSketch":
        """Build a sketch with ``w = ceil(e/epsilon)`` and ``d = ceil(ln(1/delta))``."""
        require_probability(delta, "delta")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon!r}")
        width = int(math.ceil(math.e / float(epsilon)))
        depth = max(1, int(math.ceil(math.log(1.0 / float(delta)))))
        return cls(width=width, depth=depth, seed=seed, conservative=conservative)

    @classmethod
    def from_memory_cells(
        cls,
        total_cells: int,
        depth: int,
        seed: SeedLike = None,
        conservative: bool = False,
    ) -> "CountMinSketch":
        """Build the widest sketch of the given ``depth`` using ``total_cells`` counters."""
        require_positive_int(total_cells, "total_cells")
        require_positive_int(depth, "depth")
        width = max(1, total_cells // depth)
        return cls(width=width, depth=depth, seed=seed, conservative=conservative)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        """Number of counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of rows (independent hash functions)."""
        return self._depth

    @property
    def total_count(self) -> float:
        """Total frequency mass inserted so far (``N`` in Equation 1)."""
        return self._total

    @property
    def update_count(self) -> int:
        """Number of individual update operations applied."""
        return self._update_count

    @property
    def memory_cells(self) -> int:
        return self._width * self._depth

    @property
    def conservative(self) -> bool:
        """Whether updates use the conservative (min-raising) rule."""
        return self._conservative

    @property
    def table(self) -> np.ndarray:
        """A read-only view of the counter table (used by tests)."""
        view = self._table.view()
        view.setflags(write=False)
        return view

    def hash_coefficients(self) -> "tuple[tuple[int, int], ...]":
        """The per-row ``(a, b)`` hash coefficients (shared-arena workers
        reconstruct hashing from these without shipping sketch state)."""
        return tuple(self._hashes.coefficients())

    def hash_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """The per-row ``(a, b)`` coefficients as uint64 columns.

        The compiled query plan stacks these (one column per arena slot) into
        the coefficient matrix its fused hash pass gathers from.
        """
        return self._hashes.coefficient_arrays()

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update(self, key: Hashable, count: float = 1.0) -> None:
        """Add ``count`` occurrences of ``key`` to the sketch."""
        count = require_non_negative(count, "count")
        cols = self._hashes.indices_for_uint64(key_to_uint64(key))
        if self._conservative:
            current = self._table[self._rows, cols]
            new_min = current.min() + count
            np.maximum(current, new_min, out=current)
            self._table[self._rows, cols] = current
        else:
            self._table[self._rows, cols] += count
        self._total += count
        self._update_count += 1

    def update_precomputed(self, key_uint64: int, count: float = 1.0) -> None:
        """Update using an already-canonicalized 64-bit key (hot path)."""
        cols = self._hashes.indices_for_uint64(key_uint64)
        if self._conservative:
            current = self._table[self._rows, cols]
            new_min = current.min() + count
            np.maximum(current, new_min, out=current)
            self._table[self._rows, cols] = current
        else:
            self._table[self._rows, cols] += count
        self._total += count
        self._update_count += 1

    def update_batch(
        self, keys_uint64: Sequence[int] | np.ndarray, counts: Sequence[float] | np.ndarray
    ) -> None:
        """Vectorized bulk update for pre-canonicalized keys.

        Conservative update is inherently sequential, so batches fall back to
        per-key updates when ``conservative=True``.
        """
        keys_arr = np.asarray(keys_uint64, dtype=np.uint64)
        counts_arr = np.asarray(counts, dtype=np.float64)
        if keys_arr.shape != counts_arr.shape:
            raise ValueError("keys and counts must have the same length")
        if keys_arr.size == 0:
            return
        if np.any(counts_arr < 0):
            raise ValueError("counts must be non-negative")
        if self._conservative:
            for key, count in zip(keys_arr.tolist(), counts_arr.tolist()):
                self.update_precomputed(int(key), float(count))
            return
        cols = self._hashes.indices_batch(keys_arr)
        for row in range(self._depth):
            np.add.at(self._table[row], cols[row], counts_arr)
        self._total += float(counts_arr.sum())
        self._update_count += int(keys_arr.size)

    def credit_batch(self, counts: Sequence[float] | np.ndarray) -> None:
        """Account a batch of updates whose *counters* were applied elsewhere.

        The shared-memory shard executor applies counter updates inside a
        worker process that writes the table through a shared view; the
        coordinator-resident sketch still owns the scalar bookkeeping
        (``total_count``, ``update_count``).  This method performs exactly the
        scalar side effects :meth:`update_batch` would have — including the
        per-element accumulation order of the conservative path — so the
        split update remains bit-identical to an in-process one.
        """
        counts_arr = np.asarray(counts, dtype=np.float64)
        if counts_arr.size == 0:
            return
        if np.any(counts_arr < 0):
            raise ValueError("counts must be non-negative")
        if self._conservative:
            for count in counts_arr.tolist():
                self._total += count
                self._update_count += 1
        else:
            self._total += float(counts_arr.sum())
            self._update_count += int(counts_arr.size)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def estimate(self, key: Hashable) -> float:
        """Return ``min`` over rows of the hashed cells (one-sided overestimate)."""
        cols = self._hashes.indices_for_uint64(key_to_uint64(key))
        return float(self._table[self._rows, cols].min())

    def estimate_precomputed(self, key_uint64: int) -> float:
        """Point query for an already-canonicalized 64-bit key."""
        cols = self._hashes.indices_for_uint64(key_uint64)
        return float(self._table[self._rows, cols].min())

    def estimate_batch(self, keys_uint64: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized point queries for pre-canonicalized keys."""
        keys_arr = np.asarray(keys_uint64, dtype=np.uint64)
        if keys_arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        cols = self._hashes.indices_batch(keys_arr)
        stacked = np.empty((self._depth, keys_arr.size), dtype=np.float64)
        for row in range(self._depth):
            stacked[row] = self._table[row, cols[row]]
        return stacked.min(axis=0)

    def error_bound(self) -> float:
        """The additive error ``e * N / w`` that holds with probability ``1 - e^-d``."""
        return math.e * self._total / self._width

    def failure_probability(self) -> float:
        """Probability ``e^-d`` that a point query exceeds :meth:`error_bound`."""
        return math.exp(-self._depth)

    def inner_product(self, other: "CountMinSketch") -> float:
        """Estimate the inner product of the two underlying frequency vectors.

        Both sketches must share dimensions and hash seeds (i.e. be built via
        :meth:`compatible_empty`).
        """
        if (self._width, self._depth) != (other._width, other._depth):
            raise ValueError("sketches must share width and depth for inner product")
        products = (self._table * other._table).sum(axis=1)
        return float(products.min())

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #
    def merge(self, other: "CountMinSketch") -> None:
        """Add ``other``'s counters into this sketch (requires identical hashing)."""
        if (self._width, self._depth) != (other._width, other._depth):
            raise ValueError("cannot merge sketches with different dimensions")
        for (a1, b1), (a2, b2) in zip(self._hashes.coefficients(), other._hashes.coefficients()):
            if (a1, b1) != (a2, b2):
                raise ValueError("cannot merge sketches built from different hash families")
        self._table += other._table
        self._total += other._total
        self._update_count += other._update_count

    def state_dict(self) -> dict:
        """Snapshot of the full sketch state (counters + hash coefficients).

        The snapshot is self-contained: :meth:`from_state` revives a sketch in
        another process that hashes, estimates and merges identically.  Arrays
        are copied so the snapshot is immune to further updates.
        """
        a, b = zip(*self._hashes.coefficients())
        return {
            "width": self._width,
            "depth": self._depth,
            "conservative": self._conservative,
            "hash_a": list(a),
            "hash_b": list(b),
            "table": self._table.copy(),
            "total": self._total,
            "update_count": self._update_count,
        }

    def load_state(self, state: dict) -> None:
        """Adopt a :meth:`state_dict` snapshot in place.

        The snapshot must have this sketch's dimensions; the hash family is
        adopted along with the counters so estimates stay consistent.
        """
        revived = CountMinSketch.from_state(state)
        if (revived._width, revived._depth) != (self._width, self._depth):
            raise ValueError(
                f"state has dimensions {revived._width}x{revived._depth}, "
                f"expected {self._width}x{self._depth}"
            )
        self._conservative = revived._conservative
        self._hashes = revived._hashes
        self._table = revived._table
        self._total = revived._total
        self._update_count = revived._update_count

    @classmethod
    def from_state(cls, state: dict) -> "CountMinSketch":
        """Revive a sketch from a :meth:`state_dict` snapshot."""
        sketch = cls.__new__(cls)
        sketch._width = require_positive_int(state["width"], "width")
        sketch._depth = require_positive_int(state["depth"], "depth")
        sketch._conservative = bool(state["conservative"])
        if len(state["hash_a"]) != sketch._depth:
            raise ValueError(
                f"state has {len(state['hash_a'])} hash rows, expected {sketch._depth}"
            )
        sketch._hashes = PairwiseHashFamily.from_coefficients(
            sketch._width, state["hash_a"], state["hash_b"]
        )
        table = np.asarray(state["table"], dtype=np.float64)
        if table.shape != (sketch._depth, sketch._width):
            raise ValueError(
                f"state table has shape {table.shape}, expected "
                f"({sketch._depth}, {sketch._width})"
            )
        sketch._table = table.copy()
        sketch._rows = np.arange(sketch._depth)
        sketch._total = float(state["total"])
        sketch._update_count = int(state["update_count"])
        return sketch

    def attach_table(self, view: np.ndarray) -> None:
        """Move the counter table into an externally-allocated buffer view.

        The current counters are copied into ``view`` and the sketch adopts it
        as its live table.  The shared-memory executor uses this to point the
        coordinator-resident sketch at a slice of a shard's shared-memory
        arena, so worker-process updates are visible here without any
        serialize → pull cycle.  The caller owns the buffer's lifetime and
        must call :meth:`detach_table` before releasing it.
        """
        if view.shape != self._table.shape or view.dtype != np.float64:
            raise ValueError(
                f"table view must have shape {self._table.shape} and dtype float64, "
                f"got {view.shape} {view.dtype}"
            )
        view[...] = self._table
        self._table = view

    def owns_table(self, view: np.ndarray) -> bool:
        """Whether ``view`` is this sketch's live counter table (identity).

        The compiled query plan uses this to verify that a sketch is still
        attached to the plan's read arena before skipping the table re-copy
        on a refresh; a sketch whose table was swapped out (``load_state``)
        fails the check and is re-attached.
        """
        return self._table is view

    def detach_table(self) -> None:
        """Re-privatize the counter table (copy it out of any shared buffer).

        Safe to call on an already-private table; afterwards the sketch holds
        no reference to externally-allocated memory, so the buffer can be
        unmapped (shared-memory teardown) without invalidating this sketch.
        """
        self._table = np.array(self._table, dtype=np.float64, order="C", copy=True)

    def compatible_empty(self) -> "CountMinSketch":
        """Return an empty sketch sharing this sketch's dimensions and hash family."""
        clone = CountMinSketch.__new__(CountMinSketch)
        clone._width = self._width
        clone._depth = self._depth
        clone._conservative = self._conservative
        clone._hashes = self._hashes
        clone._table = np.zeros((self._depth, self._width), dtype=np.float64)
        clone._rows = self._rows
        clone._total = 0.0
        clone._update_count = 0
        return clone

    def observed_collision_rate(self, keys: Iterable[Hashable]) -> float:
        """Fraction of the given keys whose estimate exceeds zero pre-insertion cells.

        Diagnostic helper used by tests of Theorem 1: for an *empty* sketch it
        always returns 0; after insertion it reports the fraction of keys whose
        minimum cell is shared with at least one other inserted key.
        """
        keys = list(keys)
        if not keys:
            return 0.0
        exact_once = {}
        for key in keys:
            exact_once[key] = exact_once.get(key, 0) + 1
        collided = 0
        for key, multiplicity in exact_once.items():
            if self.estimate(key) > multiplicity:
                collided += 1
        return collided / len(exact_once)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(width={self._width}, depth={self._depth}, "
            f"total={self._total:.1f}, conservative={self._conservative})"
        )

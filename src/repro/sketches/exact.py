"""Exact dictionary counter.

The ground-truth oracle used by the test suite and the experiment harness to
compute true edge frequencies, relative errors and effective-query counts.  It
implements the same :class:`~repro.sketches.base.FrequencySketch` interface so
it can be swapped in anywhere an approximate sketch is accepted.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Tuple

from repro.sketches.base import FrequencySketch
from repro.utils.validation import require_non_negative


class ExactCounter(FrequencySketch):
    """Exact frequency counter backed by a dictionary."""

    def __init__(self) -> None:
        self._counts: Dict[Hashable, float] = {}
        self._total = 0.0

    def update(self, key: Hashable, count: float = 1.0) -> None:
        count = require_non_negative(count, "count")
        self._counts[key] = self._counts.get(key, 0.0) + count
        self._total += count

    def estimate(self, key: Hashable) -> float:
        return self._counts.get(key, 0.0)

    @property
    def total_count(self) -> float:
        return self._total

    @property
    def memory_cells(self) -> int:
        return len(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def items(self) -> Iterator[Tuple[Hashable, float]]:
        """Iterate over ``(key, exact frequency)`` pairs."""
        return iter(self._counts.items())

    def heavy_hitters(self, threshold: float) -> Dict[Hashable, float]:
        """Return all keys whose exact frequency is at least ``threshold``."""
        require_non_negative(threshold, "threshold")
        return {k: v for k, v in self._counts.items() if v >= threshold}

"""AMS "tug-of-war" sketch (Alon, Matias & Szegedy, 1996).

Reference [5] of the paper.  Primarily a second-frequency-moment (F2) and
join-size estimator; also answers point queries by averaging signed products,
which is how the prior sketch-partitioning work for join-size estimation [17]
uses it.  Included as a related-work substrate and for the ablation comparing
synopsis families.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.sketches.base import FrequencySketch
from repro.sketches.hashing import SignHashFamily, key_to_uint64
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_non_negative, require_positive_int


class AMSSketch(FrequencySketch):
    """An AMS sketch with ``depth`` groups of ``width`` atomic counters.

    Each atomic counter maintains ``sum_k f_k * s(k)`` for an independent ±1
    hash ``s``.  F2 is estimated by the median over groups of the mean of
    squared counters; a point query for key ``k`` is the median over groups of
    the mean of ``s(k) * counter``.
    """

    def __init__(self, width: int, depth: int, seed: SeedLike = None) -> None:
        self._width = require_positive_int(width, "width")
        self._depth = require_positive_int(depth, "depth")
        rng = resolve_rng(seed)
        # depth groups x width atomic sketches, each with its own sign family.
        self._sign_families = [
            [SignHashFamily(1, seed=rng) for _ in range(self._width)]
            for _ in range(self._depth)
        ]
        self._counters = np.zeros((self._depth, self._width), dtype=np.float64)
        self._total = 0.0

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def total_count(self) -> float:
        return self._total

    @property
    def memory_cells(self) -> int:
        return self._width * self._depth

    def _signs_for(self, key_uint64: int) -> np.ndarray:
        signs = np.empty((self._depth, self._width), dtype=np.float64)
        for group in range(self._depth):
            for atom in range(self._width):
                signs[group, atom] = self._sign_families[group][atom].signs_for_uint64(
                    key_uint64
                )[0]
        return signs

    def update(self, key: Hashable, count: float = 1.0) -> None:
        count = require_non_negative(count, "count")
        signs = self._signs_for(key_to_uint64(key))
        self._counters += signs * count
        self._total += count

    def estimate(self, key: Hashable) -> float:
        """Point query: median over groups of the mean signed counter."""
        signs = self._signs_for(key_to_uint64(key))
        per_group = (signs * self._counters).mean(axis=1)
        return float(np.median(per_group))

    def second_moment(self) -> float:
        """Estimate F2, the sum of squared key frequencies."""
        per_group = (self._counters**2).mean(axis=1)
        return float(np.median(per_group))

"""Pairwise-independent hash families.

All sketches in this package hash arbitrary stream keys (edges, vertex labels,
strings) into counter cells.  Keys are first canonicalized to an unsigned
64-bit integer by :func:`key_to_uint64`, then mapped into ``[0, width)`` by a
Carter–Wegman family ``h(x) = ((a * x + b) mod p) mod width`` over the
Mersenne prime ``p = 2^61 - 1``.  Each row of a sketch draws an independent
``(a, b)`` pair, which yields the pairwise independence required by the
Count-Min analysis (paper Section 3.2) and by Theorem 1's collision bound.

The vectorized expressions here (:func:`mulmod_mersenne61_batch`,
:func:`gathered_hash_columns`) are the **bit-exactness oracle** for the
compiled kernel tiers in :mod:`repro.queries.kernels`: any re-staging of the
hash (preallocated scratch, fused JIT loops) must reproduce these outputs
bit-for-bit, pinned by ``tests/test_kernels.py`` on the Mersenne-boundary
keys ``p-1, p, p+1`` and both 32-bit limb edges.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_positive_int

#: Mersenne prime 2^61 - 1, large enough to treat 64-bit key mixes as field
#: elements with negligible wrap-around bias.
MERSENNE_PRIME_61 = (1 << 61) - 1

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_M61 = _U64(MERSENNE_PRIME_61)


def _splitmix64(value: int) -> int:
    """Finalize a 64-bit integer with the splitmix64 mixing function."""
    value = (value + _GOLDEN_GAMMA) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def splitmix64_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_splitmix64` over an array of uint64 values.

    Bit-identical to the scalar path: numpy uint64 arithmetic wraps modulo
    2^64 exactly like the explicit masking above.
    """
    v = np.asarray(values, dtype=np.uint64) + _U64(_GOLDEN_GAMMA)
    v = (v ^ (v >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    v = (v ^ (v >> _U64(27))) * _U64(0x94D049BB133111EB)
    return v ^ (v >> _U64(31))


def pair_keys_to_uint64(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Canonicalize integer ``(source, target)`` edge keys, vectorized.

    Bit-identical to ``key_to_uint64((int(s), int(t)))`` per element: each
    endpoint is mixed through splitmix64, then combined with the polynomial
    rolling mix used for tuples.  Signed inputs wrap to their two's-complement
    uint64 representation, matching the scalar path's ``& 0xFFFF...``.
    """
    hs = splitmix64_batch(np.asarray(sources).astype(np.uint64, copy=False))
    ht = splitmix64_batch(np.asarray(targets).astype(np.uint64, copy=False))
    acc = splitmix64_batch(_U64(_GOLDEN_GAMMA) ^ hs)
    return splitmix64_batch(acc ^ ht)


def mulmod_mersenne61_batch(a: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``(a * values) mod (2^61 - 1)``, elementwise, for ``a < 2^61`` coefficients.

    ``a`` may be a scalar (one hash coefficient applied to every value — the
    :meth:`PairwiseHashFamily.indices_batch` case) or an array aligned with
    ``values`` (a *different* coefficient per element — the shared-memory
    shard executor's fused kernel, which hashes one batch spanning many
    partition sketches in a single pass).  Both shapes run the identical
    sequence of uint64 numpy kernels, so results are bit-identical to the
    scalar path per element.

    The 128-bit product is assembled from 32-bit limbs (every partial product
    fits in a uint64 because ``a < 2^61`` implies ``a_hi < 2^29``), then folded
    modulo the Mersenne prime using ``2^64 ≡ 8`` and ``2^61 ≡ 1``.
    """
    a_lo = a & _MASK32
    a_hi = a >> _U64(32)
    x_lo = values & _MASK32
    x_hi = values >> _U64(32)

    ll = a_lo * x_lo
    t = a_hi * x_lo + (ll >> _U64(32))
    mid2 = a_lo * x_hi
    s = t + mid2
    carry = (s < t).astype(np.uint64)
    hi = a_hi * x_hi + (s >> _U64(32)) + (carry << _U64(32))
    lo = (s << _U64(32)) | (ll & _MASK32)

    # product = hi * 2^64 + lo; fold into [0, 2^62) then reduce.
    top = (hi << _U64(3)) | (lo >> _U64(61))
    r = top + (lo & _M61)
    r = r + (r < top).astype(np.uint64) * _U64(8)  # 2^64 ≡ 8 (mod p)
    r = (r & _M61) + (r >> _U64(61))
    r = (r & _M61) + (r >> _U64(61))
    return np.where(r >= _M61, r - _M61, r)


def _mulmod_mersenne61(a: int, values: np.ndarray) -> np.ndarray:
    """Scalar-coefficient convenience wrapper over :func:`mulmod_mersenne61_batch`."""
    return mulmod_mersenne61_batch(_U64(a), values)


def gathered_hash_columns(
    a: np.ndarray, b: np.ndarray, widths: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    """Hash ``keys`` with per-element ``(a, b, width)`` coefficient columns.

    One vectorized pass computes ``((a*key + b) mod p) mod width`` for a batch
    in which *each element may belong to a different hash function* — the
    coefficients having been gathered (fancy-indexed) from per-sketch tables.
    Bit-identical per element to
    :meth:`PairwiseHashFamily.indices_batch` with that element's own family:
    the arithmetic is the same uint64 kernel sequence, merely batched across
    families.  This is what lets the shared-memory shard worker apply a whole
    batch spanning many partition sketches in ~one kernel pass per row
    instead of one :meth:`indices_batch` call per partition group.
    """
    mixed = mulmod_mersenne61_batch(a, keys)
    mixed = mixed + b
    mixed = np.where(mixed >= _M61, mixed - _M61, mixed)
    return (mixed % widths).astype(np.int64)


def key_to_uint64(key: Hashable) -> int:
    """Canonicalize an arbitrary stream key to an unsigned 64-bit integer.

    The mapping is deterministic across processes (unlike built-in ``hash``,
    which is salted for strings), so sketches populated in different runs of
    the library agree on cell placement.

    Supported key types:

    * integers (mixed through splitmix64),
    * strings and bytes (BLAKE2b digest),
    * tuples of supported keys (combined with a polynomial rolling mix).
    """
    if isinstance(key, bool):
        return _splitmix64(int(key))
    if isinstance(key, (int, np.integer)):
        return _splitmix64(int(key) & 0xFFFFFFFFFFFFFFFF)
    if isinstance(key, bytes):
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "little")
    if isinstance(key, str):
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little")
    if isinstance(key, tuple):
        acc = 0x9E3779B97F4A7C15
        for part in key:
            acc = _splitmix64(acc ^ key_to_uint64(part))
        return acc
    if isinstance(key, float):
        return _splitmix64(hash(key) & 0xFFFFFFFFFFFFFFFF)
    raise TypeError(
        "sketch keys must be int, str, bytes, float or tuples thereof; "
        f"got {type(key).__name__}"
    )


class PairwiseHashFamily:
    """A family of ``depth`` pairwise-independent hash functions onto ``[0, width)``.

    Args:
        depth: number of independent hash functions (sketch rows).
        width: range of each hash function (sketch columns).
        seed: seed, generator, or ``None`` used to draw the ``(a, b)``
            coefficients.
    """

    def __init__(self, depth: int, width: int, seed: SeedLike = None) -> None:
        self.depth = require_positive_int(depth, "depth")
        self.width = require_positive_int(width, "width")
        rng = resolve_rng(seed)
        # a must be non-zero in the field; b may be anything in [0, p).
        self._a = rng.integers(1, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)
        self._b = rng.integers(0, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)

    @classmethod
    def from_coefficients(
        cls, width: int, a: Sequence[int], b: Sequence[int]
    ) -> "PairwiseHashFamily":
        """Reconstruct a family from explicit ``(a, b)`` coefficient vectors.

        Used when deserializing sketch state: a sketch populated in one
        process must hash identically after being revived in another.
        """
        if len(a) != len(b) or not a:
            raise ValueError("coefficient vectors must be non-empty and equal length")
        family = cls.__new__(cls)
        family.depth = len(a)
        family.width = require_positive_int(width, "width")
        family._a = np.asarray(a, dtype=np.uint64)
        family._b = np.asarray(b, dtype=np.uint64)
        for coeff in family._a.tolist():
            if not 1 <= coeff < MERSENNE_PRIME_61:
                raise ValueError(f"coefficient a={coeff} outside [1, 2^61-1)")
        for coeff in family._b.tolist():
            if not 0 <= coeff < MERSENNE_PRIME_61:
                raise ValueError(f"coefficient b={coeff} outside [0, 2^61-1)")
        return family

    def indices(self, key: Hashable) -> np.ndarray:
        """Return the ``depth`` cell indices for ``key`` (one per row)."""
        return self.indices_for_uint64(key_to_uint64(key))

    def indices_for_uint64(self, value: int) -> np.ndarray:
        """Return cell indices for a pre-canonicalized 64-bit key."""
        a = self._a.astype(object)
        b = self._b.astype(object)
        out = np.empty(self.depth, dtype=np.int64)
        for row in range(self.depth):
            out[row] = ((int(a[row]) * value + int(b[row])) % MERSENNE_PRIME_61) % self.width
        return out

    def indices_batch(self, values: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized cell indices for many pre-canonicalized keys.

        The modular arithmetic runs entirely in uint64 numpy kernels (see
        :func:`_mulmod_mersenne61`), producing bit-identical indices to
        :meth:`indices_for_uint64` at a fraction of the per-key cost.

        Args:
            values: 1-D sequence of unsigned 64-bit key integers.

        Returns:
            Array of shape ``(depth, len(values))`` with column indices.
        """
        vals = np.ascontiguousarray(values, dtype=np.uint64)
        width = _U64(self.width)
        out = np.empty((self.depth, vals.size), dtype=np.int64)
        for row in range(self.depth):
            mixed = _mulmod_mersenne61(int(self._a[row]), vals)
            mixed = mixed + _U64(int(self._b[row]))
            mixed = np.where(mixed >= _M61, mixed - _M61, mixed)
            out[row, :] = (mixed % width).astype(np.int64)
        return out

    def coefficients(self) -> Iterable[tuple[int, int]]:
        """Yield the ``(a, b)`` coefficient pairs (mainly for testing)."""
        for a, b in zip(self._a.tolist(), self._b.tolist()):
            yield int(a), int(b)

    def coefficient_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The per-row ``(a, b)`` coefficients as read-only uint64 columns.

        The compiled query plan stacks these across many sketches into one
        per-slot coefficient matrix; returning array views avoids a
        tuple-of-ints round trip per sketch.
        """
        a = self._a.view()
        b = self._b.view()
        a.setflags(write=False)
        b.setflags(write=False)
        return a, b


class SignHashFamily:
    """A family of ``depth`` pairwise-independent ±1 hash functions.

    Used by :class:`~repro.sketches.count_sketch.CountSketch` and
    :class:`~repro.sketches.ams.AMSSketch`, which need an unbiased sign in
    addition to a cell index.
    """

    def __init__(self, depth: int, seed: SeedLike = None) -> None:
        self.depth = require_positive_int(depth, "depth")
        rng = resolve_rng(seed)
        self._a = rng.integers(1, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)
        self._b = rng.integers(0, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)

    def signs(self, key: Hashable) -> np.ndarray:
        """Return the ``depth`` signs (+1 or -1) for ``key``."""
        return self.signs_for_uint64(key_to_uint64(key))

    def signs_for_uint64(self, value: int) -> np.ndarray:
        """Return signs for a pre-canonicalized 64-bit key."""
        out = np.empty(self.depth, dtype=np.int64)
        for row in range(self.depth):
            mixed = (int(self._a[row]) * value + int(self._b[row])) % MERSENNE_PRIME_61
            out[row] = 1 if (mixed & 1) == 1 else -1
        return out

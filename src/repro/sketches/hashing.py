"""Pairwise-independent hash families.

All sketches in this package hash arbitrary stream keys (edges, vertex labels,
strings) into counter cells.  Keys are first canonicalized to an unsigned
64-bit integer by :func:`key_to_uint64`, then mapped into ``[0, width)`` by a
Carter–Wegman family ``h(x) = ((a * x + b) mod p) mod width`` over the
Mersenne prime ``p = 2^61 - 1``.  Each row of a sketch draws an independent
``(a, b)`` pair, which yields the pairwise independence required by the
Count-Min analysis (paper Section 3.2) and by Theorem 1's collision bound.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_positive_int

#: Mersenne prime 2^61 - 1, large enough to treat 64-bit key mixes as field
#: elements with negligible wrap-around bias.
MERSENNE_PRIME_61 = (1 << 61) - 1

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """Finalize a 64-bit integer with the splitmix64 mixing function."""
    value = (value + _GOLDEN_GAMMA) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def key_to_uint64(key: Hashable) -> int:
    """Canonicalize an arbitrary stream key to an unsigned 64-bit integer.

    The mapping is deterministic across processes (unlike built-in ``hash``,
    which is salted for strings), so sketches populated in different runs of
    the library agree on cell placement.

    Supported key types:

    * integers (mixed through splitmix64),
    * strings and bytes (BLAKE2b digest),
    * tuples of supported keys (combined with a polynomial rolling mix).
    """
    if isinstance(key, bool):
        return _splitmix64(int(key))
    if isinstance(key, (int, np.integer)):
        return _splitmix64(int(key) & 0xFFFFFFFFFFFFFFFF)
    if isinstance(key, bytes):
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "little")
    if isinstance(key, str):
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little")
    if isinstance(key, tuple):
        acc = 0x9E3779B97F4A7C15
        for part in key:
            acc = _splitmix64(acc ^ key_to_uint64(part))
        return acc
    if isinstance(key, float):
        return _splitmix64(hash(key) & 0xFFFFFFFFFFFFFFFF)
    raise TypeError(
        "sketch keys must be int, str, bytes, float or tuples thereof; "
        f"got {type(key).__name__}"
    )


class PairwiseHashFamily:
    """A family of ``depth`` pairwise-independent hash functions onto ``[0, width)``.

    Args:
        depth: number of independent hash functions (sketch rows).
        width: range of each hash function (sketch columns).
        seed: seed, generator, or ``None`` used to draw the ``(a, b)``
            coefficients.
    """

    def __init__(self, depth: int, width: int, seed: SeedLike = None) -> None:
        self.depth = require_positive_int(depth, "depth")
        self.width = require_positive_int(width, "width")
        rng = resolve_rng(seed)
        # a must be non-zero in the field; b may be anything in [0, p).
        self._a = rng.integers(1, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)
        self._b = rng.integers(0, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)

    def indices(self, key: Hashable) -> np.ndarray:
        """Return the ``depth`` cell indices for ``key`` (one per row)."""
        return self.indices_for_uint64(key_to_uint64(key))

    def indices_for_uint64(self, value: int) -> np.ndarray:
        """Return cell indices for a pre-canonicalized 64-bit key."""
        a = self._a.astype(object)
        b = self._b.astype(object)
        out = np.empty(self.depth, dtype=np.int64)
        for row in range(self.depth):
            out[row] = ((int(a[row]) * value + int(b[row])) % MERSENNE_PRIME_61) % self.width
        return out

    def indices_batch(self, values: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized cell indices for many pre-canonicalized keys.

        Args:
            values: 1-D sequence of unsigned 64-bit key integers.

        Returns:
            Array of shape ``(depth, len(values))`` with column indices.
        """
        vals = np.asarray(values, dtype=np.uint64).astype(object)
        out = np.empty((self.depth, len(vals)), dtype=np.int64)
        for row in range(self.depth):
            a = int(self._a[row])
            b = int(self._b[row])
            mixed = (vals * a + b) % MERSENNE_PRIME_61 % self.width
            out[row, :] = mixed.astype(np.int64)
        return out

    def coefficients(self) -> Iterable[tuple[int, int]]:
        """Yield the ``(a, b)`` coefficient pairs (mainly for testing)."""
        for a, b in zip(self._a.tolist(), self._b.tolist()):
            yield int(a), int(b)


class SignHashFamily:
    """A family of ``depth`` pairwise-independent ±1 hash functions.

    Used by :class:`~repro.sketches.count_sketch.CountSketch` and
    :class:`~repro.sketches.ams.AMSSketch`, which need an unbiased sign in
    addition to a cell index.
    """

    def __init__(self, depth: int, seed: SeedLike = None) -> None:
        self.depth = require_positive_int(depth, "depth")
        rng = resolve_rng(seed)
        self._a = rng.integers(1, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)
        self._b = rng.integers(0, MERSENNE_PRIME_61, size=self.depth, dtype=np.uint64)

    def signs(self, key: Hashable) -> np.ndarray:
        """Return the ``depth`` signs (+1 or -1) for ``key``."""
        return self.signs_for_uint64(key_to_uint64(key))

    def signs_for_uint64(self, value: int) -> np.ndarray:
        """Return signs for a pre-canonicalized 64-bit key."""
        out = np.empty(self.depth, dtype=np.int64)
        for row in range(self.depth):
            mixed = (int(self._a[row]) * value + int(self._b[row])) % MERSENNE_PRIME_61
            out[row] = 1 if (mixed & 1) == 1 else -1
        return out

"""Count sketch (Charikar, Chen & Farach-Colton).

A signed variant of Count-Min whose point estimate is the *median* of signed
counters rather than the minimum of unsigned ones.  Unlike Count-Min the
estimate is unbiased (it can under- as well as over-estimate).  gSketch's
partitioning is agnostic to which synopsis backs each partition, and the test
suite uses this class to exercise that generality.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.sketches.base import FrequencySketch
from repro.sketches.hashing import PairwiseHashFamily, SignHashFamily, key_to_uint64
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_non_negative, require_positive_int


class CountSketch(FrequencySketch):
    """A ``depth x width`` Count sketch with median-of-signed-counters estimates."""

    def __init__(self, width: int, depth: int, seed: SeedLike = None) -> None:
        self._width = require_positive_int(width, "width")
        self._depth = require_positive_int(depth, "depth")
        rng = resolve_rng(seed)
        self._hashes = PairwiseHashFamily(self._depth, self._width, seed=rng)
        self._signs = SignHashFamily(self._depth, seed=rng)
        self._table = np.zeros((self._depth, self._width), dtype=np.float64)
        self._rows = np.arange(self._depth)
        self._total = 0.0

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def total_count(self) -> float:
        return self._total

    @property
    def memory_cells(self) -> int:
        return self._width * self._depth

    def update(self, key: Hashable, count: float = 1.0) -> None:
        count = require_non_negative(count, "count")
        value = key_to_uint64(key)
        cols = self._hashes.indices_for_uint64(value)
        signs = self._signs.signs_for_uint64(value)
        self._table[self._rows, cols] += signs * count
        self._total += count

    def estimate(self, key: Hashable) -> float:
        value = key_to_uint64(key)
        cols = self._hashes.indices_for_uint64(value)
        signs = self._signs.signs_for_uint64(value)
        estimates = signs * self._table[self._rows, cols]
        return float(np.median(estimates))

    def estimate_non_negative(self, key: Hashable) -> float:
        """Median estimate clamped at zero, for non-negative frequency streams."""
        return max(0.0, self.estimate(key))

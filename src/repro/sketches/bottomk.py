"""Bottom-k (min-hash) sketch (Cohen & Kaplan, 2008).

Reference [11] of the paper: keeps the ``k`` keys with the smallest hash
values, which yields an unbiased estimator of the number of distinct keys and
a uniform-without-replacement sample of the key population.  gSketch does not
use Bottom-k directly, but the experiment harness uses it to characterize the
distinct-edge universe of a stream sample, and it completes the related-work
substrate inventory.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.sketches.base import FrequencySketch
from repro.sketches.hashing import key_to_uint64, _splitmix64
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_non_negative, require_positive_int

_MAX_UINT64 = float(2**64)


class BottomKSketch(FrequencySketch):
    """Bottom-k sample of the distinct keys of a stream.

    The sketch stores, for each of the ``k`` retained keys, the total
    frequency observed *while the key was retained*; frequencies are exact for
    keys that entered the sample at their first occurrence (which is the case
    for every retained key because membership is decided by the key hash, not
    by arrival order).
    """

    def __init__(self, k: int, seed: SeedLike = None) -> None:
        self._k = require_positive_int(k, "k")
        rng = resolve_rng(seed)
        self._salt = int(rng.integers(0, 2**63 - 1))
        self._hashes: Dict[Hashable, int] = {}
        self._counts: Dict[Hashable, float] = {}
        self._threshold: int | None = None
        self._total = 0.0

    @property
    def k(self) -> int:
        return self._k

    @property
    def total_count(self) -> float:
        return self._total

    @property
    def memory_cells(self) -> int:
        return len(self._hashes)

    def _hash(self, key: Hashable) -> int:
        return _splitmix64(key_to_uint64(key) ^ self._salt)

    def update(self, key: Hashable, count: float = 1.0) -> None:
        count = require_non_negative(count, "count")
        self._total += count
        value = self._hash(key)
        if key in self._hashes:
            self._counts[key] += count
            return
        if len(self._hashes) < self._k:
            self._hashes[key] = value
            self._counts[key] = count
            self._refresh_threshold()
            return
        assert self._threshold is not None
        if value < self._threshold:
            # Evict the key with the current largest hash.
            evict = max(self._hashes, key=self._hashes.__getitem__)
            del self._hashes[evict]
            del self._counts[evict]
            self._hashes[key] = value
            self._counts[key] = count
            self._refresh_threshold()

    def _refresh_threshold(self) -> None:
        if len(self._hashes) >= self._k:
            self._threshold = max(self._hashes.values())
        else:
            self._threshold = None

    def estimate(self, key: Hashable) -> float:
        """Frequency of ``key`` if it is retained in the sample, else 0."""
        return self._counts.get(key, 0.0)

    def sample_keys(self) -> List[Hashable]:
        """The retained keys, sorted by hash value (smallest first)."""
        return sorted(self._hashes, key=self._hashes.__getitem__)

    def distinct_count_estimate(self) -> float:
        """Unbiased estimate of the number of distinct keys observed."""
        if len(self._hashes) < self._k:
            return float(len(self._hashes))
        assert self._threshold is not None
        kth_normalized = self._threshold / _MAX_UINT64
        if kth_normalized <= 0.0:
            return float(len(self._hashes))
        return (self._k - 1) / kth_normalized

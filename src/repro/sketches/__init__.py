"""Stream synopsis substrates.

This subpackage implements, from scratch, the sketch data structures the paper
builds on or compares against:

* :class:`~repro.sketches.countmin.CountMinSketch` — the synopsis gSketch
  partitions (paper Figure 1, Equation 1).
* :class:`~repro.sketches.count_sketch.CountSketch` — signed median estimator,
  demonstrating that gSketch generalizes beyond Count-Min.
* :class:`~repro.sketches.ams.AMSSketch` — tug-of-war second-moment sketch [5].
* :class:`~repro.sketches.lossy_counting.LossyCounting` — deterministic
  heavy-hitter synopsis [23].
* :class:`~repro.sketches.bottomk.BottomKSketch` — bottom-k min-hash
  sample [11].
* :class:`~repro.sketches.exact.ExactCounter` — exact dictionary counter used
  as the ground-truth oracle in tests and experiments.
"""

from repro.sketches.ams import AMSSketch
from repro.sketches.base import FrequencySketch
from repro.sketches.bottomk import BottomKSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.exact import ExactCounter
from repro.sketches.hashing import PairwiseHashFamily, SignHashFamily, key_to_uint64
from repro.sketches.lossy_counting import LossyCounting

__all__ = [
    "AMSSketch",
    "BottomKSketch",
    "CountMinSketch",
    "CountSketch",
    "ExactCounter",
    "FrequencySketch",
    "LossyCounting",
    "PairwiseHashFamily",
    "SignHashFamily",
    "key_to_uint64",
]

"""The concurrent query server: asyncio TCP in front of one `SketchEngine`.

One server owns one engine.  All backend access — coalesced gathers, inline
confidence queries, (opt-in) live ingest — happens on the server's single
event-loop thread, so the estimator needs no locks and the plan/generation
machinery keeps its single-writer semantics.  Concurrency comes from the
wire: many connections multiplex onto the loop, their in-flight point
queries coalesce into shared compiled-plan gathers
(:class:`~repro.serving.coalesce.CoalescingQueue`), and responses demux back
per request id.

Overload behaviour, by layer:

* **global admission** — the coalescing queue bounds waiting keys
  (``max_pending``); beyond it requests are shed with a typed
  ``retry_later`` response instead of queueing (bounded memory, honest
  latency).
* **per-connection admission** — at most ``max_inflight`` un-answered
  requests per connection; a client pipelining past that is shed the same
  way, so one greedy client cannot monopolize the global queue.
* **slow clients** — each connection's responses go through a bounded write
  queue drained by a dedicated writer task; only that task ever awaits the
  socket, so a client that stops reading stalls *its own* writer, never the
  batch demux.  If its queue fills, the connection is dropped.
* **graceful drain** — :meth:`SketchServer.shutdown` stops accepting, sheds
  new requests with ``shutting_down``, answers everything already admitted,
  flushes write queues, then closes.

Per-request ``deadline_ms`` is honoured at drain time: a request whose
deadline passed while queued gets a ``deadline_exceeded`` response rather
than a stale answer.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Awaitable, Dict, List, Optional, Set, Tuple, Union

from repro import faults as _faults
from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge
from repro.observability import metrics as _obs
from repro.queries.edge_query import EdgeQuery
from repro.queries.parallel import ReaderPool, ReaderSupervisor
from repro.queries.plan import CompiledQueryPlan, HotEdgeCache
from repro.queries.subgraph_query import SubgraphQuery
from repro.serving import wire
from repro.serving.coalesce import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_US,
    DEFAULT_MAX_PENDING,
    AdmissionError,
    CoalescingQueue,
    DeadlineExceededError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.api.engine import SketchEngine

_CONNECTIONS = _obs.REGISTRY.gauge(
    "repro_serve_connections", "Client connections currently open"
)
_REQUESTS = {
    status: _obs.REGISTRY.counter(
        "repro_serve_requests_total",
        "Requests answered by the serving tier, by response status",
        {"status": status},
    )
    for status in (
        wire.STATUS_OK,
        wire.STATUS_RETRY_LATER,
        wire.STATUS_DEADLINE,
        wire.STATUS_SHUTTING_DOWN,
        wire.STATUS_ERROR,
    )
}
_REQUEST_SECONDS = _obs.REGISTRY.histogram(
    "repro_serve_request_seconds",
    "Server-side request latency (admission to response enqueued); "
    "p50/p99 via Histogram.quantile or the Prometheus exposition",
)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving tier (defaults suit a single-host deployment).

    Attributes:
        max_batch: largest coalesced gather, in keys.
        max_delay_us: micro-batching dally before answering a non-full batch.
        max_pending: global admission bound on keys waiting to coalesce.
        max_inflight: per-connection admission bound on un-answered requests.
        max_write_queue: per-connection response frames buffered for a slow
            reader before the connection is dropped.
        max_frame_bytes: request/response frame size cap.
        drain_seconds: how long :meth:`SketchServer.shutdown` waits for
            in-flight work and write-queue flushes.
        allow_ingest: accept ``ingest`` frames (live updates while serving;
            they run serialized on the loop between gathers, bumping the
            plan generation clients observe).
    """

    max_batch: int = DEFAULT_MAX_BATCH
    max_delay_us: int = DEFAULT_MAX_DELAY_US
    max_pending: int = DEFAULT_MAX_PENDING
    max_inflight: int = 256
    max_write_queue: int = 1024
    max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES
    drain_seconds: float = 5.0
    allow_ingest: bool = False

    def __post_init__(self) -> None:
        for field in fields(self):
            if field.name == "allow_ingest":
                continue
            value = getattr(self, field.name)
            if value <= 0:
                raise ValueError(f"{field.name} must be > 0, got {value}")


class _Connection:
    """Per-connection state: the bounded write queue and its writer task."""

    __slots__ = (
        "writer",
        "out_queue",
        "writer_task",
        "tasks",
        "inflight",
        "closed",
        "peer",
    )

    def __init__(self, writer: asyncio.StreamWriter, max_write_queue: int) -> None:
        self.writer = writer
        self.out_queue: "asyncio.Queue[Optional[dict]]" = asyncio.Queue(max_write_queue)
        self.writer_task: Optional["asyncio.Task[None]"] = None
        self.tasks: "Set[asyncio.Task]" = set()
        self.inflight = 0
        self.closed = False
        peername = writer.get_extra_info("peername")
        self.peer = f"{peername[0]}:{peername[1]}" if peername else "?"


class SketchServer:
    """Asyncio TCP server coalescing point queries across clients.

    Construction binds nothing; call :meth:`start` (on a running loop) to
    listen, then :meth:`serve_forever` — or use
    :func:`serve_in_background` / :meth:`repro.SketchEngine.serve` from
    synchronous code.
    """

    def __init__(
        self,
        engine: "SketchEngine",
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self._engine = engine
        self._host = host
        self._port = port
        self.config = config or ServingConfig()
        # The parallel read plane: when the engine was built with
        # .plan(PlanConfig(readers=N)) the server owns a ReaderPool, a
        # server-side hot cache and the single dispatch thread that is the
        # only code ever touching the pool's worker pipes.
        plan_config = getattr(engine, "plan_config", None)
        self._plan_config = plan_config if plan_config and plan_config.readers else None
        self._pool: Optional[ReaderPool] = None
        self._pool_cache: Optional[HotEdgeCache] = None
        self._pool_executor: Optional[ThreadPoolExecutor] = None
        self._supervisor: Optional[ReaderSupervisor] = None
        inflight = self._plan_config.max_pending if self._plan_config else 1
        self._coalescer = CoalescingQueue(
            self._answer_batch,
            max_batch=self.config.max_batch,
            max_delay_us=self.config.max_delay_us,
            max_pending=self.config.max_pending,
            inflight_batches=inflight,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._request_tasks: "Set[asyncio.Task]" = set()
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        # Always-on counters (mirrored into the registry when telemetry is on).
        self.requests_by_status: Dict[str, int] = {status: 0 for status in _REQUESTS}
        self.connections_accepted = 0
        self.connections_dropped = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Compile the read plan, bind the listening socket, start draining."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stopped = asyncio.Event()
        # Warm the compiled plan so the first client request pays no compile.
        self._engine.frozen()
        if self._plan_config is not None:
            self._pool = ReaderPool.from_estimator(
                self._engine.estimator, self._plan_config
            )
            self._pool_cache = HotEdgeCache()
            self._pool_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-pool-dispatch"
            )
            if self._plan_config.supervised:
                # The background healer respawns dead workers against the
                # current arena generation; the dispatch thread re-issues
                # failed batches on the survivors meanwhile.
                self._supervisor = ReaderSupervisor(self._pool)
        self._coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the real port when 0 was requested)."""
        return self._host, self._port

    @property
    def draining(self) -> bool:
        return self._draining

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` completes (from a signal or another task)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: answer the admitted, shed the new, then close."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-flight request tasks either resolve through the coalescer's own
        # drain or shed with `shutting_down`; bound the wait regardless.
        deadline = self.config.drain_seconds
        if self._request_tasks:
            await asyncio.wait(tuple(self._request_tasks), timeout=deadline)
        await self._coalescer.stop()
        if self._request_tasks:
            await asyncio.wait(tuple(self._request_tasks), timeout=deadline)
        if self._pool_executor is not None:
            # The coalescer has drained, so no dispatch job can still be
            # queued; shutdown here just joins the (idle) dispatch thread.
            self._pool_executor.shutdown(wait=True)
            self._pool_executor = None
        if self._supervisor is not None:
            self._supervisor.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for connection in tuple(self._connections):
            await self._close_connection(connection, flush=True)
        if self._stopped is not None:
            self._stopped.set()

    def stats(self) -> dict:
        """Always-on serving statistics (the bench and tests read these)."""
        stats = {
            "address": list(self.address),
            "connections_open": len(self._connections),
            "connections_accepted": self.connections_accepted,
            "connections_dropped": self.connections_dropped,
            "requests": dict(self.requests_by_status),
            "coalescer": self._coalescer.stats(),
            "draining": self._draining,
        }
        if self._pool is not None:
            stats["readers"] = {
                "configured": self._pool.readers,
                "generation": self._pool.generation,
                "kernel": self._pool.config.kernel,
            }
            if self._supervisor is not None:
                stats["readers"]["supervisor"] = self._supervisor.telemetry()
        return stats

    def health(self) -> dict:
        """The ``health`` wire op's payload (also behind ``repro serve --health``).

        ``state`` walks starting → serving → draining; ``degraded`` flags a
        server that answers but with reduced redundancy — dead sketch shards
        (PR-7 degraded serving) or dead reader-pool workers awaiting respawn.
        Readiness probes should treat only ``state == "serving"`` with
        ``degraded == false`` as fully healthy, and ``serving`` + degraded
        as ready-but-alarming.
        """
        estimator = self._engine.estimator
        if self._draining:
            state = wire.STATE_DRAINING
        elif self._server is not None:
            state = wire.STATE_SERVING
        else:
            state = wire.STATE_STARTING
        dead_shards = getattr(estimator, "dead_shards", None)
        shards_degraded = bool(getattr(estimator, "degraded", False))
        payload: dict = {
            "state": state,
            "generation": int(getattr(estimator, "ingest_generation", 0)),
            "connections": len(self._connections),
            "degraded": shards_degraded,
        }
        if dead_shards is not None:
            payload["dead_shards"] = sorted(dead_shards)
        if self._supervisor is not None:
            readers = self._supervisor.telemetry()
            payload["readers"] = readers
            if not self._draining:
                payload["degraded"] = payload["degraded"] or readers["degraded"]
        elif self._pool is not None:
            alive = self._pool.alive_count
            payload["readers"] = {
                "width": self._pool.readers,
                "alive": alive,
                "degraded": alive < self._pool.readers,
            }
            payload["degraded"] = payload["degraded"] or alive < self._pool.readers
        return payload

    # ------------------------------------------------------------------ #
    # Backend access (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _answer_batch(
        self, keys: List[EdgeKey]
    ) -> Union[Tuple[List[float], int], "Awaitable[Tuple[List[float], int]]"]:
        """One coalesced gather plus its generation tag.

        Without a reader pool this runs synchronously on the loop, so the
        generation read afterwards is exactly the one that answered (nothing
        can mutate the engine between the gather and the read).  With a pool
        it returns an awaitable: the staleness check and any plan recompile
        stay on the loop (single-writer semantics against ingest), while the
        pool dispatch — the only code touching worker pipes — runs on the
        dedicated executor thread and the loop merely demuxes the result.
        """
        if self._pool is not None:
            return self._answer_batch_pool(keys)
        estimator = self._engine.estimator
        values = estimator.query_edges(keys)
        generation = int(getattr(estimator, "ingest_generation", 0))
        return list(values), generation

    def _answer_batch_pool(
        self, keys: List[EdgeKey]
    ) -> "Awaitable[Tuple[List[float], int]]":
        estimator = self._engine.estimator
        plan: Optional[CompiledQueryPlan] = None
        if int(getattr(estimator, "ingest_generation", 0)) != self._pool.generation:
            # Compile on the loop (serialized with ingest); workers remap on
            # the dispatch thread, in-flight batches finish on the old arena.
            plan = estimator.compile_plan()
        return asyncio.get_running_loop().run_in_executor(
            self._pool_executor, self._pool_answer, list(keys), plan
        )

    def _pool_answer(
        self, keys: List[EdgeKey], plan: Optional[CompiledQueryPlan]
    ) -> Tuple[List[float], int]:
        """Dispatch-thread half of the pool path (owns all pipe traffic).

        Under supervision the whole operation re-issues on worker death:
        the swap is generation-idempotent and the gather is a pure read, so
        a retried batch answers bit-identically on the survivors while the
        background healer respawns the dead slot.  Only a fully-dead,
        unhealable pool surfaces an error.
        """
        if self._supervisor is not None:
            return self._supervisor.call(self._pool_answer_once, keys, plan)
        return self._pool_answer_once(keys, plan)

    def _pool_answer_once(
        self, keys: List[EdgeKey], plan: Optional[CompiledQueryPlan]
    ) -> Tuple[List[float], int]:
        pool = self._pool
        if pool is None:  # pragma: no cover - shutdown race guard
            raise AdmissionError("server is draining")
        if plan is not None:
            pool.swap(plan)
        generation = pool.generation
        values = pool.query_edges_cached(keys, self._pool_cache, generation)
        return values.tolist(), generation

    def _hello(self) -> dict:
        estimator = self._engine.estimator
        return {
            "op": wire.OP_HELLO,
            "protocol": wire.PROTOCOL_VERSION,
            "backend": self._engine.backend,
            "generation": int(getattr(estimator, "ingest_generation", 0)),
            "max_batch": self.config.max_batch,
            "max_inflight": self.config.max_inflight,
            "allow_ingest": self.config.allow_ingest,
            "readers": self._plan_config.readers if self._plan_config else 0,
        }

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer, self.config.max_write_queue)
        self._connections.add(connection)
        self.connections_accepted += 1
        if _obs._ENABLED:
            _CONNECTIONS.set(float(len(self._connections)))
        connection.writer_task = asyncio.get_running_loop().create_task(
            self._write_loop(connection)
        )
        self._enqueue(connection, self._hello())
        try:
            while True:
                try:
                    frame = await wire.read_frame(reader, self.config.max_frame_bytes)
                except wire.WireError as exc:
                    self._respond(
                        connection, None, wire.STATUS_ERROR, 0.0, error=str(exc)
                    )
                    break
                if frame is None:
                    break
                self._dispatch(connection, frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await self._close_connection(connection, flush=not self._draining)

    async def _close_connection(self, connection: _Connection, flush: bool) -> None:
        if connection not in self._connections:
            return
        self._connections.discard(connection)
        if _obs._ENABLED:
            _CONNECTIONS.set(float(len(self._connections)))
        connection.closed = True
        # The connection is gone: answering its in-flight requests would
        # push frames into a closed write queue.  Cancelling the tasks
        # cancels their coalescer futures, which the queue counts into its
        # ``cancelled`` stat (at drain or demux time) instead of answering.
        for task in tuple(connection.tasks):
            task.cancel()
        if connection.writer_task is not None:
            if flush:
                try:
                    connection.out_queue.put_nowait(None)  # writer-stop sentinel
                    await asyncio.wait_for(
                        connection.writer_task, self.config.drain_seconds
                    )
                except (asyncio.QueueFull, asyncio.TimeoutError):
                    connection.writer_task.cancel()
            else:
                connection.writer_task.cancel()
            try:
                await connection.writer_task
            except (asyncio.CancelledError, Exception):
                pass
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _write_loop(self, connection: _Connection) -> None:
        """Drain one connection's write queue; only this task awaits its socket."""
        while True:
            payload = await connection.out_queue.get()
            if payload is None:
                return
            try:
                data = wire.encode_frame(payload)
                if _faults._PLAN is not None:
                    # Injected wire faults: a stalled response (client-side
                    # deadline/retry territory) or a frame torn mid-payload
                    # followed by an abort (client sees a short read).
                    delay = _faults.maybe_stall(
                        _faults.SITE_SERVING_STALL_CONNECTION
                    )
                    if delay > 0.0:
                        await asyncio.sleep(delay)
                    data, torn = _faults.tear_frame(data)
                    if torn:
                        connection.writer.write(data)
                        await connection.writer.drain()
                        connection.closed = True
                        self.connections_dropped += 1
                        connection.writer.close()
                        return
                connection.writer.write(data)
                await connection.writer.drain()
            except (ConnectionError, OSError):
                connection.closed = True
                return

    def _drop_slow(self, connection: _Connection) -> None:
        """A full write queue means the client stopped reading: drop it."""
        connection.closed = True
        self.connections_dropped += 1
        if connection.writer_task is not None:
            connection.writer_task.cancel()
        try:
            connection.writer.close()
        except (ConnectionError, OSError):
            pass

    def _abort_connection(self, connection: _Connection) -> None:
        """Sever a connection's transport abruptly (fault-injection paths).

        Mimics the peer vanishing mid-flight: the read loop wakes with a
        reset, :meth:`_close_connection` cancels the connection's in-flight
        request tasks, and the coalescer counts their futures as cancelled.
        """
        connection.closed = True
        self.connections_dropped += 1
        transport = getattr(connection.writer, "transport", None)
        try:
            if transport is not None:
                transport.abort()
            else:  # pragma: no cover - transport always set on TCP
                connection.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover - defensive
            pass

    def _enqueue(self, connection: _Connection, payload: dict) -> None:
        if connection.closed:
            return
        try:
            connection.out_queue.put_nowait(payload)
        except asyncio.QueueFull:
            self._drop_slow(connection)

    def _respond(
        self,
        connection: _Connection,
        request_id: object,
        status: str,
        began: float,
        **extra: object,
    ) -> None:
        self.requests_by_status[status] = self.requests_by_status.get(status, 0) + 1
        if _obs._ENABLED:
            counter = _REQUESTS.get(status)
            if counter is not None:
                counter.inc()
            if began:
                _REQUEST_SECONDS._observe(asyncio.get_running_loop().time() - began)
        payload = {"id": request_id, "status": status}
        payload.update(extra)
        self._enqueue(connection, payload)

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, connection: _Connection, frame: dict) -> None:
        op = frame.get("op")
        request_id = frame.get("id")
        began = asyncio.get_running_loop().time()
        if op == wire.OP_PING:
            self._respond(connection, request_id, wire.STATUS_OK, began, pong=True)
            return
        if op == wire.OP_HEALTH:
            # Health answers in every state — a draining server reports
            # ``draining`` rather than shedding the probe.
            self._respond(
                connection, request_id, wire.STATUS_OK, began, **self.health()
            )
            return
        if op in (wire.OP_QUERY_EDGES, wire.OP_QUERY_SUBGRAPH):
            if self._draining:
                self._respond(connection, request_id, wire.STATUS_SHUTTING_DOWN, began)
                return
            if connection.inflight >= self.config.max_inflight:
                self._coalescer.rejected += 1
                self._respond(
                    connection,
                    request_id,
                    wire.STATUS_RETRY_LATER,
                    began,
                    error=f"connection has {connection.inflight} requests in flight",
                )
                return
            connection.inflight += 1
            task = asyncio.get_running_loop().create_task(
                self._serve_query(connection, request_id, op, frame, began)
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
            connection.tasks.add(task)
            task.add_done_callback(connection.tasks.discard)
            return
        if op == wire.OP_INGEST:
            self._serve_ingest(connection, request_id, frame, began)
            return
        self._respond(
            connection,
            request_id,
            wire.STATUS_ERROR,
            began,
            error=f"unknown op {op!r}",
        )

    async def _serve_query(
        self,
        connection: _Connection,
        request_id: object,
        op: str,
        frame: dict,
        began: float,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            edges = wire.edges_from_wire(frame.get("edges"))
            deadline_ms = frame.get("deadline_ms")
            deadline = None
            if deadline_ms is not None:
                deadline = began + float(deadline_ms) / 1_000.0
            if frame.get("confidence") and op == wire.OP_QUERY_EDGES:
                # Confidence queries carry intervals and provenance; they are
                # answered inline (one vectorized pass, no coalescing) so the
                # value lane's demux stays a flat float slice.
                if deadline is not None and loop.time() > deadline:
                    raise DeadlineExceededError("deadline passed before serving")
                estimates = self._engine.query(
                    [EdgeQuery(source, target) for source, target in edges]
                )
                generation = int(
                    getattr(self._engine.estimator, "ingest_generation", 0)
                )
                self._respond(
                    connection,
                    request_id,
                    wire.STATUS_OK,
                    began,
                    generation=generation,
                    estimates=[estimate.to_dict() for estimate in estimates],
                )
                return
            future = self._coalescer.submit(edges, deadline)
            if _faults._PLAN is not None and _faults.should_fire(
                _faults.SITE_SERVING_DROP_DRAIN
            ):
                # The requester's connection vanishes after admission but
                # before demux — the cancel-on-disconnect path must cancel
                # this very request instead of answering into a closed
                # write queue.
                self._abort_connection(connection)
            values, generation = await future
            payload: dict = {"generation": generation}
            if op == wire.OP_QUERY_SUBGRAPH:
                query = SubgraphQuery.from_edges(
                    edges, aggregate=str(frame.get("aggregate", "sum"))
                )
                payload["value"] = float(query.combine(values))
            else:
                payload["values"] = values
            if getattr(self._engine.estimator, "degraded", False):
                payload["degraded"] = True
            self._respond(connection, request_id, wire.STATUS_OK, began, **payload)
        except AdmissionError as exc:
            self._respond(
                connection,
                request_id,
                wire.STATUS_SHUTTING_DOWN if self._draining else wire.STATUS_RETRY_LATER,
                began,
                error=str(exc),
            )
        except DeadlineExceededError as exc:
            self._respond(connection, request_id, wire.STATUS_DEADLINE, began, error=str(exc))
        except (wire.WireError, ValueError, KeyError, RuntimeError) as exc:
            self._respond(connection, request_id, wire.STATUS_ERROR, began, error=str(exc))
        finally:
            connection.inflight -= 1

    def _serve_ingest(
        self, connection: _Connection, request_id: object, frame: dict, began: float
    ) -> None:
        """Live updates while serving (opt-in): serialized on the loop.

        Runs between coalesced gathers, so every query is answered either
        entirely before or entirely after the ingest — the generation tag
        clients observe moves monotonically.
        """
        if not self.config.allow_ingest:
            self._respond(
                connection,
                request_id,
                wire.STATUS_ERROR,
                began,
                error="ingest is disabled on this server (ServingConfig.allow_ingest)",
            )
            return
        if self._draining:
            self._respond(connection, request_id, wire.STATUS_SHUTTING_DOWN, began)
            return
        try:
            raw = frame.get("edges")
            if not isinstance(raw, list) or not raw:
                raise wire.WireError("'edges' must be a non-empty list")
            edges: List[StreamEdge] = []
            for item in raw:
                if not isinstance(item, (list, tuple)) or not 2 <= len(item) <= 4:
                    raise wire.WireError(
                        f"ingest edge {item!r} is not [source, target, ts?, freq?]"
                    )
                source, target = item[0], item[1]
                timestamp = float(item[2]) if len(item) > 2 else 0.0
                frequency = float(item[3]) if len(item) > 3 else 1.0
                edges.append(StreamEdge(source, target, timestamp, frequency))
            ingested = self._engine.ingest_batch(EdgeBatch.from_edges(edges))
            generation = int(getattr(self._engine.estimator, "ingest_generation", 0))
            if _faults._PLAN is not None and _faults.should_fire(
                _faults.SITE_SERVING_INGEST_CRASH
            ):
                # The non-idempotent retry window: the engine already
                # mutated (generation bumped) but the acknowledgement never
                # reaches the client.  A client that retried here would
                # double-count the batch — the retry discipline must not.
                self._abort_connection(connection)
                return
            self._respond(
                connection,
                request_id,
                wire.STATUS_OK,
                began,
                ingested=ingested,
                generation=generation,
            )
        except (wire.WireError, ValueError, TypeError) as exc:
            self._respond(connection, request_id, wire.STATUS_ERROR, began, error=str(exc))


# ---------------------------------------------------------------------- #
# Synchronous entry points
# ---------------------------------------------------------------------- #
class ServerHandle:
    """A server running on its own event-loop thread (background serving).

    The engine is driven exclusively by the server thread while the handle
    is live — don't query or ingest through the engine object concurrently
    from other threads.  :meth:`stop` drains gracefully and joins the
    thread; the handle is also a context manager.
    """

    def __init__(
        self,
        server: SketchServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.address

    @property
    def server(self) -> SketchServer:
        return self._server

    def stats(self) -> dict:
        """Serving stats, fetched on the server's loop (a consistent view)."""
        future = asyncio.run_coroutine_threadsafe(self._stats_async(), self._loop)
        return future.result(timeout=self._server.config.drain_seconds)

    async def _stats_async(self) -> dict:
        return self._server.stats()

    def stop(self) -> None:
        """Drain in-flight requests, close connections, join the thread."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self._server.shutdown(), self._loop)
        future.result(timeout=self._server.config.drain_seconds * 4 + 10.0)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_in_background(
    engine: "SketchEngine",
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServingConfig] = None,
) -> ServerHandle:
    """Start a :class:`SketchServer` on a dedicated event-loop thread.

    Returns once the socket is bound; raises whatever :meth:`SketchServer.start`
    raised (port in use, bad config) in the calling thread.
    """
    server = SketchServer(engine, host, port, config)
    ready = threading.Event()
    holder: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
            holder["error"] = exc
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_until_complete(server.serve_forever())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serving", daemon=True)
    thread.start()
    ready.wait()
    error = holder.get("error")
    if error is not None:
        thread.join(timeout=5.0)
        raise error
    return ServerHandle(server, holder["loop"], thread)


def run_server(
    engine: "SketchEngine",
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServingConfig] = None,
    on_started=None,
) -> None:
    """Run a server on the calling thread until interrupted (the CLI path).

    ``on_started(server)`` fires after the socket is bound (the CLI prints
    the ready line there).  ``KeyboardInterrupt``/SIGINT triggers a graceful
    drain before returning.
    """

    async def _main() -> None:
        server = SketchServer(engine, host, port, config)
        await server.start()
        if on_started is not None:
            on_started(server)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass

"""Wire protocol of the serving tier: length-prefixed JSON frames.

Every message — request or response — travels as one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.  JSON
keeps the protocol debuggable (``nc`` + a hex dump reads it) and, because
Python's ``json`` round-trips ``float`` values through ``repr``, estimate
values survive the wire **bit-identically** — the serving parity gate
(``BENCH_serve.json``) depends on that.

Requests carry an ``op`` plus a client-chosen ``id`` the server echoes back,
so clients can pipeline many requests over one connection and demultiplex
responses by id.  Responses carry a ``status``:

========================  ====================================================
``ok``                    the answer; ``values``/``value``/``estimates`` set.
``retry_later``           admission control shed the request (queue full);
                          the client should back off and retry.
``deadline_exceeded``     the request's ``deadline_ms`` elapsed before a
                          coalesced batch could answer it.
``shutting_down``         the server is draining; re-connect elsewhere.
``error``                 the request was malformed or the backend raised.
========================  ====================================================

``retry_later`` / ``shutting_down`` / ``deadline_exceeded`` are *typed*
overload semantics, not errors: the server sheds load instead of buffering
without bound, and clients see exactly why.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import List, Optional, Tuple

from repro.graph.edge import EdgeKey

#: Protocol revision, negotiated via the server's ``hello`` frame.
PROTOCOL_VERSION = 1

#: Frames larger than this are rejected before any JSON parse (both sides):
#: a corrupt or hostile length prefix cannot make a peer allocate gigabytes.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

# -- operations -------------------------------------------------------------
OP_HELLO = "hello"
OP_PING = "ping"
OP_HEALTH = "health"
OP_QUERY_EDGES = "query_edges"
OP_QUERY_SUBGRAPH = "query_subgraph"
OP_INGEST = "ingest"

# -- health states (the ``health`` op's ``state`` field) --------------------
STATE_STARTING = "starting"
STATE_SERVING = "serving"
STATE_DRAINING = "draining"

# -- response statuses ------------------------------------------------------
STATUS_OK = "ok"
STATUS_RETRY_LATER = "retry_later"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_SHUTTING_DOWN = "shutting_down"
STATUS_ERROR = "error"


class WireError(ValueError):
    """A frame or message violates the wire protocol."""


def encode_frame(payload: dict) -> bytes:
    """One message as bytes: 4-byte big-endian length + compact UTF-8 JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body; raises :class:`WireError` on malformed JSON."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[dict]:
    """Read one frame from ``reader``; ``None`` on clean EOF.

    A length prefix beyond ``max_frame_bytes`` or a truncated body raises
    :class:`WireError` — a half-written frame is a protocol violation, not
    an empty message.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise WireError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise WireError(f"frame of {length} bytes exceeds the {max_frame_bytes} byte cap")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc
    return decode_body(body)


def edges_from_wire(raw: object) -> List[EdgeKey]:
    """Validate and canonicalize a request's ``edges`` field.

    JSON has no tuples, so edges arrive as two-element arrays; labels must be
    JSON scalars (the hashable types the sketch key function accepts).
    """
    if not isinstance(raw, list) or not raw:
        raise WireError("'edges' must be a non-empty list of [source, target] pairs")
    edges: List[EdgeKey] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise WireError(f"edge {item!r} is not a [source, target] pair")
        source, target = item
        if isinstance(source, (list, dict)) or isinstance(target, (list, dict)):
            raise WireError(f"edge labels must be JSON scalars, got {item!r}")
        edges.append((source, target))
    return edges


def edges_to_wire(edges: List[EdgeKey]) -> List[List]:
    """The JSON form of a batch of edge keys."""
    return [[source, target] for source, target in edges]


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (the CLI's ``--connect`` argument)."""
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise WireError(f"expected HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise WireError(f"invalid port in {address!r}") from exc

"""repro.serving — the concurrent query-serving tier.

A small asyncio TCP stack in front of one :class:`~repro.api.engine.SketchEngine`:

* :mod:`~repro.serving.wire` — length-prefixed JSON frames (the protocol).
* :mod:`~repro.serving.coalesce` — the cross-client batching queue: waiting
  point queries from *different* connections drain into one compiled-plan
  gather, then demux back per request.  Concurrency buys batch size, and
  batch size is where the compiled plan's throughput lives.
* :mod:`~repro.serving.server` — :class:`SketchServer` plus the sync entry
  points (:func:`serve_in_background` → :class:`ServerHandle`,
  :func:`run_server` for the CLI), admission control and graceful drain.
* :mod:`~repro.serving.client` / :mod:`~repro.serving.session` — pipelined
  async client, blocking wrapper, and monotonic-reads sessions.

Quick start::

    engine = repro.SketchEngine.builder().global_sketch(...).build()
    engine.ingest(edges)
    with engine.serve() as handle:          # background thread, port 0
        host, port = handle.address
        with SyncServingClient(host, port) as client:
            client.query_edges([("a", "b"), ("c", "d")]).values
"""

from repro.serving.client import (
    DeadlineExceeded,
    RetryLater,
    RetryPolicy,
    ServerClosed,
    ServingClient,
    ServingError,
    SyncServingClient,
    WireResult,
    connect,
)
from repro.serving.coalesce import (
    AdmissionError,
    CoalescingQueue,
    DeadlineExceededError,
)
from repro.serving.server import (
    ServerHandle,
    ServingConfig,
    SketchServer,
    run_server,
    serve_in_background,
)
from repro.serving.session import ConsistencyError, Session, SyncSession, open_session

__all__ = [
    "AdmissionError",
    "CoalescingQueue",
    "ConsistencyError",
    "DeadlineExceeded",
    "DeadlineExceededError",
    "RetryLater",
    "RetryPolicy",
    "ServerClosed",
    "ServerHandle",
    "ServingClient",
    "ServingConfig",
    "ServingError",
    "Session",
    "SketchServer",
    "SyncServingClient",
    "SyncSession",
    "WireResult",
    "connect",
    "open_session",
    "run_server",
    "serve_in_background",
]

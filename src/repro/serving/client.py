"""Clients for the serving tier: async pipelined, plus a sync wrapper.

:class:`ServingClient` speaks the :mod:`~repro.serving.wire` protocol over
one TCP connection.  Requests are pipelined: each gets a connection-unique
id, a reader task demuxes response frames back to per-request futures, so
many queries can be in flight at once over a single socket — that is what
lets the server coalesce them into shared gathers.

Server-side shedding surfaces as typed exceptions:

* ``retry_later``      → :class:`RetryLater` (back off and resubmit)
* ``deadline_exceeded``→ :class:`DeadlineExceeded`
* ``shutting_down``    → :class:`ServerClosed`
* ``error``            → :class:`ServingError`

:class:`SyncServingClient` runs an async client on a private event-loop
thread and exposes blocking calls — the ergonomic path for scripts and the
CLI's ``query --connect``.

Retry discipline
----------------
Pass a :class:`RetryPolicy` to :func:`connect` / :class:`SyncServingClient`
and idempotent requests (queries, ping, health) transparently retry on
``retry_later`` and on transient disconnects (the client reconnects to the
same address first).  Backoff is capped exponential with *full jitter* so a
thundering herd of shed clients decorrelates, and the whole retry loop is
budgeted by the request's ``deadline_ms`` — a retry never fires past the
deadline the caller asked for.  ``ingest`` is **never** retried: it is not
idempotent, and a disconnect after the server applied the batch but before
the ack would double-count every edge.
"""

from __future__ import annotations

import asyncio
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.edge import EdgeKey
from repro.serving import wire

__all__ = [
    "ServingError",
    "RetryLater",
    "DeadlineExceeded",
    "ServerClosed",
    "RetryPolicy",
    "WireResult",
    "ServingClient",
    "SyncServingClient",
    "connect",
]


class ServingError(RuntimeError):
    """The server answered with ``status: error`` (or the wire broke)."""


class RetryLater(ServingError):
    """Typed admission reject: the server is saturated, resubmit later."""


class DeadlineExceeded(ServingError):
    """The request's ``deadline_ms`` passed before the server answered it."""


class ServerClosed(ServingError):
    """The server is draining (or the connection is gone): reconnect elsewhere."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter for idempotent requests.

    Attempt *n* (1-based) sleeps ``uniform(0, min(max_delay,
    base_delay * 2**(n-1)))`` before retrying — full jitter, so clients shed
    by the same admission spike don't resubmit in lockstep.  ``max_attempts``
    counts the initial try.  ``seed`` makes the jitter deterministic for
    tests and the chaos bench.
    """

    max_attempts: int = 4
    base_delay: float = 0.02
    max_delay: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ValueError("delays must be >= 0")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The jittered sleep before retry number ``attempt`` (1-based)."""
        cap = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        return rng.uniform(0.0, cap)


@dataclass(frozen=True)
class WireResult:
    """One answered query: the estimate values plus their generation tag.

    ``generation`` is the server engine's ingest generation at answer time —
    sessions use it for monotonic-reads checking.  ``degraded`` mirrors
    :class:`~repro.api.results.Provenance` semantics for sharded backends
    serving with dead shards.
    """

    values: Tuple[float, ...]
    generation: int
    degraded: bool = False

    @property
    def value(self) -> float:
        """The single value (point queries and subgraph aggregates)."""
        if len(self.values) != 1:
            raise ValueError(f"result holds {len(self.values)} values, not 1")
        return self.values[0]


_STATUS_ERRORS = {
    wire.STATUS_RETRY_LATER: RetryLater,
    wire.STATUS_DEADLINE: DeadlineExceeded,
    wire.STATUS_SHUTTING_DOWN: ServerClosed,
}


class ServingClient:
    """Async pipelined client over one connection (see the module docstring).

    Use :func:`connect` (or ``async with``) rather than constructing
    directly; the hello frame is consumed during :meth:`_start`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self.hello: dict = {}
        self._closed = False
        self._user_closed = False
        self._retry = retry
        self._rng = random.Random(retry.seed if retry is not None else None)
        self._address: Optional[Tuple[str, int]] = None
        #: Requests resubmitted under the retry policy (stat, not config).
        self.retries = 0
        #: Transparent reconnects performed by the retry loop.
        self.reconnects = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def _start(self) -> None:
        frame = await wire.read_frame(self._reader)
        if frame is None or frame.get("op") != wire.OP_HELLO:
            raise ServingError(f"expected hello frame, got {frame!r}")
        if frame.get("protocol") != wire.PROTOCOL_VERSION:
            raise ServingError(
                f"protocol mismatch: server speaks {frame.get('protocol')}, "
                f"client speaks {wire.PROTOCOL_VERSION}"
            )
        self.hello = frame
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    async def _reopen(self) -> None:
        """Reconnect to the remembered address after a transient disconnect.

        Only the retry loop calls this; it tears down the dead transport,
        dials the same address, and redoes the hello handshake.  Raises
        whatever :func:`asyncio.open_connection` raises (``OSError``
        family) when the server is unreachable — the retry loop treats that
        as one more transient failure.
        """
        if self._address is None or self._user_closed:
            raise ServerClosed("client is closed")
        if self._reader_task is not None:
            task, self._reader_task = self._reader_task, None
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        try:
            self._writer.close()
        except (ConnectionError, OSError):
            pass
        host, port = self._address
        self._reader, self._writer = await asyncio.open_connection(host, port)
        await self._start()
        self._closed = False
        self.reconnects += 1

    async def close(self) -> None:
        # No early return on _closed: a server-side disconnect marks the
        # client closed without tearing down the transport, and close()
        # must still release it.  Every step below is idempotent.
        self._closed = True
        self._user_closed = True
        if self._reader_task is not None:
            task, self._reader_task = self._reader_task, None
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ServerClosed("connection closed"))

    async def __aenter__(self) -> "ServingClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Demux plumbing
    # ------------------------------------------------------------------ #
    def _fail_pending(self, exc: Exception) -> None:
        # The connection is dead on every path that reaches here; refuse
        # later requests immediately instead of parking them forever on a
        # socket nothing reads anymore.
        self._closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await wire.read_frame(self._reader)
                if frame is None:
                    self._fail_pending(ServerClosed("server closed the connection"))
                    return
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except wire.WireError as exc:
            # A torn or oversize frame means the stream is unrecoverable —
            # the connection is as good as gone, so surface the disconnect
            # flavour (which the retry loop treats as transient).
            self._fail_pending(ServerClosed(f"wire error: {exc}"))
        except (ConnectionError, OSError) as exc:
            self._fail_pending(ServerClosed(str(exc)))

    async def _send(self, payload: dict) -> dict:
        if self._closed:
            raise ServerClosed("client is closed")
        request_id = self._next_id
        self._next_id += 1
        payload["id"] = request_id
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(wire.encode_frame(payload))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise ServerClosed(str(exc)) from exc
        frame = await future
        status = frame.get("status")
        if status == wire.STATUS_OK:
            return frame
        error_cls = _STATUS_ERRORS.get(str(status), ServingError)
        raise error_cls(str(frame.get("error", status)))

    async def _request(
        self,
        payload: dict,
        *,
        deadline_ms: Optional[float] = None,
        idempotent: bool = True,
    ) -> dict:
        """Send one request, applying the retry policy when it is safe to.

        Retries fire only for idempotent ops, and only on ``retry_later``
        or a transient disconnect (reconnecting first).  The loop is
        budgeted: with a ``deadline_ms`` it never sleeps past the moment
        the caller's deadline would expire.  ``deadline_exceeded`` and
        typed backend errors are answers, not transients — no retry.
        """
        policy = self._retry
        if policy is None or not idempotent:
            return await self._send(payload)
        loop = asyncio.get_running_loop()
        budget = None if deadline_ms is None else loop.time() + deadline_ms / 1000.0
        attempt = 1
        while True:
            try:
                if self._closed:
                    await self._reopen()
                return await self._send(payload)
            except (RetryLater, ServerClosed, OSError):
                if self._user_closed or attempt >= policy.max_attempts:
                    raise
                delay = policy.backoff(attempt, self._rng)
                if budget is not None and loop.time() + delay >= budget:
                    raise
                attempt += 1
                self.retries += 1
                await asyncio.sleep(delay)

    # ------------------------------------------------------------------ #
    # Query surface
    # ------------------------------------------------------------------ #
    async def ping(self) -> bool:
        frame = await self._request({"op": wire.OP_PING})
        return bool(frame.get("pong"))

    async def health(self) -> dict:
        """The server's readiness document (``state``, ``degraded``, ...).

        Answered even while the server drains — ``state`` is how a prober
        tells ``serving`` from ``draining`` without issuing a real query.
        """
        return await self._request({"op": wire.OP_HEALTH})

    async def query_edges(
        self,
        edges: Sequence[EdgeKey],
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        """Point-estimate a batch of edges (rides the coalesced lane)."""
        payload: dict = {
            "op": wire.OP_QUERY_EDGES,
            "edges": wire.edges_to_wire(edges),
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        frame = await self._request(payload, deadline_ms=deadline_ms)
        return WireResult(
            values=tuple(float(v) for v in frame["values"]),
            generation=int(frame.get("generation", 0)),
            degraded=bool(frame.get("degraded", False)),
        )

    async def query_edge(
        self, source: object, target: object, deadline_ms: Optional[float] = None
    ) -> WireResult:
        return await self.query_edges([(source, target)], deadline_ms)

    async def query_subgraph(
        self,
        edges: Sequence[EdgeKey],
        aggregate: str = "sum",
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        """Aggregate subgraph query; the server combines per-edge estimates."""
        payload: dict = {
            "op": wire.OP_QUERY_SUBGRAPH,
            "edges": wire.edges_to_wire(edges),
            "aggregate": aggregate,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        frame = await self._request(payload, deadline_ms=deadline_ms)
        return WireResult(
            values=(float(frame["value"]),),
            generation=int(frame.get("generation", 0)),
            degraded=bool(frame.get("degraded", False)),
        )

    async def query_edges_confidence(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> List[dict]:
        """Typed estimates with intervals/provenance (served inline, uncoalesced)."""
        payload: dict = {
            "op": wire.OP_QUERY_EDGES,
            "edges": wire.edges_to_wire(edges),
            "confidence": True,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        frame = await self._request(payload, deadline_ms=deadline_ms)
        return list(frame["estimates"])

    async def ingest(self, edges: Sequence) -> Tuple[int, int]:
        """Send live updates (``allow_ingest`` servers only).

        Each edge is ``(source, target[, timestamp[, frequency]])``.
        Returns ``(edges_ingested, new_generation)``.  Never retried, even
        under a :class:`RetryPolicy`: ingest is not idempotent, and a
        disconnect between apply and ack would double-count on resubmit.
        """
        payload = {
            "op": wire.OP_INGEST,
            "edges": [list(edge) for edge in edges],
        }
        frame = await self._request(payload, idempotent=False)
        return int(frame.get("ingested", 0)), int(frame.get("generation", 0))


async def connect(
    host: str, port: int, retry: Optional[RetryPolicy] = None
) -> ServingClient:
    """Open a connection and complete the hello handshake.

    With ``retry``, idempotent requests back off and resubmit on
    ``retry_later``/transient disconnects (reconnecting to the same
    address first) — see :class:`RetryPolicy`.  Connecting itself is
    idempotent, so the handshake also retries under the policy (a refused
    dial or a hello lost to a dying connection is transient).
    """
    rng = random.Random(retry.seed if retry is not None else None)
    attempt = 1
    while True:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            client = ServingClient(reader, writer, retry=retry)
            client._address = (host, port)
            try:
                await client._start()
            except BaseException:
                writer.close()
                raise
            return client
        except (wire.WireError, ServingError, OSError):
            if retry is None or attempt >= retry.max_attempts:
                raise
            await asyncio.sleep(retry.backoff(attempt, rng))
            attempt += 1


class SyncServingClient:
    """Blocking facade over :class:`ServingClient` (private loop thread).

    Safe to call from multiple threads — every call round-trips through the
    client's event loop.  Also a context manager::

        with SyncServingClient("127.0.0.1", 8765) as client:
            print(client.query_edge("a", "b").value)
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serving-client", daemon=True
        )
        self._thread.start()
        try:
            self._client = self._call(connect(host, port, retry=retry))
        except BaseException:
            self._stop_loop()
            raise

    def _call(self, coroutine):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=self._timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    @property
    def hello(self) -> dict:
        return self._client.hello

    @property
    def retries(self) -> int:
        """Requests resubmitted under the retry policy so far."""
        return self._client.retries

    @property
    def reconnects(self) -> int:
        """Transparent reconnects performed by the retry loop so far."""
        return self._client.reconnects

    def ping(self) -> bool:
        return self._call(self._client.ping())

    def health(self) -> dict:
        return self._call(self._client.health())

    def query_edges(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> WireResult:
        return self._call(self._client.query_edges(edges, deadline_ms))

    def query_edge(
        self, source: object, target: object, deadline_ms: Optional[float] = None
    ) -> WireResult:
        return self._call(self._client.query_edge(source, target, deadline_ms))

    def query_subgraph(
        self,
        edges: Sequence[EdgeKey],
        aggregate: str = "sum",
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        return self._call(self._client.query_subgraph(edges, aggregate, deadline_ms))

    def query_edges_confidence(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> List[dict]:
        return self._call(self._client.query_edges_confidence(edges, deadline_ms))

    def ingest(self, edges: Sequence) -> Tuple[int, int]:
        return self._call(self._client.ingest(edges))

    def close(self) -> None:
        if self._thread.is_alive():
            try:
                self._call(self._client.close())
            finally:
                self._stop_loop()

    def __enter__(self) -> "SyncServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

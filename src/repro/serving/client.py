"""Clients for the serving tier: async pipelined, plus a sync wrapper.

:class:`ServingClient` speaks the :mod:`~repro.serving.wire` protocol over
one TCP connection.  Requests are pipelined: each gets a connection-unique
id, a reader task demuxes response frames back to per-request futures, so
many queries can be in flight at once over a single socket — that is what
lets the server coalesce them into shared gathers.

Server-side shedding surfaces as typed exceptions:

* ``retry_later``      → :class:`RetryLater` (back off and resubmit)
* ``deadline_exceeded``→ :class:`DeadlineExceeded`
* ``shutting_down``    → :class:`ServerClosed`
* ``error``            → :class:`ServingError`

:class:`SyncServingClient` runs an async client on a private event-loop
thread and exposes blocking calls — the ergonomic path for scripts and the
CLI's ``query --connect``.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.edge import EdgeKey
from repro.serving import wire

__all__ = [
    "ServingError",
    "RetryLater",
    "DeadlineExceeded",
    "ServerClosed",
    "WireResult",
    "ServingClient",
    "SyncServingClient",
    "connect",
]


class ServingError(RuntimeError):
    """The server answered with ``status: error`` (or the wire broke)."""


class RetryLater(ServingError):
    """Typed admission reject: the server is saturated, resubmit later."""


class DeadlineExceeded(ServingError):
    """The request's ``deadline_ms`` passed before the server answered it."""


class ServerClosed(ServingError):
    """The server is draining (or the connection is gone): reconnect elsewhere."""


@dataclass(frozen=True)
class WireResult:
    """One answered query: the estimate values plus their generation tag.

    ``generation`` is the server engine's ingest generation at answer time —
    sessions use it for monotonic-reads checking.  ``degraded`` mirrors
    :class:`~repro.api.results.Provenance` semantics for sharded backends
    serving with dead shards.
    """

    values: Tuple[float, ...]
    generation: int
    degraded: bool = False

    @property
    def value(self) -> float:
        """The single value (point queries and subgraph aggregates)."""
        if len(self.values) != 1:
            raise ValueError(f"result holds {len(self.values)} values, not 1")
        return self.values[0]


_STATUS_ERRORS = {
    wire.STATUS_RETRY_LATER: RetryLater,
    wire.STATUS_DEADLINE: DeadlineExceeded,
    wire.STATUS_SHUTTING_DOWN: ServerClosed,
}


class ServingClient:
    """Async pipelined client over one connection (see the module docstring).

    Use :func:`connect` (or ``async with``) rather than constructing
    directly; the hello frame is consumed during :meth:`_start`.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self.hello: dict = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def _start(self) -> None:
        frame = await wire.read_frame(self._reader)
        if frame is None or frame.get("op") != wire.OP_HELLO:
            raise ServingError(f"expected hello frame, got {frame!r}")
        if frame.get("protocol") != wire.PROTOCOL_VERSION:
            raise ServingError(
                f"protocol mismatch: server speaks {frame.get('protocol')}, "
                f"client speaks {wire.PROTOCOL_VERSION}"
            )
        self.hello = frame
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    async def close(self) -> None:
        # No early return on _closed: a server-side disconnect marks the
        # client closed without tearing down the transport, and close()
        # must still release it.  Every step below is idempotent.
        self._closed = True
        if self._reader_task is not None:
            task, self._reader_task = self._reader_task, None
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ServerClosed("connection closed"))

    async def __aenter__(self) -> "ServingClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Demux plumbing
    # ------------------------------------------------------------------ #
    def _fail_pending(self, exc: Exception) -> None:
        # The connection is dead on every path that reaches here; refuse
        # later requests immediately instead of parking them forever on a
        # socket nothing reads anymore.
        self._closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await wire.read_frame(self._reader)
                if frame is None:
                    self._fail_pending(ServerClosed("server closed the connection"))
                    return
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except wire.WireError as exc:
            self._fail_pending(ServingError(str(exc)))
        except (ConnectionError, OSError) as exc:
            self._fail_pending(ServerClosed(str(exc)))

    async def _request(self, payload: dict) -> dict:
        if self._closed:
            raise ServerClosed("client is closed")
        request_id = self._next_id
        self._next_id += 1
        payload["id"] = request_id
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(wire.encode_frame(payload))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise ServerClosed(str(exc)) from exc
        frame = await future
        status = frame.get("status")
        if status == wire.STATUS_OK:
            return frame
        error_cls = _STATUS_ERRORS.get(str(status), ServingError)
        raise error_cls(str(frame.get("error", status)))

    # ------------------------------------------------------------------ #
    # Query surface
    # ------------------------------------------------------------------ #
    async def ping(self) -> bool:
        frame = await self._request({"op": wire.OP_PING})
        return bool(frame.get("pong"))

    async def query_edges(
        self,
        edges: Sequence[EdgeKey],
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        """Point-estimate a batch of edges (rides the coalesced lane)."""
        payload: dict = {
            "op": wire.OP_QUERY_EDGES,
            "edges": wire.edges_to_wire(edges),
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        frame = await self._request(payload)
        return WireResult(
            values=tuple(float(v) for v in frame["values"]),
            generation=int(frame.get("generation", 0)),
            degraded=bool(frame.get("degraded", False)),
        )

    async def query_edge(
        self, source: object, target: object, deadline_ms: Optional[float] = None
    ) -> WireResult:
        return await self.query_edges([(source, target)], deadline_ms)

    async def query_subgraph(
        self,
        edges: Sequence[EdgeKey],
        aggregate: str = "sum",
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        """Aggregate subgraph query; the server combines per-edge estimates."""
        payload: dict = {
            "op": wire.OP_QUERY_SUBGRAPH,
            "edges": wire.edges_to_wire(edges),
            "aggregate": aggregate,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        frame = await self._request(payload)
        return WireResult(
            values=(float(frame["value"]),),
            generation=int(frame.get("generation", 0)),
            degraded=bool(frame.get("degraded", False)),
        )

    async def query_edges_confidence(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> List[dict]:
        """Typed estimates with intervals/provenance (served inline, uncoalesced)."""
        payload: dict = {
            "op": wire.OP_QUERY_EDGES,
            "edges": wire.edges_to_wire(edges),
            "confidence": True,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        frame = await self._request(payload)
        return list(frame["estimates"])

    async def ingest(self, edges: Sequence) -> Tuple[int, int]:
        """Send live updates (``allow_ingest`` servers only).

        Each edge is ``(source, target[, timestamp[, frequency]])``.
        Returns ``(edges_ingested, new_generation)``.
        """
        payload = {
            "op": wire.OP_INGEST,
            "edges": [list(edge) for edge in edges],
        }
        frame = await self._request(payload)
        return int(frame.get("ingested", 0)), int(frame.get("generation", 0))


async def connect(host: str, port: int) -> ServingClient:
    """Open a connection and complete the hello handshake."""
    reader, writer = await asyncio.open_connection(host, port)
    client = ServingClient(reader, writer)
    try:
        await client._start()
    except BaseException:
        writer.close()
        raise
    return client


class SyncServingClient:
    """Blocking facade over :class:`ServingClient` (private loop thread).

    Safe to call from multiple threads — every call round-trips through the
    client's event loop.  Also a context manager::

        with SyncServingClient("127.0.0.1", 8765) as client:
            print(client.query_edge("a", "b").value)
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serving-client", daemon=True
        )
        self._thread.start()
        try:
            self._client = self._call(connect(host, port))
        except BaseException:
            self._stop_loop()
            raise

    def _call(self, coroutine):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=self._timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    @property
    def hello(self) -> dict:
        return self._client.hello

    def ping(self) -> bool:
        return self._call(self._client.ping())

    def query_edges(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> WireResult:
        return self._call(self._client.query_edges(edges, deadline_ms))

    def query_edge(
        self, source: object, target: object, deadline_ms: Optional[float] = None
    ) -> WireResult:
        return self._call(self._client.query_edge(source, target, deadline_ms))

    def query_subgraph(
        self,
        edges: Sequence[EdgeKey],
        aggregate: str = "sum",
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        return self._call(self._client.query_subgraph(edges, aggregate, deadline_ms))

    def query_edges_confidence(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> List[dict]:
        return self._call(self._client.query_edges_confidence(edges, deadline_ms))

    def ingest(self, edges: Sequence) -> Tuple[int, int]:
        return self._call(self._client.ingest(edges))

    def close(self) -> None:
        if self._thread.is_alive():
            try:
                self._call(self._client.close())
            finally:
                self._stop_loop()

    def __enter__(self) -> "SyncServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

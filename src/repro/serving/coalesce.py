"""Cross-client batch coalescing: many in-flight point queries, one gather.

``BENCH_query.json`` shows the compiled plan answering a batch of 8 at ~27×
direct while batch-1 holds ~50× — per-*call* overhead, not kernel time,
bounds point-query throughput.  The serving tier exploits that: point
queries from *different* clients that are in flight at the same instant are
drained into one :class:`~repro.queries.plan.CompiledQueryPlan` gather and
the per-request slices are demultiplexed back to their futures
(:func:`~repro.queries.plan.demux_by_counts`), so concurrency buys batch
size instead of queueing delay.

:class:`CoalescingQueue` is the micro-batcher.  Requests enter through
:meth:`submit`; a single drain task wakes when work arrives, optionally
dallies ``max_delay_us`` to let concurrent requests pile on (skipped once
``max_batch`` keys are waiting — a full batch gains nothing by waiting),
answers one batch through the ``answer`` callable, and resolves each
request's future with its slice of the results plus the plan generation that
answered it.

Overload is **admission-controlled, not buffered**: when more than
``max_pending`` keys are already waiting, :meth:`submit` raises
:class:`AdmissionError` immediately and the server turns that into a typed
``retry_later`` response — memory stays bounded and latency stays honest
under any offered load.  Per-request deadlines are honoured at drain time:
a request whose deadline passed while queued gets
:class:`DeadlineExceededError` instead of a stale answer.

The ``answer`` callable may also return an *awaitable* of the same
``(values, generation)`` pair — the reader-pool path
(:class:`~repro.queries.parallel.ReaderPool`) answers batches off the event
loop, so the drain task dispatches the batch and keeps draining while the
pool computes, demuxing each batch's slices when its awaitable resolves.
``inflight_batches`` bounds how many dispatched-but-unanswered batches may
overlap; per-request ordering is untouched because demux happens per batch
against that batch's own counts.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Awaitable, Callable, List, Optional, Sequence, Set, Tuple, Union

from repro.graph.edge import EdgeKey
from repro.observability import metrics as _obs
from repro.queries.plan import demux_by_counts

#: Default micro-batching knobs: a 512-key gather amortizes call overhead to
#: noise, and 200 µs of dallying is invisible next to client RTTs while long
#: enough for concurrent requests to coalesce.
DEFAULT_MAX_BATCH = 512
DEFAULT_MAX_DELAY_US = 200
DEFAULT_MAX_PENDING = 4096

#: The answer callable: one compiled-plan gather over the coalesced keys,
#: returning the per-key estimates and the plan generation that served them.
#: May return the pair directly (answered on the loop) or an awaitable of it
#: (answered off-loop, e.g. by a reader pool).
AnswerResult = Tuple[Sequence[float], int]
AnswerFn = Callable[[List[EdgeKey]], Union[AnswerResult, Awaitable[AnswerResult]]]

_QUEUE_DEPTH = _obs.REGISTRY.gauge(
    "repro_serve_queue_depth", "Point-query keys waiting in the coalescing queue"
)
_BATCH_SIZE = _obs.REGISTRY.histogram(
    "repro_serve_batch_size",
    "Coalesced gather size (keys per compiled-plan batch)",
    bounds=_obs.BATCH_BUCKET_BOUNDS,
)
_ADMISSION_REJECTS = _obs.REGISTRY.counter(
    "repro_serve_admission_rejects_total",
    "Requests shed by coalescing-queue admission control",
)


class AdmissionError(Exception):
    """The coalescing queue is full; the caller should retry later."""


class DeadlineExceededError(Exception):
    """The request's deadline passed before a batch could answer it."""


class _Pending:
    __slots__ = ("keys", "future", "deadline")

    def __init__(
        self,
        keys: List[EdgeKey],
        future: "asyncio.Future[Tuple[List[float], int]]",
        deadline: Optional[float],
    ) -> None:
        self.keys = keys
        self.future = future
        self.deadline = deadline


class CoalescingQueue:
    """Micro-batcher funnelling concurrent point queries into one gather.

    Args:
        answer: synchronous callable answering one batch of keys (one
            compiled-plan gather); runs on the event loop, so it must be
            fast — which is the whole point of the compiled plan.
        max_batch: largest number of keys drained into one gather.
        max_delay_us: how long the drain task dallies for more requests
            before answering a non-full batch; ``0`` answers immediately.
        max_pending: admission-control bound on waiting keys; submissions
            beyond it raise :class:`AdmissionError` instead of queueing.
        inflight_batches: how many drained batches may be awaiting an
            asynchronous ``answer`` at once (the reader-pool overlap depth);
            synchronous answers are unaffected, the default keeps the old
            one-batch-at-a-time behaviour.
    """

    def __init__(
        self,
        answer: AnswerFn,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_us: int = DEFAULT_MAX_DELAY_US,
        max_pending: int = DEFAULT_MAX_PENDING,
        inflight_batches: int = 1,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be > 0, got {max_batch}")
        if max_delay_us < 0:
            raise ValueError(f"max_delay_us must be >= 0, got {max_delay_us}")
        if max_pending <= 0:
            raise ValueError(f"max_pending must be > 0, got {max_pending}")
        if inflight_batches <= 0:
            raise ValueError(f"inflight_batches must be > 0, got {inflight_batches}")
        self._answer = answer
        self.max_batch = max_batch
        self.max_delay_seconds = max_delay_us / 1_000_000.0
        self.max_pending = max_pending
        self.inflight_batches = inflight_batches
        self._pending: List[_Pending] = []
        self._pending_keys = 0
        self._wake = asyncio.Event()
        self._task: Optional["asyncio.Task[None]"] = None
        self._inflight: Optional[asyncio.Semaphore] = None
        self._answer_tasks: "Set[asyncio.Task[None]]" = set()
        self._closing = False
        # Always-on plain-int stats (the registry mirrors live alongside,
        # gated on the observability enable flag).
        self.submitted = 0
        self.rejected = 0
        self.expired = 0
        self.cancelled = 0
        self.batches = 0
        self.coalesced_keys = 0
        self.max_depth = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the drain task on the running event loop."""
        if self._task is None:
            self._inflight = asyncio.Semaphore(self.inflight_batches)
            self._task = asyncio.get_running_loop().create_task(self._drain_loop())

    async def stop(self) -> None:
        """Drain everything already admitted, then stop the drain task.

        New :meth:`submit` calls are rejected from the moment this is
        called; requests admitted before it still get real answers — the
        graceful-shutdown contract (including batches still in flight on an
        asynchronous answer path).
        """
        self._closing = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        if self._answer_tasks:
            await asyncio.gather(*tuple(self._answer_tasks), return_exceptions=True)

    @property
    def depth(self) -> int:
        """Keys currently waiting to be drained."""
        return self._pending_keys

    def stats(self) -> dict:
        """Always-on counter snapshot for ``server.stats()`` surfaces."""
        return {
            "depth": self._pending_keys,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "batches": self.batches,
            "coalesced_keys": self.coalesced_keys,
            "max_depth": self.max_depth,
            "mean_batch_size": self.coalesced_keys / self.batches if self.batches else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self, keys: Sequence[EdgeKey], deadline: Optional[float] = None
    ) -> Awaitable[Tuple[List[float], int]]:
        """Queue one request; returns an awaitable of ``(values, generation)``.

        Raises :class:`AdmissionError` *synchronously* when the queue is
        full or the server is draining — shed load never occupies memory.
        ``deadline`` is an absolute ``loop.time()`` instant.
        """
        if self._closing:
            raise AdmissionError("server is draining")
        if self._pending_keys + len(keys) > self.max_pending:
            self.rejected += 1
            _ADMISSION_REJECTS.inc()
            raise AdmissionError(
                f"{self._pending_keys} keys already pending (cap {self.max_pending})"
            )
        future: "asyncio.Future[Tuple[List[float], int]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(_Pending(list(keys), future, deadline))
        self._pending_keys += len(keys)
        self.submitted += 1
        if self._pending_keys > self.max_depth:
            self.max_depth = self._pending_keys
        if _obs._ENABLED:
            _QUEUE_DEPTH.set(float(self._pending_keys))
        self._wake.set()
        return future

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wake.clear()
                # Re-check under the cleared event: a submit between the
                # check above and clear() also set the event again.
                if not self._pending:
                    await self._wake.wait()
                continue
            if (
                self.max_delay_seconds
                and not self._closing
                and self._pending_keys < self.max_batch
            ):
                # Dally for concurrent requests; a full batch never waits.
                await asyncio.sleep(self.max_delay_seconds)
            # The permit bounds dispatched-but-unanswered async batches; a
            # synchronous answer returns it before the next loop iteration.
            assert self._inflight is not None
            await self._inflight.acquire()
            if not self._drain_one(loop.time()):
                self._inflight.release()

    def _take_batch(self, now: float) -> List[_Pending]:
        """Dequeue FIFO entries up to ``max_batch`` keys, dropping expired ones.

        Always takes at least one live entry, so a single request larger
        than ``max_batch`` still gets answered (as its own batch).

        Entries whose future was cancelled while queued — the requester's
        connection dropped before this drain — are counted and skipped, so
        a vanished client neither occupies gather capacity nor has an
        answer pushed into its closed write queue.
        """
        batch: List[_Pending] = []
        taken = 0
        while self._pending:
            entry = self._pending[0]
            if entry.future.done():
                self._pending.pop(0)
                self._pending_keys -= len(entry.keys)
                self.cancelled += 1
                continue
            if entry.deadline is not None and entry.deadline < now:
                self._pending.pop(0)
                self._pending_keys -= len(entry.keys)
                self.expired += 1
                if not entry.future.done():
                    entry.future.set_exception(
                        DeadlineExceededError("deadline passed while queued")
                    )
                continue
            if batch and taken + len(entry.keys) > self.max_batch:
                break
            self._pending.pop(0)
            self._pending_keys -= len(entry.keys)
            batch.append(entry)
            taken += len(entry.keys)
        return batch

    def _drain_one(self, now: float) -> bool:
        """Answer one batch; ``True`` means an async answer kept the permit."""
        batch = self._take_batch(now)
        if _obs._ENABLED:
            _QUEUE_DEPTH.set(float(self._pending_keys))
        if not batch:
            return False
        keys: List[EdgeKey] = []
        counts: List[int] = []
        for entry in batch:
            keys.extend(entry.keys)
            counts.append(len(entry.keys))
        self.batches += 1
        self.coalesced_keys += len(keys)
        if _obs._ENABLED:
            _BATCH_SIZE._observe(float(len(keys)))
        try:
            result = self._answer(keys)
        except Exception as exc:  # noqa: BLE001 - fanned out per request
            self._fan_out_error(batch, exc)
            return False
        if inspect.isawaitable(result):
            task = asyncio.get_running_loop().create_task(
                self._finish_async(batch, counts, result)
            )
            self._answer_tasks.add(task)
            task.add_done_callback(self._answer_tasks.discard)
            return True
        values, generation = result
        self._demux(batch, counts, values, generation)
        return False

    async def _finish_async(
        self,
        batch: List[_Pending],
        counts: List[int],
        awaitable: Awaitable[AnswerResult],
    ) -> None:
        """Resolve one dispatched batch when its off-loop answer lands."""
        try:
            values, generation = await awaitable
        except Exception as exc:  # noqa: BLE001 - fanned out per request
            self._fan_out_error(batch, exc)
            return
        finally:
            if self._inflight is not None:
                self._inflight.release()
        self._demux(batch, counts, values, generation)

    def _fan_out_error(self, batch: List[_Pending], exc: BaseException) -> None:
        for entry in batch:
            if entry.future.cancelled():
                self.cancelled += 1
            elif not entry.future.done():
                entry.future.set_exception(exc)

    def _demux(
        self,
        batch: List[_Pending],
        counts: List[int],
        values: Sequence[float],
        generation: int,
    ) -> None:
        """Resolve each request's slice; cancelled requesters are counted.

        A connection that dropped *after* its batch was dispatched still
        resolves here — its future is cancelled, so the result is discarded
        into the ``cancelled`` stat instead of raising into the write path
        of a closed connection.
        """
        for entry, slice_values in zip(batch, demux_by_counts(values, counts)):
            if entry.future.cancelled():
                self.cancelled += 1
            elif not entry.future.done():
                entry.future.set_result((slice_values, generation))

"""Cross-client batch coalescing: many in-flight point queries, one gather.

``BENCH_query.json`` shows the compiled plan answering a batch of 8 at ~27×
direct while batch-1 holds ~50× — per-*call* overhead, not kernel time,
bounds point-query throughput.  The serving tier exploits that: point
queries from *different* clients that are in flight at the same instant are
drained into one :class:`~repro.queries.plan.CompiledQueryPlan` gather and
the per-request slices are demultiplexed back to their futures
(:func:`~repro.queries.plan.demux_by_counts`), so concurrency buys batch
size instead of queueing delay.

:class:`CoalescingQueue` is the micro-batcher.  Requests enter through
:meth:`submit`; a single drain task wakes when work arrives, optionally
dallies ``max_delay_us`` to let concurrent requests pile on (skipped once
``max_batch`` keys are waiting — a full batch gains nothing by waiting),
answers one batch through the ``answer`` callable, and resolves each
request's future with its slice of the results plus the plan generation that
answered it.

Overload is **admission-controlled, not buffered**: when more than
``max_pending`` keys are already waiting, :meth:`submit` raises
:class:`AdmissionError` immediately and the server turns that into a typed
``retry_later`` response — memory stays bounded and latency stays honest
under any offered load.  Per-request deadlines are honoured at drain time:
a request whose deadline passed while queued gets
:class:`DeadlineExceededError` instead of a stale answer.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional, Sequence, Tuple

from repro.graph.edge import EdgeKey
from repro.observability import metrics as _obs
from repro.queries.plan import demux_by_counts

#: Default micro-batching knobs: a 512-key gather amortizes call overhead to
#: noise, and 200 µs of dallying is invisible next to client RTTs while long
#: enough for concurrent requests to coalesce.
DEFAULT_MAX_BATCH = 512
DEFAULT_MAX_DELAY_US = 200
DEFAULT_MAX_PENDING = 4096

#: The answer callable: one compiled-plan gather over the coalesced keys,
#: returning the per-key estimates and the plan generation that served them.
AnswerFn = Callable[[List[EdgeKey]], Tuple[Sequence[float], int]]

_QUEUE_DEPTH = _obs.REGISTRY.gauge(
    "repro_serve_queue_depth", "Point-query keys waiting in the coalescing queue"
)
_BATCH_SIZE = _obs.REGISTRY.histogram(
    "repro_serve_batch_size",
    "Coalesced gather size (keys per compiled-plan batch)",
    bounds=_obs.BATCH_BUCKET_BOUNDS,
)
_ADMISSION_REJECTS = _obs.REGISTRY.counter(
    "repro_serve_admission_rejects_total",
    "Requests shed by coalescing-queue admission control",
)


class AdmissionError(Exception):
    """The coalescing queue is full; the caller should retry later."""


class DeadlineExceededError(Exception):
    """The request's deadline passed before a batch could answer it."""


class _Pending:
    __slots__ = ("keys", "future", "deadline")

    def __init__(
        self,
        keys: List[EdgeKey],
        future: "asyncio.Future[Tuple[List[float], int]]",
        deadline: Optional[float],
    ) -> None:
        self.keys = keys
        self.future = future
        self.deadline = deadline


class CoalescingQueue:
    """Micro-batcher funnelling concurrent point queries into one gather.

    Args:
        answer: synchronous callable answering one batch of keys (one
            compiled-plan gather); runs on the event loop, so it must be
            fast — which is the whole point of the compiled plan.
        max_batch: largest number of keys drained into one gather.
        max_delay_us: how long the drain task dallies for more requests
            before answering a non-full batch; ``0`` answers immediately.
        max_pending: admission-control bound on waiting keys; submissions
            beyond it raise :class:`AdmissionError` instead of queueing.
    """

    def __init__(
        self,
        answer: AnswerFn,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_us: int = DEFAULT_MAX_DELAY_US,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be > 0, got {max_batch}")
        if max_delay_us < 0:
            raise ValueError(f"max_delay_us must be >= 0, got {max_delay_us}")
        if max_pending <= 0:
            raise ValueError(f"max_pending must be > 0, got {max_pending}")
        self._answer = answer
        self.max_batch = max_batch
        self.max_delay_seconds = max_delay_us / 1_000_000.0
        self.max_pending = max_pending
        self._pending: List[_Pending] = []
        self._pending_keys = 0
        self._wake = asyncio.Event()
        self._task: Optional["asyncio.Task[None]"] = None
        self._closing = False
        # Always-on plain-int stats (the registry mirrors live alongside,
        # gated on the observability enable flag).
        self.submitted = 0
        self.rejected = 0
        self.expired = 0
        self.batches = 0
        self.coalesced_keys = 0
        self.max_depth = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the drain task on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._drain_loop())

    async def stop(self) -> None:
        """Drain everything already admitted, then stop the drain task.

        New :meth:`submit` calls are rejected from the moment this is
        called; requests admitted before it still get real answers — the
        graceful-shutdown contract.
        """
        self._closing = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None

    @property
    def depth(self) -> int:
        """Keys currently waiting to be drained."""
        return self._pending_keys

    def stats(self) -> dict:
        """Always-on counter snapshot for ``server.stats()`` surfaces."""
        return {
            "depth": self._pending_keys,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "expired": self.expired,
            "batches": self.batches,
            "coalesced_keys": self.coalesced_keys,
            "max_depth": self.max_depth,
            "mean_batch_size": self.coalesced_keys / self.batches if self.batches else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self, keys: Sequence[EdgeKey], deadline: Optional[float] = None
    ) -> Awaitable[Tuple[List[float], int]]:
        """Queue one request; returns an awaitable of ``(values, generation)``.

        Raises :class:`AdmissionError` *synchronously* when the queue is
        full or the server is draining — shed load never occupies memory.
        ``deadline`` is an absolute ``loop.time()`` instant.
        """
        if self._closing:
            raise AdmissionError("server is draining")
        if self._pending_keys + len(keys) > self.max_pending:
            self.rejected += 1
            _ADMISSION_REJECTS.inc()
            raise AdmissionError(
                f"{self._pending_keys} keys already pending (cap {self.max_pending})"
            )
        future: "asyncio.Future[Tuple[List[float], int]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(_Pending(list(keys), future, deadline))
        self._pending_keys += len(keys)
        self.submitted += 1
        if self._pending_keys > self.max_depth:
            self.max_depth = self._pending_keys
        if _obs._ENABLED:
            _QUEUE_DEPTH.set(float(self._pending_keys))
        self._wake.set()
        return future

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wake.clear()
                # Re-check under the cleared event: a submit between the
                # check above and clear() also set the event again.
                if not self._pending:
                    await self._wake.wait()
                continue
            if (
                self.max_delay_seconds
                and not self._closing
                and self._pending_keys < self.max_batch
            ):
                # Dally for concurrent requests; a full batch never waits.
                await asyncio.sleep(self.max_delay_seconds)
            self._drain_one(loop.time())

    def _take_batch(self, now: float) -> List[_Pending]:
        """Dequeue FIFO entries up to ``max_batch`` keys, dropping expired ones.

        Always takes at least one live entry, so a single request larger
        than ``max_batch`` still gets answered (as its own batch).
        """
        batch: List[_Pending] = []
        taken = 0
        while self._pending:
            entry = self._pending[0]
            if entry.deadline is not None and entry.deadline < now:
                self._pending.pop(0)
                self._pending_keys -= len(entry.keys)
                self.expired += 1
                if not entry.future.done():
                    entry.future.set_exception(
                        DeadlineExceededError("deadline passed while queued")
                    )
                continue
            if batch and taken + len(entry.keys) > self.max_batch:
                break
            self._pending.pop(0)
            self._pending_keys -= len(entry.keys)
            batch.append(entry)
            taken += len(entry.keys)
        return batch

    def _drain_one(self, now: float) -> None:
        batch = self._take_batch(now)
        if _obs._ENABLED:
            _QUEUE_DEPTH.set(float(self._pending_keys))
        if not batch:
            return
        keys: List[EdgeKey] = []
        counts: List[int] = []
        for entry in batch:
            keys.extend(entry.keys)
            counts.append(len(entry.keys))
        self.batches += 1
        self.coalesced_keys += len(keys)
        if _obs._ENABLED:
            _BATCH_SIZE._observe(float(len(keys)))
        try:
            values, generation = self._answer(keys)
        except Exception as exc:  # noqa: BLE001 - fanned out per request
            for entry in batch:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            return
        for entry, slice_values in zip(batch, demux_by_counts(values, counts)):
            if not entry.future.done():
                entry.future.set_result((slice_values, generation))

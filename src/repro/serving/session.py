"""Sessions: monotonic-reads consistency over the serving wire.

Every server response carries the engine's ingest ``generation`` at answer
time.  A session wraps a client and *asserts monotonic reads*: once a
response at generation *g* has been observed, any later response at a
generation < *g* raises :class:`ConsistencyError`.

The server upholds the guarantee by construction — all backend access is
serialized on one event-loop thread and the coalescer is FIFO, so answers
observed over a single connection can never regress.  The session exists to
*detect* violations (a misbehaving proxy, a failover to a stale replica, a
future server bug) rather than to mask them, and to give callers a typed
place to read the generation watermark (:attr:`Session.generation_observed`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.edge import EdgeKey
from repro.serving.client import (
    RetryPolicy,
    ServingClient,
    SyncServingClient,
    WireResult,
)

__all__ = ["ConsistencyError", "Session", "SyncSession"]


class ConsistencyError(RuntimeError):
    """A response regressed the session's generation watermark."""


class _Watermark:
    """The shared monotonic-reads check (async and sync sessions)."""

    __slots__ = ("generation_observed",)

    def __init__(self) -> None:
        self.generation_observed = 0

    def observe(self, generation: int) -> None:
        if generation < self.generation_observed:
            raise ConsistencyError(
                f"monotonic reads violated: observed generation "
                f"{self.generation_observed}, then answered at {generation}"
            )
        self.generation_observed = generation


class Session(ServingClient):
    """An async client that enforces monotonic reads across its lifetime.

    Constructed from an already-connected client's streams via
    :meth:`adopt`, or with :func:`repro.serving.client.connect` followed by
    ``Session.adopt(client)``.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._watermark = _Watermark()

    @classmethod
    def adopt(cls, client: ServingClient) -> "Session":
        """Rebind a connected client as a session (takes over its streams)."""
        session = cls.__new__(cls)
        session.__dict__ = {}
        # Sessions share no state with the donor client beyond the streams
        # and reader task; moving the attributes over retires the donor.
        for name in (
            "_reader",
            "_writer",
            "_next_id",
            "_pending",
            "_reader_task",
            "hello",
            "_closed",
            "_user_closed",
            "_retry",
            "_rng",
            "_address",
            "retries",
            "reconnects",
        ):
            setattr(session, name, getattr(client, name))
        session._watermark = _Watermark()
        initial = client.hello.get("generation")
        if initial is not None:
            session._watermark.observe(int(initial))
        return session

    @property
    def generation_observed(self) -> int:
        """The highest generation any response in this session carried."""
        return self._watermark.generation_observed

    def _observe(self, result: WireResult) -> WireResult:
        self._watermark.observe(result.generation)
        return result

    async def _reopen(self) -> None:
        """Reconnect preserving the watermark: monotonic reads survive
        failover.  The fresh hello's generation is checked against the old
        watermark, so reconnecting to a *stale* server raises
        :class:`ConsistencyError` instead of silently serving old data."""
        await super()._reopen()
        initial = self.hello.get("generation")
        if initial is not None:
            self._watermark.observe(int(initial))

    async def query_edges(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> WireResult:
        return self._observe(await super().query_edges(edges, deadline_ms))

    async def query_subgraph(
        self,
        edges: Sequence[EdgeKey],
        aggregate: str = "sum",
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        return self._observe(
            await super().query_subgraph(edges, aggregate, deadline_ms)
        )

    async def ingest(self, edges: Sequence):
        ingested, generation = await super().ingest(edges)
        self._watermark.observe(generation)
        return ingested, generation


async def open_session(
    host: str, port: int, retry: Optional[RetryPolicy] = None
) -> Session:
    """Connect and wrap the connection in a monotonic-reads session."""
    from repro.serving.client import connect

    return Session.adopt(await connect(host, port, retry=retry))


class SyncSession:
    """Blocking session: a :class:`SyncServingClient` plus the watermark.

    The watermark lives on the session, not the connection — when the
    underlying client reconnects under its :class:`RetryPolicy`, every
    post-reconnect response is still checked against the generations this
    session already observed, so monotonic reads survive failover.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._client = SyncServingClient(host, port, timeout, retry=retry)
        self._watermark = _Watermark()
        initial = self._client.hello.get("generation")
        if initial is not None:
            self._watermark.observe(int(initial))

    @property
    def hello(self) -> dict:
        return self._client.hello

    @property
    def generation_observed(self) -> int:
        return self._watermark.generation_observed

    @property
    def retries(self) -> int:
        return self._client.retries

    @property
    def reconnects(self) -> int:
        return self._client.reconnects

    def query_edges(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> WireResult:
        result = self._client.query_edges(edges, deadline_ms)
        self._watermark.observe(result.generation)
        return result

    def query_edge(
        self, source: object, target: object, deadline_ms: Optional[float] = None
    ) -> WireResult:
        return self.query_edges([(source, target)], deadline_ms)

    def query_subgraph(
        self,
        edges: Sequence[EdgeKey],
        aggregate: str = "sum",
        deadline_ms: Optional[float] = None,
    ) -> WireResult:
        result = self._client.query_subgraph(edges, aggregate, deadline_ms)
        self._watermark.observe(result.generation)
        return result

    def query_edges_confidence(
        self, edges: Sequence[EdgeKey], deadline_ms: Optional[float] = None
    ) -> List[dict]:
        return self._client.query_edges_confidence(edges, deadline_ms)

    def ingest(self, edges: Sequence):
        ingested, generation = self._client.ingest(edges)
        self._watermark.observe(generation)
        return ingested, generation

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "SyncSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

"""Columnar blocks of stream elements for vectorized ingestion.

Per-element ingestion pays Python interpreter overhead for every edge: a
router dictionary lookup, a tuple hash, and a per-row modular hash.  The
batched hot path instead moves blocks of edges through the pipeline as
parallel numpy columns — sources, targets and frequencies — so that key
canonicalization (:func:`~repro.sketches.hashing.pair_keys_to_uint64`),
routing (:meth:`~repro.core.router.VertexRouter.route_batch`) and counter
updates (:meth:`~repro.sketches.countmin.CountMinSketch.update_batch`) each
run as a handful of array kernels per batch.

Integer vertex labels (the common case for every bundled generator) ride the
fully vectorized path; arbitrary hashable labels fall back to per-element
canonicalization but still amortize routing and counter updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.graph.edge import StreamEdge
from repro.sketches.hashing import key_to_uint64, pair_keys_to_uint64


def label_column(values: List) -> np.ndarray:
    """Build a label column: an int64 array when possible, object otherwise.

    Only genuine integers are columnarized — floats, bools and strings keep
    their identity in an object array so hashing semantics never change.
    (A bare ``np.asarray`` would promote mixed int/str labels to strings and
    silently change routing.)
    """
    if values and all(
        isinstance(v, (int, np.integer)) and not isinstance(v, bool) for v in values
    ):
        try:
            return np.asarray(values, dtype=np.int64)
        except OverflowError:
            pass
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


#: Backwards-compatible internal alias.
_column = label_column


@dataclass(frozen=True)
class EdgeBatch:
    """A block of stream elements stored column-wise.

    Attributes:
        sources: source labels; ``int64`` array for integer-labelled streams,
            ``object`` array otherwise.
        targets: target labels, same representation rules as ``sources``.
        frequencies: per-element frequencies as ``float64``.
        timestamps: per-element time-stamps as ``float64``.
    """

    sources: np.ndarray
    targets: np.ndarray
    frequencies: np.ndarray
    timestamps: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.sources)
        if not (len(self.targets) == len(self.frequencies) == len(self.timestamps) == n):
            raise ValueError("all EdgeBatch columns must have the same length")

    @classmethod
    def from_edges(cls, edges: Sequence[StreamEdge]) -> "EdgeBatch":
        """Build a batch from stream elements (columnarizing the labels)."""
        sources = _column([e.source for e in edges])
        targets = _column([e.target for e in edges])
        frequencies = np.asarray([e.frequency for e in edges], dtype=np.float64)
        timestamps = np.asarray([e.timestamp for e in edges], dtype=np.float64)
        return cls(sources, targets, frequencies, timestamps)

    @classmethod
    def from_edge_keys(cls, keys: Sequence) -> "EdgeBatch":
        """Build a zero-frequency batch from bare ``(source, target)`` keys.

        Query paths use this to canonicalize edge keys through the same
        columnar pipeline as ingestion, so batched estimates hash
        bit-identically to per-edge lookups.
        """
        return cls.from_arrays(
            sources=_column([k[0] for k in keys]),
            targets=_column([k[1] for k in keys]),
            frequencies=np.zeros(len(keys), dtype=np.float64),
        )

    @classmethod
    def from_arrays(
        cls,
        sources: np.ndarray,
        targets: np.ndarray,
        frequencies: np.ndarray | None = None,
        timestamps: np.ndarray | None = None,
    ) -> "EdgeBatch":
        """Build a batch directly from parallel arrays (generator hot path)."""
        sources = np.asarray(sources)
        targets = np.asarray(targets)
        n = len(sources)
        if frequencies is None:
            frequencies = np.ones(n, dtype=np.float64)
        if timestamps is None:
            timestamps = np.arange(n, dtype=np.float64)
        return cls(
            sources,
            targets,
            np.asarray(frequencies, dtype=np.float64),
            np.asarray(timestamps, dtype=np.float64),
        )

    def __len__(self) -> int:
        return len(self.sources)

    def slice(self, start: int, end: int) -> "EdgeBatch":
        """A zero-copy sub-batch of elements ``[start, end)`` (numpy views)."""
        return EdgeBatch(
            self.sources[start:end],
            self.targets[start:end],
            self.frequencies[start:end],
            self.timestamps[start:end],
        )

    @property
    def is_integer_labelled(self) -> bool:
        """Whether both label columns are integer arrays (vectorizable)."""
        return self.sources.dtype.kind in "iu" and self.targets.dtype.kind in "iu"

    def hashed_keys(self) -> np.ndarray:
        """Canonical uint64 edge keys, bit-identical to per-edge hashing.

        Integer labels use the vectorized splitmix64 pipeline; other labels
        fall back to :func:`~repro.sketches.hashing.key_to_uint64` per edge.
        """
        if self.is_integer_labelled:
            return pair_keys_to_uint64(self.sources, self.targets)
        return np.fromiter(
            (key_to_uint64((s, t)) for s, t in zip(self.sources, self.targets)),
            dtype=np.uint64,
            count=len(self),
        )

    def iter_edges(self) -> Iterator[StreamEdge]:
        """Re-materialize the batch as stream elements (tests, fallbacks)."""
        for s, t, ts, f in zip(self.sources, self.targets, self.timestamps, self.frequencies):
            source = int(s) if isinstance(s, np.integer) else s
            target = int(t) if isinstance(t, np.integer) else t
            yield StreamEdge(source, target, float(ts), float(f))

    def total_frequency(self) -> float:
        """Total frequency mass carried by the batch."""
        return float(self.frequencies.sum())

"""Sampling primitives.

The paper draws on three samplers:

* **Reservoir sampling** [29] to obtain the data sample used by the sketch
  partitioner (Section 6.3) and per-window samples (Section 5).
* **Uniform sampling** of distinct edges to generate edge query sets.
* **Zipf-based sampling** of edges, parameterized by a skewness factor
  ``alpha``, to generate query-workload samples and skewed query sets
  (Section 6.4).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.edge import EdgeKey, StreamEdge
from repro.graph.stream import GraphStream
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_positive, require_positive_int


def reservoir_sample(
    stream: GraphStream, size: int, seed: SeedLike = None, name: str | None = None
) -> GraphStream:
    """Uniform sample of ``size`` stream elements using reservoir sampling.

    Processes the stream in a single pass, exactly as a streaming system
    would; if the stream has fewer than ``size`` elements, all of them are
    returned.
    """
    require_positive_int(size, "size")
    rng = resolve_rng(seed)
    reservoir: List[StreamEdge] = []
    for index, edge in enumerate(stream):
        if index < size:
            reservoir.append(edge)
        else:
            slot = int(rng.integers(0, index + 1))
            if slot < size:
                reservoir[slot] = edge
    sample_name = name if name is not None else f"{stream.name}-reservoir{size}"
    return GraphStream(reservoir, name=sample_name)


def uniform_edge_sample(
    stream: GraphStream, size: int, seed: SeedLike = None, distinct: bool = True
) -> List[EdgeKey]:
    """Sample ``size`` edge keys uniformly.

    Args:
        stream: the stream to sample from.
        size: number of edge keys to draw.
        seed: RNG seed.
        distinct: if ``True`` (default) draw uniformly from the set of
            distinct edges — this is how the paper generates edge query sets,
            which makes low-frequency edges as likely to be queried as heavy
            ones.  If ``False`` draw uniformly from stream *elements*, which
            biases toward frequent edges.
    """
    require_positive_int(size, "size")
    rng = resolve_rng(seed)
    if distinct:
        population: Sequence[EdgeKey] = sorted(stream.distinct_edges())
    else:
        population = [e.key for e in stream]
    if not population:
        raise ValueError("cannot sample edges from an empty stream")
    indices = rng.integers(0, len(population), size=size)
    return [population[int(i)] for i in indices]


def zipf_rank_probabilities(count: int, alpha: float) -> np.ndarray:
    """Normalized Zipf probabilities ``p_r ∝ r^-alpha`` for ranks ``1..count``."""
    require_positive_int(count, "count")
    require_positive(alpha, "alpha")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def zipf_edge_sample(
    stream: GraphStream,
    size: int,
    alpha: float,
    seed: SeedLike = None,
    by_frequency_rank: bool = True,
) -> List[EdgeKey]:
    """Zipf-skewed sample of edge keys (with replacement).

    Edges are ranked (by descending exact frequency when
    ``by_frequency_rank`` is ``True``, otherwise in an arbitrary but
    deterministic order) and then drawn with probability proportional to
    ``rank^-alpha``.  Larger ``alpha`` concentrates the sample on the head of
    the ranking, mimicking the skewed query workloads of Section 6.4.
    """
    require_positive_int(size, "size")
    require_positive(alpha, "alpha")
    rng = resolve_rng(seed)
    frequencies = stream.edge_frequencies()
    if not frequencies:
        raise ValueError("cannot sample edges from an empty stream")
    if by_frequency_rank:
        ranked = sorted(frequencies.items(), key=lambda item: (-item[1], repr(item[0])))
    else:
        ranked = sorted(frequencies.items(), key=lambda item: repr(item[0]))
    keys = [key for key, _freq in ranked]
    probabilities = zipf_rank_probabilities(len(keys), alpha)
    chosen = rng.choice(len(keys), size=size, replace=True, p=probabilities)
    return [keys[int(i)] for i in chosen]


def zipf_workload_stream(
    stream: GraphStream,
    size: int,
    alpha: float,
    seed: SeedLike = None,
    name: str | None = None,
) -> GraphStream:
    """A query-workload *sample stream* drawn by Zipf sampling.

    The paper's workload sample is a bag of edges (Section 6.4); representing
    it as a :class:`GraphStream` lets the partitioner reuse the same vertex
    statistics machinery to derive the relative vertex weights ``w̃(n)``.
    """
    keys = zipf_edge_sample(stream, size, alpha, seed=seed)
    workload_name = name if name is not None else f"{stream.name}-workload-a{alpha}"
    return GraphStream.from_pairs(keys, name=workload_name)

"""Columnar vertex-level statistics used by the sketch partitioner.

The partitioning algorithms never see true edge frequencies.  They work from a
small data sample and use, per source vertex ``m``:

* the estimated relative vertex frequency ``f̃_v(m)`` (Equation 2),
* the estimated out degree ``d̃(m)`` (Equation 3),
* the derived average outgoing edge frequency ``f̃_v(m) / d̃(m)``.

:class:`VertexStatistics` stores these **columnar**: vertices are interned
once into an id column with parallel ``float64`` frequency/degree arrays.
Every derived statistic the offline build path needs — sort keys, prefix sums,
scaling, extrapolation — is then an array kernel instead of a per-vertex dict
walk.  Scalar accessors (:meth:`~VertexStatistics.frequency`,
:meth:`~VertexStatistics.degree`) remain for point lookups and for the scalar
reference partitioner the equivalence tests compare against.

:func:`variance_ratio` computes the σG/σV statistic of Section 6.1, which the
paper uses to demonstrate local similarity (per-vertex edge-frequency variance
is much smaller than global variance).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.graph.stream import GraphStream


def _intern_labels(labels: Sequence[Hashable]) -> Optional[np.ndarray]:
    """``int64`` array for a genuinely integer label space, else ``None``.

    Mirrors the router's fast-path rule: booleans and mixed label spaces fall
    back to dictionary lookups.
    """
    for label in labels:
        if isinstance(label, bool) or not isinstance(label, (int, np.integer)):
            return None
    try:
        return np.asarray(labels, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return None


class VertexStatistics:
    """Per-source-vertex statistics extracted from a data sample, columnar.

    The canonical representation is three parallel columns over the interned
    vertex order: the vertex ids, ``f̃_v`` and ``d̃``.  The legacy mapping views
    (:attr:`vertex_frequency`, :attr:`out_degree`) are materialized lazily and
    cached, so scalar consumers pay for a dictionary only if they ask for one.

    Args:
        vertex_frequency: mapping ``m -> f̃_v(m)`` (sampled frequency mass of
            edges emanating from ``m``).
        out_degree: mapping ``m -> d̃(m)`` (distinct sampled out-edges; may be
            fractional after :meth:`scaled` / :meth:`extrapolated`).
        total_frequency: total frequency mass of the sample.
    """

    __slots__ = (
        "total_frequency",
        "_ids",
        "_freq",
        "_deg",
        "_int_ids",
        "_int_sorter",
        "_index",
        "_freq_map",
        "_deg_map",
    )

    def __init__(
        self,
        vertex_frequency: Mapping[Hashable, float],
        out_degree: Mapping[Hashable, float],
        total_frequency: float = 0.0,
    ) -> None:
        ids: List[Hashable] = list(vertex_frequency.keys())
        extras = [v for v in out_degree.keys() if v not in vertex_frequency]
        if extras:
            # Degenerate hand-built input: every vertex must have a frequency
            # entry so the canonical columns stay parallel.
            ids.extend(extras)
        freq = np.fromiter(
            (vertex_frequency.get(v, 0.0) for v in ids), dtype=np.float64, count=len(ids)
        )
        deg = np.fromiter(
            (out_degree.get(v, 0.0) for v in ids), dtype=np.float64, count=len(ids)
        )
        self._init_columns(ids, freq, deg, float(total_frequency))

    def _init_columns(
        self,
        ids: List[Hashable],
        frequencies: np.ndarray,
        degrees: np.ndarray,
        total_frequency: float,
    ) -> None:
        self._ids = ids
        self._freq = frequencies
        self._deg = degrees
        self.total_frequency = total_frequency
        self._int_ids = _intern_labels(ids)
        self._int_sorter: Optional[np.ndarray] = None
        self._index: Optional[Dict[Hashable, int]] = None
        self._freq_map: Optional[Dict[Hashable, float]] = None
        self._deg_map: Optional[Dict[Hashable, float]] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_columns(
        cls,
        ids: Sequence[Hashable],
        frequencies: np.ndarray,
        degrees: np.ndarray,
        total_frequency: float,
    ) -> "VertexStatistics":
        """Build directly from parallel columns (the vectorized fast path)."""
        if not (len(ids) == len(frequencies) == len(degrees)):
            raise ValueError("ids, frequencies and degrees must be parallel columns")
        stats = cls.__new__(cls)
        stats._init_columns(
            list(ids),
            np.asarray(frequencies, dtype=np.float64),
            np.asarray(degrees, dtype=np.float64),
            float(total_frequency),
        )
        return stats

    def _derived(
        self,
        ids: List[Hashable],
        frequencies: np.ndarray,
        degrees: np.ndarray,
        total_frequency: float,
        int_ids: Optional[np.ndarray],
    ) -> "VertexStatistics":
        """Derived-copy constructor that reuses the already-known interning.

        ``scaled``/``extrapolated``/``restricted_to`` preserve (a subset of)
        the id column, so re-running the per-label ``_intern_labels`` walk
        would be a wasted O(n) Python pass on the build hot path.
        """
        stats = self.__class__.__new__(self.__class__)
        stats._ids = ids
        stats._freq = frequencies
        stats._deg = degrees
        stats.total_frequency = total_frequency
        stats._int_ids = int_ids
        stats._int_sorter = None
        stats._index = None
        stats._freq_map = None
        stats._deg_map = None
        return stats

    @classmethod
    def from_stream(cls, sample: GraphStream) -> "VertexStatistics":
        """Compute statistics from a (sampled) graph stream."""
        return cls(
            vertex_frequency=sample.vertex_frequencies(),
            out_degree=sample.out_degrees(),
            total_frequency=sample.total_frequency(),
        )

    @classmethod
    def from_arrays(
        cls,
        sources: np.ndarray,
        targets: np.ndarray,
        frequencies: Optional[np.ndarray] = None,
    ) -> "VertexStatistics":
        """Fully vectorized census over integer source/target columns.

        Equivalent to :meth:`from_stream` on the materialized stream, without
        ever constructing per-element Python objects: vertex frequencies come
        from one ``np.unique`` + ``np.bincount`` pass, distinct out-degrees
        from one lexsort over the ``(source, target)`` pairs.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have the same length")
        if frequencies is None:
            freqs = np.ones(len(sources), dtype=np.float64)
        else:
            freqs = np.asarray(frequencies, dtype=np.float64)
            if freqs.shape != sources.shape:
                raise ValueError("frequencies must align with sources")
        if len(sources) == 0:
            return cls.from_columns(
                [], np.zeros(0), np.zeros(0), 0.0
            )
        unique_sources, inverse = np.unique(sources, return_inverse=True)
        vertex_freq = np.bincount(inverse, weights=freqs, minlength=len(unique_sources))

        # Distinct (source, target) pairs via one lexsort; the first element
        # of every run of equal pairs marks one distinct out-edge.
        order = np.lexsort((targets, sources))
        s_sorted = sources[order]
        t_sorted = targets[order]
        first = np.empty(len(order), dtype=bool)
        first[0] = True
        np.logical_or(
            s_sorted[1:] != s_sorted[:-1], t_sorted[1:] != t_sorted[:-1], out=first[1:]
        )
        distinct_sources = s_sorted[first]
        degree = np.bincount(
            np.searchsorted(unique_sources, distinct_sources),
            minlength=len(unique_sources),
        ).astype(np.float64)

        return cls.from_columns(
            unique_sources.tolist(),
            vertex_freq,
            degree,
            float(freqs.sum()),
        )

    # ------------------------------------------------------------------ #
    # Columnar accessors (the build path)
    # ------------------------------------------------------------------ #
    @property
    def ids(self) -> List[Hashable]:
        """The interned vertex labels, in canonical column order."""
        return self._ids

    @property
    def frequencies(self) -> np.ndarray:
        """``f̃_v`` column, parallel to :attr:`ids` (read-only by convention)."""
        return self._freq

    @property
    def degrees(self) -> np.ndarray:
        """``d̃`` column, parallel to :attr:`ids` (read-only by convention)."""
        return self._deg

    @property
    def int_ids(self) -> Optional[np.ndarray]:
        """``int64`` id column when the label space is pure integers, else ``None``."""
        return self._int_ids

    def average_frequencies(self) -> np.ndarray:
        """``f̃_v / d̃`` column; 0.0 where the sampled degree is zero."""
        with np.errstate(divide="ignore", invalid="ignore"):
            avg = np.where(self._deg > 0, self._freq / self._deg, 0.0)
        return avg

    def indices_of(self, vertices: Sequence[Hashable]) -> np.ndarray:
        """Column positions of ``vertices`` (-1 for labels absent from the sample)."""
        if self._int_ids is not None and len(self._int_ids):
            try:
                arr = np.asarray(vertices)
            except ValueError:
                arr = None  # ragged label sequence; use the dict path
            if arr is not None and arr.ndim == 1 and arr.dtype.kind in "iu" and arr.dtype != np.uint64:
                arr = arr.astype(np.int64, copy=False)
                if self._int_sorter is None:
                    self._int_sorter = np.argsort(self._int_ids, kind="stable")
                sorter = self._int_sorter
                sorted_ids = self._int_ids[sorter]
                positions = np.searchsorted(sorted_ids, arr)
                clipped = np.minimum(positions, len(sorted_ids) - 1)
                found = sorted_ids[clipped] == arr
                return np.where(found, sorter[clipped], -1).astype(np.int64)
        index = self._vertex_index()
        return np.fromiter(
            (index.get(v, -1) for v in vertices), dtype=np.int64, count=len(vertices)
        )

    def columns_for(self, vertices: Sequence[Hashable]) -> Tuple[np.ndarray, np.ndarray]:
        """``(frequencies, degrees)`` gathered for an arbitrary vertex sequence.

        Labels absent from the sample contribute zeros, matching the scalar
        accessors' defaults.
        """
        if len(self._ids) == 0:
            zeros = np.zeros(len(vertices), dtype=np.float64)
            return zeros, zeros.copy()
        positions = self.indices_of(vertices)
        present = positions >= 0
        freq = np.where(present, self._freq[np.maximum(positions, 0)], 0.0)
        deg = np.where(present, self._deg[np.maximum(positions, 0)], 0.0)
        return freq, deg

    def frequency_sum(self, vertices: Sequence[Hashable]) -> float:
        """``sum_m f̃_v(m)`` over a vertex sequence, vectorized."""
        if not len(vertices):
            return 0.0
        freq, _deg = self.columns_for(vertices)
        return float(freq.sum())

    # ------------------------------------------------------------------ #
    # Scalar / mapping compatibility
    # ------------------------------------------------------------------ #
    def _vertex_index(self) -> Dict[Hashable, int]:
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self._ids)}
        return self._index

    @property
    def vertex_frequency(self) -> Dict[Hashable, float]:
        """``f̃_v`` as a mapping (lazily materialized and cached)."""
        if self._freq_map is None:
            self._freq_map = dict(zip(self._ids, self._freq.tolist()))
        return self._freq_map

    @property
    def out_degree(self) -> Dict[Hashable, float]:
        """``d̃`` as a mapping (lazily materialized and cached)."""
        if self._deg_map is None:
            self._deg_map = dict(zip(self._ids, self._deg.tolist()))
        return self._deg_map

    def vertices(self) -> List[Hashable]:
        """The source vertices covered by the sample."""
        return list(self._ids)

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._vertex_index()

    def __len__(self) -> int:
        return len(self._ids)

    def frequency(self, vertex: Hashable) -> float:
        """``f̃_v(vertex)``; 0 for vertices absent from the sample."""
        return self.vertex_frequency.get(vertex, 0.0)

    def degree(self, vertex: Hashable) -> float:
        """``d̃(vertex)``; 0 for vertices absent from the sample."""
        return self.out_degree.get(vertex, 0)

    def average_edge_frequency(self, vertex: Hashable) -> float:
        """``f̃_v(m) / d̃(m)``, the estimated mean frequency of ``m``'s out-edges.

        Vertices with zero sampled out-degree have undefined average frequency;
        this returns 0.0 for them, which routes them toward the cheap end of
        the sorted order.
        """
        degree = self.degree(vertex)
        if degree <= 0:
            return 0.0
        return self.frequency(vertex) / degree

    # ------------------------------------------------------------------ #
    # Derived statistics (array kernels)
    # ------------------------------------------------------------------ #
    def restricted_to(self, vertices: Iterable[Hashable]) -> "VertexStatistics":
        """Statistics restricted to a subset of vertices (used by tree splits)."""
        vertex_set = set(vertices)
        mask = np.fromiter(
            (v in vertex_set for v in self._ids), dtype=bool, count=len(self._ids)
        )
        kept_ids = [v for v, keep in zip(self._ids, mask) if keep]
        freq = self._freq[mask]
        return self._derived(
            kept_ids,
            freq,
            self._deg[mask],
            float(freq.sum()),
            self._int_ids[mask] if self._int_ids is not None else None,
        )

    def scaled(self, factor: float) -> "VertexStatistics":
        """Statistics with both frequencies and degrees multiplied by ``factor``.

        Linear degree scaling over-estimates the true out-degree of vertices
        whose edges are heavy (every occurrence of the same edge is counted
        again); prefer :meth:`extrapolated` when the sample fraction is known.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        return self._derived(
            self._ids,
            self._freq * factor,
            self._deg * factor,
            self.total_frequency * factor,
            self._int_ids,
        )

    def extrapolated(self, sample_fraction: float) -> "VertexStatistics":
        """Statistics extrapolated from a ``sample_fraction`` element sample.

        The split objectives (Equations 9 and 11) are scale-invariant, but the
        partitioning-termination criterion of Theorem 1 and the width
        shrinking of criterion-2 leaves compare ``sum_m d̃(m)`` against
        absolute sketch widths, so the sample counts must be extrapolated to
        stream scale:

        * vertex frequencies scale by ``1 / p`` (unbiased for element
          sampling);
        * out-degrees use a capture-probability correction: an edge of true
          frequency ``f`` is present in the sample with probability
          ``1 - (1 - p)^f``, so with ``a = f̃_v / d̃`` the observed average
          per-edge sample count, the true degree is estimated as
          ``d̃ / (1 - (1 - p)^(a / p))``.  Heavy-edge vertices keep their
          observed degree (all of their edges were seen) while
          frequency-one vertices scale by ``~1/p``.
        """
        if not 0 < sample_fraction <= 1:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        p = sample_fraction
        if p == 1.0:
            return self
        scale = 1.0 / p
        observed = self._deg
        with np.errstate(divide="ignore", invalid="ignore"):
            average_sample_count = np.maximum(
                1.0, np.where(observed > 0, self._freq / observed, 1.0)
            )
        estimated_true_freq = average_sample_count / p
        capture_probability = 1.0 - (1.0 - p) ** estimated_true_freq
        degrees = np.where(
            observed > 0, observed / np.maximum(capture_probability, p), 0.0
        )
        return self._derived(
            self._ids,
            self._freq * scale,
            degrees,
            self.total_frequency * scale,
            self._int_ids,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VertexStatistics(vertices={len(self._ids)}, "
            f"N={self.total_frequency:.1f})"
        )


def _group_codes(labels: Sequence[Hashable]) -> np.ndarray:
    """Dense group codes for a label sequence, vectorized where possible."""
    try:
        arr = np.asarray(labels)
    except ValueError:
        arr = None  # ragged label sequence (e.g. mixed-arity tuples)
    if arr is not None and arr.ndim == 1 and arr.dtype.kind in "iufUS":
        _unique, inverse = np.unique(arr, return_inverse=True)
        return inverse
    codes: Dict[Hashable, int] = {}
    return np.fromiter(
        (codes.setdefault(label, len(codes)) for label in labels),
        dtype=np.int64,
        count=len(labels),
    )


def variance_ratio(stream: GraphStream) -> float:
    """Compute σG / σV for a stream (Section 6.1).

    σG is the variance of the exact frequencies of all distinct edges.  σV is
    the average, over source vertices with at least one out-edge, of the
    variance of the frequencies of that vertex's out-edges (single-edge
    vertices contribute zero variance).  A ratio well above 1 indicates the
    local-similarity property gSketch exploits.

    Grouping is one ``np.unique`` pass over the source column plus two
    ``np.bincount`` reductions (the classic two-pass variance), replacing the
    per-vertex Python list build and the per-vertex ``np.var`` calls.

    Raises:
        ValueError: if the stream has no edges.
    """
    frequencies = stream.edge_frequencies()
    if not frequencies:
        raise ValueError("cannot compute a variance ratio on an empty stream")
    values = np.fromiter(
        frequencies.values(), dtype=np.float64, count=len(frequencies)
    )
    global_variance = float(values.var())

    codes = _group_codes([source for source, _target in frequencies.keys()])
    counts = np.bincount(codes).astype(np.float64)
    sums = np.bincount(codes, weights=values)
    means = sums / counts
    squared_deviations = np.bincount(codes, weights=(values - means[codes]) ** 2)
    local_variances = squared_deviations / counts
    average_local_variance = float(local_variances.mean())

    if average_local_variance == 0.0:
        return float("inf") if global_variance > 0 else 1.0
    return global_variance / average_local_variance


def frequency_skew_summary(stream: GraphStream) -> Tuple[float, float, float]:
    """Return ``(mean, p99, max)`` of distinct-edge frequencies.

    A convenience diagnostic used by dataset tests to verify that generated
    streams are heavy-tailed (the global-heterogeneity property of
    Section 3.3).
    """
    frequencies = stream.edge_frequencies()
    if not frequencies:
        raise ValueError("cannot summarize an empty stream")
    values = np.fromiter(
        frequencies.values(), dtype=np.float64, count=len(frequencies)
    )
    return float(values.mean()), float(np.percentile(values, 99)), float(values.max())

"""Vertex-level statistics used by the sketch partitioner.

The partitioning algorithms never see true edge frequencies.  They work from a
small data sample and use, per source vertex ``m``:

* the estimated relative vertex frequency ``f̃_v(m)`` (Equation 2),
* the estimated out degree ``d̃(m)`` (Equation 3),
* the derived average outgoing edge frequency ``f̃_v(m) / d̃(m)``.

:func:`variance_ratio` computes the σG/σV statistic of Section 6.1, which the
paper uses to demonstrate local similarity (per-vertex edge-frequency variance
is much smaller than global variance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

import numpy as np

from repro.graph.stream import GraphStream


@dataclass(frozen=True)
class VertexStatistics:
    """Per-source-vertex statistics extracted from a data sample.

    Attributes:
        vertex_frequency: ``f̃_v(m)``, total sampled frequency of edges
            emanating from ``m``.
        out_degree: ``d̃(m)``, number of distinct sampled out-edges of ``m``
            (may be fractional after :meth:`scaled`).
        total_frequency: total frequency mass of the sample.
    """

    vertex_frequency: Mapping[Hashable, float]
    out_degree: Mapping[Hashable, float]
    total_frequency: float = field(default=0.0)

    @classmethod
    def from_stream(cls, sample: GraphStream) -> "VertexStatistics":
        """Compute statistics from a (sampled) graph stream."""
        return cls(
            vertex_frequency=sample.vertex_frequencies(),
            out_degree=sample.out_degrees(),
            total_frequency=sample.total_frequency(),
        )

    def vertices(self) -> List[Hashable]:
        """The source vertices covered by the sample."""
        return list(self.vertex_frequency.keys())

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self.vertex_frequency

    def __len__(self) -> int:
        return len(self.vertex_frequency)

    def frequency(self, vertex: Hashable) -> float:
        """``f̃_v(vertex)``; 0 for vertices absent from the sample."""
        return self.vertex_frequency.get(vertex, 0.0)

    def degree(self, vertex: Hashable) -> float:
        """``d̃(vertex)``; 0 for vertices absent from the sample."""
        return self.out_degree.get(vertex, 0)

    def average_edge_frequency(self, vertex: Hashable) -> float:
        """``f̃_v(m) / d̃(m)``, the estimated mean frequency of ``m``'s out-edges.

        Vertices with zero sampled out-degree have undefined average frequency;
        this returns 0.0 for them, which routes them toward the cheap end of
        the sorted order.
        """
        degree = self.degree(vertex)
        if degree <= 0:
            return 0.0
        return self.frequency(vertex) / degree

    def restricted_to(self, vertices: Iterable[Hashable]) -> "VertexStatistics":
        """Statistics restricted to a subset of vertices (used by tree splits)."""
        vertex_set = set(vertices)
        freq = {v: f for v, f in self.vertex_frequency.items() if v in vertex_set}
        deg = {v: d for v, d in self.out_degree.items() if v in vertex_set}
        return VertexStatistics(
            vertex_frequency=freq,
            out_degree=deg,
            total_frequency=float(sum(freq.values())),
        )

    def scaled(self, factor: float) -> "VertexStatistics":
        """Statistics with both frequencies and degrees multiplied by ``factor``.

        Linear degree scaling over-estimates the true out-degree of vertices
        whose edges are heavy (every occurrence of the same edge is counted
        again); prefer :meth:`extrapolated` when the sample fraction is known.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        return VertexStatistics(
            vertex_frequency={v: f * factor for v, f in self.vertex_frequency.items()},
            out_degree={v: d * factor for v, d in self.out_degree.items()},
            total_frequency=self.total_frequency * factor,
        )

    def extrapolated(self, sample_fraction: float) -> "VertexStatistics":
        """Statistics extrapolated from a ``sample_fraction`` element sample.

        The split objectives (Equations 9 and 11) are scale-invariant, but the
        partitioning-termination criterion of Theorem 1 and the width
        shrinking of criterion-2 leaves compare ``sum_m d̃(m)`` against
        absolute sketch widths, so the sample counts must be extrapolated to
        stream scale:

        * vertex frequencies scale by ``1 / p`` (unbiased for element
          sampling);
        * out-degrees use a capture-probability correction: an edge of true
          frequency ``f`` is present in the sample with probability
          ``1 - (1 - p)^f``, so with ``a = f̃_v / d̃`` the observed average
          per-edge sample count, the true degree is estimated as
          ``d̃ / (1 - (1 - p)^(a / p))``.  Heavy-edge vertices keep their
          observed degree (all of their edges were seen) while
          frequency-one vertices scale by ``~1/p``.
        """
        if not 0 < sample_fraction <= 1:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        p = sample_fraction
        if p == 1.0:
            return self
        scale = 1.0 / p
        degrees: Dict[Hashable, float] = {}
        for vertex, observed_degree in self.out_degree.items():
            if observed_degree <= 0:
                degrees[vertex] = 0.0
                continue
            sampled_freq = self.vertex_frequency.get(vertex, 0.0)
            average_sample_count = max(1.0, sampled_freq / observed_degree)
            estimated_true_freq = average_sample_count / p
            capture_probability = 1.0 - (1.0 - p) ** estimated_true_freq
            degrees[vertex] = observed_degree / max(capture_probability, p)
        return VertexStatistics(
            vertex_frequency={v: f * scale for v, f in self.vertex_frequency.items()},
            out_degree=degrees,
            total_frequency=self.total_frequency * scale,
        )


def variance_ratio(stream: GraphStream) -> float:
    """Compute σG / σV for a stream (Section 6.1).

    σG is the variance of the exact frequencies of all distinct edges.  σV is
    the average, over source vertices with at least one out-edge, of the
    variance of the frequencies of that vertex's out-edges (single-edge
    vertices contribute zero variance).  A ratio well above 1 indicates the
    local-similarity property gSketch exploits.

    Raises:
        ValueError: if the stream has no edges.
    """
    frequencies = stream.edge_frequencies()
    if not frequencies:
        raise ValueError("cannot compute a variance ratio on an empty stream")
    values = np.array(list(frequencies.values()), dtype=np.float64)
    global_variance = float(values.var())

    per_vertex: Dict[Hashable, List[float]] = {}
    for (source, _target), freq in frequencies.items():
        per_vertex.setdefault(source, []).append(freq)
    local_variances = [float(np.var(np.asarray(v))) for v in per_vertex.values()]
    average_local_variance = float(np.mean(local_variances)) if local_variances else 0.0

    if average_local_variance == 0.0:
        return float("inf") if global_variance > 0 else 1.0
    return global_variance / average_local_variance


def frequency_skew_summary(stream: GraphStream) -> Tuple[float, float, float]:
    """Return ``(mean, p99, max)`` of distinct-edge frequencies.

    A convenience diagnostic used by dataset tests to verify that generated
    streams are heavy-tailed (the global-heterogeneity property of
    Section 3.3).
    """
    values = np.array(list(stream.edge_frequencies().values()), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty stream")
    return float(values.mean()), float(np.percentile(values, 99)), float(values.max())

"""Laplace smoothing of workload vertex weights.

Section 6.4: a vertex present in the data sample may be absent from the query
workload sample; its raw relative weight ``w̃(m)`` would be zero, which would
zero out its term in the workload-aware objective (Equation 10/11) and starve
its partition of space.  The paper applies Laplace (add-one style) smoothing
to avoid zero weights; this module implements that smoothing for arbitrary
pseudo-count ``alpha``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping

from repro.utils.validation import require_positive


def laplace_smoothed_weights(
    counts: Mapping[Hashable, float],
    vocabulary: Iterable[Hashable],
    alpha: float = 1.0,
) -> Dict[Hashable, float]:
    """Smoothed relative weights over ``vocabulary``.

    Args:
        counts: raw occurrence counts (e.g. how often each vertex is the
            source of a workload-sample edge).  Keys outside ``vocabulary``
            are ignored.
        vocabulary: the complete set of items that must receive a non-zero
            weight (e.g. every source vertex of the data sample).
        alpha: Laplace pseudo-count added to every vocabulary item.

    Returns:
        A dict mapping every vocabulary item to a weight in (0, 1]; weights
        sum to 1 over the vocabulary.
    """
    require_positive(alpha, "alpha")
    vocab = list(dict.fromkeys(vocabulary))
    if not vocab:
        raise ValueError("vocabulary must contain at least one item")
    for value in counts.values():
        if value < 0:
            raise ValueError("counts must be non-negative")
    total = sum(counts.get(item, 0.0) for item in vocab) + alpha * len(vocab)
    return {item: (counts.get(item, 0.0) + alpha) / total for item in vocab}

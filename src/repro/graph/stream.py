"""The :class:`GraphStream` container.

A graph stream is conceptually unbounded; for reproduction experiments we
materialize finite streams in memory so that ground-truth frequencies can be
computed for evaluation.  The class supports iteration in arrival order,
exact frequency aggregation (the evaluation oracle), vertex/edge census
queries, time-window slicing, and convenient constructors.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge


class GraphStream:
    """A finite, materialized graph stream in arrival order.

    Every element's frequency is validated at construction: sketches assume
    non-negative, finite frequency mass, and a stray ``NaN``/``inf``/negative
    value would silently corrupt both the counters and the ground-truth
    oracle used for evaluation.

    Args:
        edges: stream elements.  They are stored in the given order, which is
            interpreted as arrival order.
        name: optional human-readable name used in experiment reports.

    Args (continued):
        validate: skip the per-element validation pass when ``False``.  Only
            for internal construction from already-validated elements (the
            slicing helpers); external callers should keep the default.

    Raises:
        ValueError: if any element carries a negative or non-finite frequency
            or a non-finite time-stamp.
    """

    def __init__(
        self,
        edges: Iterable[StreamEdge],
        name: str = "stream",
        validate: bool = True,
    ) -> None:
        self._edges: List[StreamEdge] = [
            e if isinstance(e, StreamEdge) else StreamEdge(*e) for e in edges
        ]
        self.name = name
        self._batch_cache: Optional[EdgeBatch] = None
        if not validate:
            return
        for index, edge in enumerate(self._edges):
            frequency = edge.frequency
            if not (frequency >= 0.0) or math.isinf(frequency):
                raise ValueError(
                    f"stream element {index} {edge.key!r} carries invalid frequency "
                    f"{frequency!r}; frequencies must be finite and >= 0"
                )
            if not math.isfinite(edge.timestamp):
                raise ValueError(
                    f"stream element {index} {edge.key!r} carries non-finite "
                    f"timestamp {edge.timestamp!r}"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[Hashable, Hashable]],
        name: str = "stream",
    ) -> "GraphStream":
        """Build a stream from bare ``(source, target)`` pairs.

        Time-stamps are assigned by arrival index and all frequencies are 1.
        """
        edges = [
            StreamEdge(source, target, timestamp=float(i), frequency=1.0)
            for i, (source, target) in enumerate(pairs)
        ]
        return cls(edges, name=name)

    @classmethod
    def from_tuples(
        cls,
        tuples: Iterable[Tuple[Hashable, Hashable, float, float]],
        name: str = "stream",
    ) -> "GraphStream":
        """Build a stream from ``(source, target, timestamp, frequency)`` tuples."""
        return cls((StreamEdge(*t) for t in tuples), name=name)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[StreamEdge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __getitem__(self, index: int) -> StreamEdge:
        return self._edges[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphStream(name={self.name!r}, elements={len(self._edges)})"

    # ------------------------------------------------------------------ #
    # Census / aggregation
    # ------------------------------------------------------------------ #
    def edge_frequencies(self) -> Dict[EdgeKey, float]:
        """Exact aggregate frequency of every distinct directed edge.

        This is the ground truth ``f(x, y)`` that sketches estimate; it is only
        computable because experiment streams are materialized.
        """
        totals: Dict[EdgeKey, float] = {}
        for edge in self._edges:
            key = edge.key
            totals[key] = totals.get(key, 0.0) + edge.frequency
        return totals

    def distinct_edges(self) -> Set[EdgeKey]:
        """The set of distinct directed edges occurring in the stream."""
        return {edge.key for edge in self._edges}

    def vertices(self) -> Set[Hashable]:
        """All vertex labels occurring as a source or a target."""
        result: Set[Hashable] = set()
        for edge in self._edges:
            result.add(edge.source)
            result.add(edge.target)
        return result

    def source_vertices(self) -> Set[Hashable]:
        """All vertex labels occurring as a source."""
        return {edge.source for edge in self._edges}

    def total_frequency(self) -> float:
        """Total frequency mass of the stream (``N`` of Equation 1)."""
        return float(sum(edge.frequency for edge in self._edges))

    def out_degrees(self) -> Dict[Hashable, int]:
        """Number of *distinct* out-edges per source vertex (Equation 3)."""
        neighbours: Dict[Hashable, Set[Hashable]] = {}
        for edge in self._edges:
            neighbours.setdefault(edge.source, set()).add(edge.target)
        return {v: len(targets) for v, targets in neighbours.items()}

    def vertex_frequencies(self) -> Dict[Hashable, float]:
        """Total frequency of edges emanating from each source vertex (Equation 2)."""
        totals: Dict[Hashable, float] = {}
        for edge in self._edges:
            totals[edge.source] = totals.get(edge.source, 0.0) + edge.frequency
        return totals

    def element_multiplicities(self) -> Counter:
        """Multiset of edge keys counted by stream *elements* (not frequency mass)."""
        return Counter(edge.key for edge in self._edges)

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #
    def time_window(self, start: float, end: float, name: Optional[str] = None) -> "GraphStream":
        """Elements with ``start <= timestamp < end``, preserving arrival order."""
        if end < start:
            raise ValueError(f"window end ({end}) must not precede start ({start})")
        window_name = name if name is not None else f"{self.name}[{start},{end})"
        return GraphStream(
            (e for e in self._edges if start <= e.timestamp < end),
            name=window_name,
            validate=False,
        )

    def prefix(self, count: int, name: Optional[str] = None) -> "GraphStream":
        """The first ``count`` elements of the stream."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        prefix_name = name if name is not None else f"{self.name}[:{count}]"
        return GraphStream(self._edges[:count], name=prefix_name, validate=False)

    def suffix(self, start: int, name: Optional[str] = None) -> "GraphStream":
        """Elements from index ``start`` onward."""
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        suffix_name = name if name is not None else f"{self.name}[{start}:]"
        return GraphStream(self._edges[start:], name=suffix_name, validate=False)

    def timestamp_range(self) -> Tuple[float, float]:
        """``(min, max)`` timestamps; raises ``ValueError`` on an empty stream."""
        if not self._edges:
            raise ValueError("cannot compute the timestamp range of an empty stream")
        timestamps = [e.timestamp for e in self._edges]
        return min(timestamps), max(timestamps)

    def edges(self) -> Sequence[StreamEdge]:
        """The underlying (immutable by convention) list of stream elements."""
        return self._edges

    # ------------------------------------------------------------------ #
    # Batched access
    # ------------------------------------------------------------------ #
    def iter_batches(self, size: int) -> Iterator[EdgeBatch]:
        """Yield the stream as consecutive columnar blocks of ``size`` elements.

        Arrival order is preserved: concatenating the yielded batches
        reproduces the stream exactly, so batched ingestion through
        :meth:`~repro.core.gsketch.GSketch.ingest_batch` matches per-edge
        ingestion bit for bit.  The final batch may be shorter.

        The stream is columnarized once (and cached); each yielded batch is a
        set of zero-copy array views, so repeated batched passes pay the
        Python-level conversion only on first use.
        """
        if size <= 0:
            raise ValueError(f"batch size must be > 0, got {size}")
        whole = self.to_batch()
        for start in range(0, len(whole), size):
            yield whole.slice(start, start + size)

    def to_batch(self) -> EdgeBatch:
        """The whole stream as a single columnar batch (cached)."""
        if self._batch_cache is None:
            self._batch_cache = EdgeBatch.from_edges(self._edges)
        return self._batch_cache

"""Graph stream elements.

The paper models a graph stream as a sequence of elements
``(x_i, y_i; t_i)`` where ``(x_i, y_i)`` is a directed edge received at
time-stamp ``t_i``, optionally carrying a frequency ``f(x_i, y_i, t_i)``
(Section 3.1).  :class:`StreamEdge` is that element; :func:`edge_key` is the
``l(x) ⊕ l(y)`` concatenation key under which an edge is hashed into a sketch.
"""

from __future__ import annotations

from typing import Hashable, NamedTuple, Tuple

#: The canonical identity of a directed edge: the ``(source, target)`` pair.
EdgeKey = Tuple[Hashable, Hashable]


class StreamEdge(NamedTuple):
    """One element of a graph stream.

    Attributes:
        source: source vertex label (``x_i``).
        target: target vertex label (``y_i``).
        timestamp: arrival time-stamp ``t_i`` (monotone but not necessarily
            unique; units are application-defined).
        frequency: frequency ``f(x_i, y_i, t_i)`` carried by this element,
            1.0 by default as in the paper.
    """

    source: Hashable
    target: Hashable
    timestamp: float = 0.0
    frequency: float = 1.0

    @property
    def key(self) -> EdgeKey:
        """The ``(source, target)`` identity of this edge."""
        return (self.source, self.target)

    def reversed(self) -> "StreamEdge":
        """The same element with source and target swapped."""
        return StreamEdge(self.target, self.source, self.timestamp, self.frequency)


def edge_key(source: Hashable, target: Hashable) -> EdgeKey:
    """Return the canonical key of the directed edge ``(source, target)``.

    This mirrors the paper's ``l(x) ⊕ l(y)`` concatenation: the key identifies
    the directed edge regardless of the time-stamps of its occurrences.
    """
    return (source, target)


def undirected_edge_key(u: Hashable, v: Hashable) -> EdgeKey:
    """Canonical key for an undirected edge.

    The paper notes that undirected graphs are handled by ordering vertex
    labels lexicographically (footnote 1).  Mixed-type labels fall back to
    ordering on their string representation.
    """
    try:
        ordered = (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        ordered = (u, v) if str(u) <= str(v) else (v, u)
    return ordered

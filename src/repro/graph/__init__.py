"""Graph stream model, vertex statistics, sampling and smoothing substrates."""

from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge, edge_key
from repro.graph.sampling import (
    reservoir_sample,
    uniform_edge_sample,
    zipf_edge_sample,
    zipf_rank_probabilities,
)
from repro.graph.smoothing import laplace_smoothed_weights
from repro.graph.statistics import VertexStatistics, variance_ratio
from repro.graph.stream import GraphStream

__all__ = [
    "EdgeBatch",
    "EdgeKey",
    "GraphStream",
    "StreamEdge",
    "VertexStatistics",
    "edge_key",
    "laplace_smoothed_weights",
    "reservoir_sample",
    "uniform_edge_sample",
    "variance_ratio",
    "zipf_edge_sample",
    "zipf_rank_probabilities",
]

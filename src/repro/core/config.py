"""gSketch configuration.

The configuration mirrors the knobs exposed by the paper:

* total space (expressed either as a cell budget or a byte budget, matching
  the paper's memory-size axis);
* Count-Min depth ``d`` (the number of rows, shared by every partition so all
  partitions keep the same ``1 - e^-d`` guarantee — Section 4.1);
* the partitioning-termination constants ``w0`` (minimum width) and ``C``
  (Theorem 1 collision bound);
* the fraction of space reserved for the outlier sketch (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import (
    require_in_range,
    require_positive_int,
    require_probability,
)

#: Assumed bytes per Count-Min counter cell, matching the 4-byte counters the
#: paper's memory axis (512 KB ... 2 GB) refers to.
DEFAULT_CELL_BYTES = 4


@dataclass(frozen=True)
class GSketchConfig:
    """Configuration of a gSketch (and of the Global Sketch baseline).

    Attributes:
        total_cells: total number of counter cells available across all
            partitions, the outlier sketch included.
        depth: Count-Min depth ``d`` used by every partition.
        min_partition_width: the termination threshold ``w0``: nodes narrower
            than this are not split further.
        max_partitions: upper bound on the number of localized sketches.  The
            paper treats ``w0`` as an absolute constant because its sketch
            widths are in the tens of thousands of cells; at reproduction
            scale a constant floor would create hundreds of tiny, poorly
            balanced partitions, so the effective width floor is
            ``max(min_partition_width, partitioned_width / max_partitions)``.
        collision_constant: the constant ``C`` of Theorem 1 (0 < C < 1): a
            node whose sampled distinct-edge count is at most ``C * width``
            becomes a leaf immediately.
        width_allocation: how leaf widths are assigned once the partitioning
            tree has fixed the vertex groups.  ``"rebalanced"`` (default) sets
            each leaf's width to the continuous minimizer of the paper's
            error objective (``w_i ∝ sqrt(F_i * G_i)``, capped at the leaf's
            Theorem-1 edge capacity); ``"halving"`` keeps the raw widths of
            the recursive halving plus the Section 4.1 shrink-and-redistribute
            rule.  The ablation benchmark compares both.
        outlier_fraction: fraction of ``total_cells`` reserved for the outlier
            sketch that serves vertices absent from the data sample.
        conservative_updates: whether partitions use conservative Count-Min
            updates (off by default; the paper uses plain Count-Min).
        seed: seed for the hash families of all constructed sketches.
    """

    total_cells: int
    depth: int = 5
    min_partition_width: int = 32
    max_partitions: int = 32
    collision_constant: float = 0.5
    width_allocation: str = "rebalanced"
    outlier_fraction: float = 0.10
    conservative_updates: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        require_positive_int(self.total_cells, "total_cells")
        require_positive_int(self.depth, "depth")
        require_positive_int(self.min_partition_width, "min_partition_width")
        require_positive_int(self.max_partitions, "max_partitions")
        require_probability(self.collision_constant, "collision_constant")
        if self.width_allocation not in ("rebalanced", "halving"):
            raise ValueError(
                "width_allocation must be 'rebalanced' or 'halving', "
                f"got {self.width_allocation!r}"
            )
        require_in_range(self.outlier_fraction, "outlier_fraction", 0.0, 0.9)
        if self.total_cells < self.depth:
            raise ValueError(
                "total_cells must be at least `depth` so every row has one cell"
            )

    # ------------------------------------------------------------------ #
    # Derived sizes
    # ------------------------------------------------------------------ #
    @property
    def total_width(self) -> int:
        """Total width budget (cells per row) across all partitions."""
        return max(1, self.total_cells // self.depth)

    @property
    def outlier_width(self) -> int:
        """Width reserved for the outlier sketch."""
        if self.outlier_fraction <= 0.0:
            return 0
        return max(1, int(self.total_width * self.outlier_fraction))

    @property
    def partitioned_width(self) -> int:
        """Width available to the partitioned (non-outlier) sketches."""
        return max(1, self.total_width - self.outlier_width)

    @property
    def effective_width_floor(self) -> int:
        """The ``w0`` actually used by the partitioner.

        Scales with the budget so that at most roughly ``max_partitions``
        leaves are produced, but never drops below ``min_partition_width``.
        """
        return max(self.min_partition_width, self.partitioned_width // self.max_partitions)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_memory_bytes(
        cls,
        memory_bytes: int,
        depth: int = 5,
        cell_bytes: int = DEFAULT_CELL_BYTES,
        **kwargs: object,
    ) -> "GSketchConfig":
        """Build a configuration from a byte budget, as on the paper's x-axes."""
        require_positive_int(memory_bytes, "memory_bytes")
        require_positive_int(cell_bytes, "cell_bytes")
        total_cells = max(depth, memory_bytes // cell_bytes)
        return cls(total_cells=total_cells, depth=depth, **kwargs)  # type: ignore[arg-type]

    def memory_bytes(self, cell_bytes: int = DEFAULT_CELL_BYTES) -> int:
        """The byte budget this configuration corresponds to."""
        return self.total_cells * cell_bytes

    def with_seed(self, seed: int) -> "GSketchConfig":
        """A copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    def without_outlier(self) -> "GSketchConfig":
        """A copy with no outlier reservation (used by the Global Sketch baseline)."""
        return replace(self, outlier_fraction=0.0)

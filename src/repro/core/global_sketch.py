"""The Global Sketch baseline (Section 3.2).

A single Count-Min sketch spans the entire graph stream; every edge
``(x, y)`` is hashed under its concatenated key regardless of structure.  This
is the state-of-the-art baseline the paper compares gSketch against, and its
weakness — the additive error is proportional to the *whole* stream's
frequency mass ``N`` — is exactly what sketch partitioning removes.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence

from repro.core.config import GSketchConfig
from repro.core.estimator import (
    ConfidenceInterval,
    countmin_confidence,
    intervals_from_arrays,
)
from repro.core.gsketch import DEFAULT_BATCH_SIZE, iter_edge_batches
from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge, edge_key
from repro.graph.stream import GraphStream
from repro.observability.health import sketch_health
from repro.observability.instruments import (
    INGEST_BATCHES,
    INGEST_ELEMENTS,
    INGEST_STAGE,
)
from repro.observability.tracing import stage_clock
from repro.queries.plan import PlanServingMixin
from repro.queries.subgraph_query import SubgraphQuery
from repro.sketches.countmin import CountMinSketch


class GlobalSketch(PlanServingMixin):
    """A single global Count-Min sketch over the whole edge universe.

    Point queries ride the compiled-plan read path (a one-slot arena plus the
    hot-edge cache); the pre-plan path stays as :meth:`query_edges_direct`.

    Args:
        config: space budget.  The baseline uses the *entire* budget
            (``total_cells``) for its one sketch: the outlier reservation only
            applies to gSketch.
    """

    def __init__(self, config: GSketchConfig) -> None:
        self.config = config
        self._sketch = CountMinSketch(
            width=max(1, config.total_width),
            depth=config.depth,
            seed=config.seed,
            conservative=config.conservative_updates,
        )
        self._init_query_plane()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def update(self, source: Hashable, target: Hashable, frequency: float = 1.0) -> None:
        """Record one stream element for the edge ``(source, target)``."""
        self._sketch.update(edge_key(source, target), frequency)
        self._bump_generation()

    def update_edge(self, edge: StreamEdge) -> None:
        """Record one :class:`~repro.graph.edge.StreamEdge`."""
        self.update(edge.source, edge.target, edge.frequency)

    def ingest_batch(self, batch: EdgeBatch | Sequence[StreamEdge]) -> int:
        """Ingest one columnar block of stream elements.

        Keys are canonicalized vectorized (:meth:`EdgeBatch.hashed_keys`) and
        land in the sketch via one
        :meth:`~repro.sketches.countmin.CountMinSketch.update_batch` call;
        counters come out bit-identical to per-edge :meth:`update` calls.
        Returns the number of elements ingested.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch.from_edges(list(batch))
        if len(batch) == 0:
            return 0
        clock = stage_clock("ingest", INGEST_STAGE)
        keys = batch.hashed_keys()
        clock.lap("route")
        self._sketch.update_batch(keys, batch.frequencies)
        clock.lap("apply")
        self._bump_generation()
        INGEST_BATCHES.inc()
        INGEST_ELEMENTS.inc(len(batch))
        return len(batch)

    def process(
        self,
        stream: GraphStream | Iterable[StreamEdge],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Ingest an entire stream; returns the number of elements processed.

        Uses the sketch's vectorized batch path, which is how a C++
        implementation would amortize hashing cost; the semantics are
        identical to calling :meth:`update` per element.
        """
        return sum(
            self.ingest_batch(batch) for batch in iter_edge_batches(stream, batch_size)
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_edge(self, edge: EdgeKey) -> float:
        """Estimate the aggregate frequency of a directed edge.

        Served through the compiled plan and hot-edge cache; bit-identical to
        a direct :meth:`~repro.sketches.countmin.CountMinSketch.estimate`.
        """
        return float(self._planned_estimates([edge])[0])

    def query_edges(self, edges: Sequence[EdgeKey]) -> List[float]:
        """Estimate many edges at once through the compiled query plan.

        Element-wise identical to calling :meth:`query_edge` per edge and to
        :meth:`query_edges_direct`: the keys go through the same
        canonicalization and hashing kernels, read from the plan arena.
        """
        return self._planned_estimates(edges).tolist()

    def query_edges_direct(self, edges: Sequence[EdgeKey]) -> List[float]:
        """The pre-plan path (one ``estimate_batch``); parity oracle and
        benchmark baseline for the compiled plan."""
        if len(edges) == 0:
            return []
        keys = EdgeBatch.from_edge_keys(edges).hashed_keys()
        return self._sketch.estimate_batch(keys).tolist()

    def query_subgraph(self, query: SubgraphQuery) -> float:
        """Estimate an aggregate subgraph query by per-edge decomposition."""
        return query.combine(self.query_edges(query.edges))

    def confidence(self, edge: EdgeKey) -> ConfidenceInterval:
        """Equation-1 confidence interval for an edge estimate."""
        return countmin_confidence(self._sketch, self.query_edge(edge))

    def confidence_batch(self, edges: Sequence[EdgeKey]) -> List[ConfidenceInterval]:
        """Equation-1 confidence intervals for many edges at once.

        One plan pass: the keys are hashed once, estimated in one gather, and
        the constant bound/failure pair (one sketch serves every query) is
        broadcast from the plan's per-slot constants.  Element-wise identical
        to :meth:`confidence`.
        """
        if len(edges) == 0:
            return []
        estimates, bounds, failures, _ = self._planned_confidence(edges)
        return intervals_from_arrays(estimates, bounds, failures)

    # ------------------------------------------------------------------ #
    # Snapshot protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Complete estimator state (configuration + sketch counters)."""
        return {"config": self.config, "sketch": self._sketch.state_dict()}

    @classmethod
    def from_state(cls, state: dict) -> "GlobalSketch":
        """Revive an estimator from a :meth:`state_dict` snapshot."""
        sketch = cls(state["config"])
        sketch._sketch.load_state(state["sketch"])
        return sketch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _plan_layout(self):
        """One-slot arena (no router); the private table is attached."""
        return [self._sketch], None, True

    @property
    def sketch(self) -> CountMinSketch:
        """The underlying Count-Min sketch."""
        return self._sketch

    @property
    def elements_processed(self) -> int:
        """Number of stream elements ingested so far."""
        return self._sketch.update_count

    @property
    def total_frequency(self) -> float:
        """Total frequency mass ingested (``N``)."""
        return self._sketch.total_count

    @property
    def memory_cells(self) -> int:
        """Number of allocated counter cells."""
        return self._sketch.memory_cells

    def telemetry_snapshot(self) -> dict:
        """Health telemetry: table saturation and plan/cache state."""
        elements = self.elements_processed
        return {
            "backend": "global",
            "elements_processed": elements,
            "outlier_elements": 0,
            "outlier_share": 0.0,
            "num_partitions": 0,
            "memory_cells": self.memory_cells,
            "total_frequency": float(self.total_frequency),
            "tables": [{"partition": 0, **sketch_health(self._sketch)}],
            **self._plan_telemetry(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlobalSketch(width={self._sketch.width}, depth={self._sketch.depth}, "
            f"N={self._sketch.total_count:.0f})"
        )

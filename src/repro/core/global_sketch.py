"""The Global Sketch baseline (Section 3.2).

A single Count-Min sketch spans the entire graph stream; every edge
``(x, y)`` is hashed under its concatenated key regardless of structure.  This
is the state-of-the-art baseline the paper compares gSketch against, and its
weakness — the additive error is proportional to the *whole* stream's
frequency mass ``N`` — is exactly what sketch partitioning removes.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence

from repro.core.config import GSketchConfig
from repro.core.estimator import ConfidenceInterval, countmin_confidence
from repro.core.gsketch import DEFAULT_BATCH_SIZE, iter_edge_batches
from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge, edge_key
from repro.graph.stream import GraphStream
from repro.queries.subgraph_query import SubgraphQuery
from repro.sketches.countmin import CountMinSketch


class GlobalSketch:
    """A single global Count-Min sketch over the whole edge universe.

    Args:
        config: space budget.  The baseline uses the *entire* budget
            (``total_cells``) for its one sketch: the outlier reservation only
            applies to gSketch.
    """

    def __init__(self, config: GSketchConfig) -> None:
        self.config = config
        self._sketch = CountMinSketch(
            width=max(1, config.total_width),
            depth=config.depth,
            seed=config.seed,
            conservative=config.conservative_updates,
        )

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def update(self, source: Hashable, target: Hashable, frequency: float = 1.0) -> None:
        """Record one stream element for the edge ``(source, target)``."""
        self._sketch.update(edge_key(source, target), frequency)

    def update_edge(self, edge: StreamEdge) -> None:
        """Record one :class:`~repro.graph.edge.StreamEdge`."""
        self.update(edge.source, edge.target, edge.frequency)

    def ingest_batch(self, batch: EdgeBatch | Sequence[StreamEdge]) -> int:
        """Ingest one columnar block of stream elements.

        Keys are canonicalized vectorized (:meth:`EdgeBatch.hashed_keys`) and
        land in the sketch via one
        :meth:`~repro.sketches.countmin.CountMinSketch.update_batch` call;
        counters come out bit-identical to per-edge :meth:`update` calls.
        Returns the number of elements ingested.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch.from_edges(list(batch))
        if len(batch) == 0:
            return 0
        self._sketch.update_batch(batch.hashed_keys(), batch.frequencies)
        return len(batch)

    def process(
        self,
        stream: GraphStream | Iterable[StreamEdge],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Ingest an entire stream; returns the number of elements processed.

        Uses the sketch's vectorized batch path, which is how a C++
        implementation would amortize hashing cost; the semantics are
        identical to calling :meth:`update` per element.
        """
        return sum(
            self.ingest_batch(batch) for batch in iter_edge_batches(stream, batch_size)
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_edge(self, edge: EdgeKey) -> float:
        """Estimate the aggregate frequency of a directed edge."""
        return self._sketch.estimate(tuple(edge))

    def query_edges(self, edges: Sequence[EdgeKey]) -> List[float]:
        """Estimate many edges at once (one vectorized ``estimate_batch``).

        Element-wise identical to calling :meth:`query_edge` per edge: the
        keys go through the same canonicalization pipeline, just as array
        kernels instead of per-edge Python hashing.
        """
        if len(edges) == 0:
            return []
        keys = EdgeBatch.from_edge_keys(edges).hashed_keys()
        return self._sketch.estimate_batch(keys).tolist()

    def query_subgraph(self, query: SubgraphQuery) -> float:
        """Estimate an aggregate subgraph query by per-edge decomposition."""
        return query.combine(self.query_edges(query.edges))

    def confidence(self, edge: EdgeKey) -> ConfidenceInterval:
        """Equation-1 confidence interval for an edge estimate."""
        return countmin_confidence(self._sketch, self.query_edge(edge))

    def confidence_batch(self, edges: Sequence[EdgeKey]) -> List[ConfidenceInterval]:
        """Equation-1 confidence intervals for many edges at once.

        The additive bound and failure probability are global constants for
        this baseline (one sketch serves every query), so only the estimates
        are vectorized.  Element-wise identical to :meth:`confidence`.
        """
        if len(edges) == 0:
            return []
        template = countmin_confidence(self._sketch, 0.0)
        return [
            ConfidenceInterval(
                estimate=float(estimate),
                additive_bound=template.additive_bound,
                failure_probability=template.failure_probability,
            )
            for estimate in self.query_edges(edges)
        ]

    # ------------------------------------------------------------------ #
    # Snapshot protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Complete estimator state (configuration + sketch counters)."""
        return {"config": self.config, "sketch": self._sketch.state_dict()}

    @classmethod
    def from_state(cls, state: dict) -> "GlobalSketch":
        """Revive an estimator from a :meth:`state_dict` snapshot."""
        sketch = cls(state["config"])
        sketch._sketch.load_state(state["sketch"])
        return sketch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def sketch(self) -> CountMinSketch:
        """The underlying Count-Min sketch."""
        return self._sketch

    @property
    def elements_processed(self) -> int:
        """Number of stream elements ingested so far."""
        return self._sketch.update_count

    @property
    def total_frequency(self) -> float:
        """Total frequency mass ingested (``N``)."""
        return self._sketch.total_count

    @property
    def memory_cells(self) -> int:
        """Number of allocated counter cells."""
        return self._sketch.memory_cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlobalSketch(width={self._sketch.width}, depth={self._sketch.depth}, "
            f"N={self._sketch.total_count:.0f})"
        )

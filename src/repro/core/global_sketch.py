"""The Global Sketch baseline (Section 3.2).

A single Count-Min sketch spans the entire graph stream; every edge
``(x, y)`` is hashed under its concatenated key regardless of structure.  This
is the state-of-the-art baseline the paper compares gSketch against, and its
weakness — the additive error is proportional to the *whole* stream's
frequency mass ``N`` — is exactly what sketch partitioning removes.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence

import numpy as np

from repro.core.config import GSketchConfig
from repro.core.estimator import ConfidenceInterval, countmin_confidence
from repro.graph.edge import EdgeKey, StreamEdge, edge_key
from repro.graph.stream import GraphStream
from repro.queries.subgraph_query import SubgraphQuery
from repro.sketches.countmin import CountMinSketch
from repro.sketches.hashing import key_to_uint64


class GlobalSketch:
    """A single global Count-Min sketch over the whole edge universe.

    Args:
        config: space budget.  The baseline uses the *entire* budget
            (``total_cells``) for its one sketch: the outlier reservation only
            applies to gSketch.
    """

    def __init__(self, config: GSketchConfig) -> None:
        self.config = config
        self._sketch = CountMinSketch(
            width=max(1, config.total_width),
            depth=config.depth,
            seed=config.seed,
            conservative=config.conservative_updates,
        )

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def update(self, source: Hashable, target: Hashable, frequency: float = 1.0) -> None:
        """Record one stream element for the edge ``(source, target)``."""
        self._sketch.update(edge_key(source, target), frequency)

    def update_edge(self, edge: StreamEdge) -> None:
        """Record one :class:`~repro.graph.edge.StreamEdge`."""
        self.update(edge.source, edge.target, edge.frequency)

    def process(self, stream: GraphStream | Iterable[StreamEdge]) -> int:
        """Ingest an entire stream; returns the number of elements processed.

        Uses the sketch's vectorized batch path, which is how a C++
        implementation would amortize hashing cost; the semantics are
        identical to calling :meth:`update` per element.
        """
        keys: List[int] = []
        counts: List[float] = []
        for element in stream:
            keys.append(key_to_uint64((element.source, element.target)))
            counts.append(element.frequency)
        if keys:
            self._sketch.update_batch(np.array(keys, dtype=np.uint64), counts)
        return len(keys)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_edge(self, edge: EdgeKey) -> float:
        """Estimate the aggregate frequency of a directed edge."""
        return self._sketch.estimate(tuple(edge))

    def query_edges(self, edges: Sequence[EdgeKey]) -> List[float]:
        """Estimate many edges at once."""
        return [self.query_edge(edge) for edge in edges]

    def query_subgraph(self, query: SubgraphQuery) -> float:
        """Estimate an aggregate subgraph query by per-edge decomposition."""
        return query.combine([self.query_edge(edge) for edge in query.edges])

    def confidence(self, edge: EdgeKey) -> ConfidenceInterval:
        """Equation-1 confidence interval for an edge estimate."""
        return countmin_confidence(self._sketch, self.query_edge(edge))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def sketch(self) -> CountMinSketch:
        """The underlying Count-Min sketch."""
        return self._sketch

    @property
    def total_frequency(self) -> float:
        """Total frequency mass ingested (``N``)."""
        return self._sketch.total_count

    @property
    def memory_cells(self) -> int:
        """Number of allocated counter cells."""
        return self._sketch.memory_cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlobalSketch(width={self._sketch.width}, depth={self._sketch.depth}, "
            f"N={self._sketch.total_count:.0f})"
        )

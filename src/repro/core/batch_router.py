"""Vectorized routing of edge blocks to destination partitions.

The single-edge path resolves one dictionary lookup and one hash per element.
:class:`BatchRouter` instead takes a columnar :class:`~repro.graph.batch.EdgeBatch`
and produces, in one vectorized pass:

1. the destination partition of every element
   (:meth:`~repro.core.router.VertexRouter.route_batch`, one ``searchsorted``
   for integer label spaces);
2. the canonical uint64 sketch key of every element
   (:meth:`~repro.graph.batch.EdgeBatch.hashed_keys`, vectorized splitmix64);
3. per-partition contiguous groups, obtained from a single stable argsort of
   the partition vector, so each group can be handed to
   :meth:`~repro.sketches.countmin.CountMinSketch.update_batch` whole.

The stable sort preserves arrival order *within* each partition, which is what
makes batched ingestion bit-identical to per-edge ingestion: partitions are
independent sketches, so only intra-partition order matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.router import OUTLIER_PARTITION, VertexRouter
from repro.graph.batch import EdgeBatch


@dataclass(frozen=True)
class PartitionGroup:
    """All elements of one batch bound for one partition.

    Attributes:
        partition: destination partition index
            (:data:`~repro.core.router.OUTLIER_PARTITION` for the outlier).
        keys: canonical uint64 edge keys, in arrival order.
        counts: frequency mass per element, aligned with ``keys``.
        positions: positions of these elements in the originating batch, used
            to scatter per-group query results back into batch order.
    """

    partition: int
    keys: np.ndarray
    counts: np.ndarray
    positions: np.ndarray

    def __len__(self) -> int:
        return len(self.keys)


@dataclass(frozen=True)
class RoutedBatch:
    """The result of routing one :class:`~repro.graph.batch.EdgeBatch`.

    Attributes:
        groups: per-partition groups, ordered by partition index (the outlier
            group, if any, comes first because its sentinel is -1).
        num_elements: number of elements in the originating batch.
        outlier_count: how many elements were routed to the outlier sketch.
    """

    groups: Tuple[PartitionGroup, ...]
    num_elements: int
    outlier_count: int


class BatchRouter:
    """Groups a columnar edge block by destination partition, vectorized."""

    def __init__(self, router: VertexRouter) -> None:
        self._router = router

    @property
    def router(self) -> VertexRouter:
        """The underlying vertex → partition hash structure ``H``."""
        return self._router

    def route(self, batch: EdgeBatch) -> RoutedBatch:
        """Route one batch: hash keys, resolve partitions, group contiguously."""
        if len(batch) == 0:
            return RoutedBatch(groups=(), num_elements=0, outlier_count=0)
        partitions = self._router.route_batch(batch.sources)
        keys = batch.hashed_keys()
        counts = batch.frequencies

        order = np.argsort(partitions, kind="stable")
        sorted_partitions = partitions[order]
        boundaries = np.flatnonzero(sorted_partitions[1:] != sorted_partitions[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_partitions)]))

        groups = []
        outlier_count = 0
        for start, end in zip(starts.tolist(), ends.tolist()):
            partition = int(sorted_partitions[start])
            positions = order[start:end]
            if partition == OUTLIER_PARTITION:
                outlier_count = end - start
            groups.append(
                PartitionGroup(
                    partition=partition,
                    keys=keys[positions],
                    counts=counts[positions],
                    positions=positions,
                )
            )
        return RoutedBatch(
            groups=tuple(groups),
            num_elements=len(batch),
            outlier_count=outlier_count,
        )

    def route_edges(self, edges: Sequence) -> RoutedBatch:
        """Route bare ``(source, target)`` pairs (query-time convenience)."""
        return self.route(EdgeBatch.from_edge_keys(edges))

"""Per-query confidence information.

Section 5 observes that the Count-Min confidence intervals apply *within each
localized partition*: because the frequency mass ``N_i`` absorbed by each
partition is known, the additive error bound ``e * N_i / w_i`` (Equation 1)
and the failure probability ``e^-d`` can be reported per query, and they
differ across partitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sketches.countmin import CountMinSketch


@dataclass(frozen=True)
class ConfidenceInterval:
    """A one-sided Count-Min confidence statement for a point estimate.

    With probability at least ``1 - failure_probability`` the true frequency
    ``f`` satisfies ``lower <= f <= estimate`` where
    ``lower = max(0, estimate - additive_bound)`` (Count-Min never
    underestimates).

    ``upper_slack`` widens the upper end for *degraded* serving: a dropped
    shard may have lost up to that much frequency mass, so the sketch can
    now underestimate by it — ``upper = estimate + upper_slack`` keeps the
    interval sound.  Healthy serving leaves it at 0 (one-sided as before).
    """

    estimate: float
    additive_bound: float
    failure_probability: float
    upper_slack: float = 0.0

    @property
    def lower(self) -> float:
        return max(0.0, self.estimate - self.additive_bound)

    @property
    def upper(self) -> float:
        return self.estimate + self.upper_slack

    def contains(self, true_frequency: float) -> bool:
        """Whether the stated interval contains ``true_frequency``."""
        return self.lower <= true_frequency <= self.upper


def countmin_confidence(sketch: CountMinSketch, estimate: float) -> ConfidenceInterval:
    """Build the Equation-1 confidence interval for an estimate from ``sketch``."""
    return ConfidenceInterval(
        estimate=float(estimate),
        additive_bound=math.e * sketch.total_count / sketch.width,
        failure_probability=math.exp(-sketch.depth),
    )


def intervals_from_arrays(
    estimates: np.ndarray,
    bounds: np.ndarray,
    failures: np.ndarray,
    upper_slacks: "np.ndarray | None" = None,
) -> List[ConfidenceInterval]:
    """Materialize typed intervals from parallel estimate/bound/failure columns.

    The compiled query plan answers confidence batches as three aligned
    arrays (one routing pass, constants gathered by partition slot); this is
    the single place they become :class:`ConfidenceInterval` objects.
    ``upper_slacks`` (degraded serving only) widens per-query upper ends by
    the lost frequency mass of the shard that would have answered.
    """
    if upper_slacks is None:
        return [
            ConfidenceInterval(
                estimate=float(estimate),
                additive_bound=float(bound),
                failure_probability=float(failure),
            )
            for estimate, bound, failure in zip(estimates, bounds, failures)
        ]
    return [
        ConfidenceInterval(
            estimate=float(estimate),
            additive_bound=float(bound),
            failure_probability=float(failure),
            upper_slack=float(slack),
        )
        for estimate, bound, failure, slack in zip(
            estimates, bounds, failures, upper_slacks
        )
    ]

"""The analytic error model that drives sketch partitioning.

Section 4 derives, for a partitioned Count-Min sketch ``S_i`` of width
``w_i`` holding a set of source vertices, the expected overall relative error
of the edges routed to it.  Because true edge frequencies are unknown, the
model substitutes vertex-level statistics from the data sample: a vertex ``m``
contributes ``d̃(m)`` edges of average frequency ``f̃_v(m) / d̃(m)``.

* Equation 6 (data sample only)::

      E_i = sum_m  d̃(m) * F̃(S_i) / (w_i * f̃_v(m)/d̃(m))  -  sum_m d̃(m) / w_i

* Equation 10 (data + workload samples) replaces the leading ``d̃(m)`` by the
  workload weight ``w̃(m)`` so that space follows querying interest::

      E_i = sum_n  w̃(n) * F̃(S_i) / (w_i * f̃_v(n)/d̃(n))  -  sum_n w̃(n) / w_i

* Equations 9 / 11 are the width-free split objectives ``E'`` minimized when a
  partitioning-tree node is split into two equal-width children.

The split-objective evaluators below run in O(n) over a sorted vertex order by
maintaining prefix sums of the two per-vertex quantities each objective needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.graph.statistics import VertexStatistics
from repro.utils.validation import require_positive_int


def _average_frequency(stats: VertexStatistics, vertex: Hashable) -> float:
    """``f̃_v(m) / d̃(m)`` with a tiny floor to avoid division by zero."""
    avg = stats.average_edge_frequency(vertex)
    return avg if avg > 0 else 1e-12


def partition_error_data_only(
    vertices: Sequence[Hashable], stats: VertexStatistics, width: int
) -> float:
    """Expected relative error of one partition, data-sample scenario (Eq. 6)."""
    require_positive_int(width, "width")
    if not len(vertices):
        return 0.0
    freq, deg = stats.columns_for(vertices)
    total_frequency = float(freq.sum())
    contributing = deg > 0
    average = np.where(contributing, freq / np.where(contributing, deg, 1.0), 0.0)
    average = np.where(average > 0, average, 1e-12)
    error = float((deg * total_frequency / (width * average))[contributing].sum())
    degree_sum = float(deg[contributing].sum())
    return error - degree_sum / width


def partition_error_with_workload(
    vertices: Sequence[Hashable],
    stats: VertexStatistics,
    workload_weights: Mapping[Hashable, float],
    width: int,
) -> float:
    """Expected relative error of one partition, workload scenario (Eq. 10)."""
    require_positive_int(width, "width")
    if not len(vertices):
        return 0.0
    freq, deg = stats.columns_for(vertices)
    weights = np.fromiter(
        (workload_weights.get(v, 0.0) for v in vertices),
        dtype=np.float64,
        count=len(vertices),
    )
    total_frequency = float(freq.sum())
    positive = deg > 0
    average = np.where(positive, freq / np.where(positive, deg, 1.0), 0.0)
    average = np.where(average > 0, average, 1e-12)
    contributing = weights > 0
    error = float((weights * total_frequency / (width * average))[contributing].sum())
    weight_sum = float(weights[contributing].sum())
    return error - weight_sum / width


@dataclass(frozen=True)
class SplitDecision:
    """Result of evaluating every contiguous split of a sorted vertex list.

    Attributes:
        pivot: number of vertices assigned to the left child (``S_1``); the
            remaining vertices go to the right child (``S_2``).
        objective: the minimized value of ``E'``.
        order: the sorted vertex order the pivot refers to.
    """

    pivot: int
    objective: float
    order: Tuple[Hashable, ...]

    @property
    def left(self) -> Tuple[Hashable, ...]:
        return self.order[: self.pivot]

    @property
    def right(self) -> Tuple[Hashable, ...]:
        return self.order[self.pivot :]


def best_split_index(
    frequency_terms: np.ndarray, ratio_terms: np.ndarray
) -> Tuple[int, float]:
    """Minimize ``E' = F(S1) * G(S1) + F(S2) * G(S2)`` over contiguous splits.

    ``frequency_terms[i]`` is vertex ``i``'s contribution to ``F̃(S)`` and
    ``ratio_terms[i]`` its contribution to the ``sum_m coeff(m) / avg(m)``
    factor (``G``).  Both objectives 9 and 11 factor into this form, so a
    single prefix-sum pass evaluates every pivot.  This kernel is shared by
    the per-node :class:`SplitDecision` evaluators below and by the columnar
    partition-tree builder, which calls it on contiguous slices of globally
    pre-sorted term columns.

    Returns:
        ``(pivot, objective)`` where ``pivot`` is the number of left-child
        vertices (``1 <= pivot < n``; ties resolve to the smallest pivot).
    """
    n = len(frequency_terms)
    if n < 2:
        raise ValueError("cannot split fewer than two vertices")
    freq_prefix = np.cumsum(frequency_terms)
    ratio_prefix = np.cumsum(ratio_terms)
    total_freq = freq_prefix[-1]
    total_ratio = ratio_prefix[-1]

    left_freq = freq_prefix[:-1]
    left_ratio = ratio_prefix[:-1]
    right_freq = total_freq - left_freq
    right_ratio = total_ratio - left_ratio
    objectives = left_freq * left_ratio + right_freq * right_ratio
    best_index = int(np.argmin(objectives))
    return best_index + 1, float(objectives[best_index])


def _best_pivot(
    order: List[Hashable],
    frequency_terms: np.ndarray,
    ratio_terms: np.ndarray,
) -> SplitDecision:
    """Evaluate every contiguous split of a sorted vertex list (see above)."""
    pivot, objective = best_split_index(frequency_terms, ratio_terms)
    return SplitDecision(pivot=pivot, objective=objective, order=tuple(order))


def split_objective_data_only(
    vertices: Sequence[Hashable], stats: VertexStatistics
) -> SplitDecision:
    """Find the best split under the data-only objective ``E'`` (Equation 9).

    Vertices are sorted by average outgoing edge frequency
    ``f̃_v(m) / d̃(m)`` (Section 4.1) and every contiguous pivot is evaluated.
    """
    order = sorted(vertices, key=lambda v: (stats.average_edge_frequency(v), repr(v)))
    frequency_terms = np.array([stats.frequency(v) for v in order], dtype=np.float64)
    # d̃(m) / (f̃_v(m)/d̃(m))  ==  d̃(m)^2 / f̃_v(m)
    ratio_terms = np.array(
        [stats.degree(v) / _average_frequency(stats, v) for v in order], dtype=np.float64
    )
    return _best_pivot(order, frequency_terms, ratio_terms)


def split_objective_with_workload(
    vertices: Sequence[Hashable],
    stats: VertexStatistics,
    workload_weights: Mapping[Hashable, float],
) -> SplitDecision:
    """Find the best split under the workload-aware objective ``E'`` (Equation 11).

    Vertices are sorted by ``f̃_v(n) / w̃(n)`` (Section 4.2) and every
    contiguous pivot is evaluated.
    """

    def sort_key(vertex: Hashable) -> Tuple[float, str]:
        weight = workload_weights.get(vertex, 0.0)
        ratio = stats.frequency(vertex) / weight if weight > 0 else float("inf")
        return (ratio, repr(vertex))

    order = sorted(vertices, key=sort_key)
    frequency_terms = np.array([stats.frequency(v) for v in order], dtype=np.float64)
    # w̃(n) / (f̃_v(n)/d̃(n))  ==  w̃(n) * d̃(n) / f̃_v(n)
    ratio_terms = np.array(
        [
            workload_weights.get(v, 0.0) * stats.degree(v) / (stats.frequency(v) or 1e-12)
            for v in order
        ],
        dtype=np.float64,
    )
    return _best_pivot(order, frequency_terms, ratio_terms)


def total_expected_error(
    partitions: Sequence[Sequence[Hashable]],
    widths: Sequence[int],
    stats: VertexStatistics,
    workload_weights: Optional[Mapping[Hashable, float]] = None,
) -> float:
    """Sum of per-partition expected relative errors (the Problem 1/2 objective).

    Used by tests and the ablation benchmark to check that the recursive
    partitioner actually reduces the modeled error relative to a single global
    partition.
    """
    if len(partitions) != len(widths):
        raise ValueError("partitions and widths must have the same length")
    total = 0.0
    for vertices, width in zip(partitions, widths):
        if workload_weights is None:
            total += partition_error_data_only(vertices, stats, width)
        else:
            total += partition_error_with_workload(vertices, stats, workload_weights, width)
    return total


def degraded_union_bound(
    failures: np.ndarray, extra_failure_probability: float
) -> np.ndarray:
    """Union-bound widening of Equation-1 failure probabilities.

    Degraded serving stacks a second failure source on top of the usual
    Count-Min collision event (the dropped shard's unaccounted updates); by
    the union bound the combined failure probability is at most the sum of
    the two, capped at certainty.
    """
    return np.minimum(np.asarray(failures, dtype=np.float64) + extra_failure_probability, 1.0)

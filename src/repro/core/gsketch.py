"""gSketch: the partitioned graph-stream sketch (Sections 4 and 5).

Construction is a two-phase process:

1. **Offline partitioning** on a data sample (and optionally a query workload
   sample): :func:`~repro.core.partitioner.build_partition_tree` groups source
   vertices with similar average edge frequency into localized sketches and
   allocates the width budget among them; a fixed fraction of the space is
   reserved for the **outlier sketch** serving vertices absent from the
   sample.
2. **Online maintenance**: each incoming edge is routed by its source vertex
   through the hash structure ``H`` to its localized sketch and counted there;
   queries are routed the same way, so each query's error depends only on the
   frequency mass inside its own partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.batch_router import BatchRouter
from repro.core.config import GSketchConfig
from repro.core.estimator import (
    ConfidenceInterval,
    countmin_confidence,
    intervals_from_arrays,
)
from repro.core.partition_tree import PartitionLeaf, PartitionTree
from repro.core.partitioner import build_partition_tree, workload_vertex_weights
from repro.core.router import OUTLIER_PARTITION, VertexRouter
from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge, edge_key
from repro.graph.statistics import VertexStatistics
from repro.graph.stream import GraphStream
from repro.observability.health import sketch_health
from repro.observability.instruments import (
    INGEST_BATCHES,
    INGEST_ELEMENTS,
    INGEST_STAGE,
)
from repro.observability.tracing import stage_clock
from repro.queries.plan import PlanServingMixin
from repro.queries.subgraph_query import SubgraphQuery
from repro.queries.workload import QueryWorkload
from repro.sketches.countmin import CountMinSketch

#: Default number of elements per block for batched ingestion.
DEFAULT_BATCH_SIZE = 8192


def make_partition_sketch(config: GSketchConfig, leaf: PartitionLeaf) -> CountMinSketch:
    """The physical sketch of one partition-tree leaf.

    Centralized so that every consumer — :class:`GSketch` and the shards of
    :class:`~repro.distributed.coordinator.ShardedGSketch` — constructs
    sketches with identical dimensions and hash seeds, which is what makes
    sharded and single-process ingestion bit-identical.
    """
    return CountMinSketch(
        width=leaf.width,
        depth=config.depth,
        seed=config.seed + leaf.index + 1,
        conservative=config.conservative_updates,
    )


def make_outlier_sketch(config: GSketchConfig, surplus_width: int) -> CountMinSketch:
    """The sketch serving vertices absent from the data sample."""
    return CountMinSketch(
        width=max(1, config.outlier_width + surplus_width),
        depth=config.depth,
        seed=config.seed,
        conservative=config.conservative_updates,
    )


def chunked_batches(
    edges: Iterable[StreamEdge], batch_size: int
) -> Iterable[EdgeBatch]:
    """Columnarize an arbitrary element iterable in blocks of ``batch_size``."""
    if batch_size <= 0:
        raise ValueError(f"batch size must be > 0, got {batch_size}")
    chunk: List[StreamEdge] = []
    for edge in edges:
        chunk.append(edge if isinstance(edge, StreamEdge) else StreamEdge(*edge))
        if len(chunk) >= batch_size:
            yield EdgeBatch.from_edges(chunk)
            chunk = []
    if chunk:
        yield EdgeBatch.from_edges(chunk)


def iter_edge_batches(
    stream: GraphStream | Iterable[StreamEdge],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterable[EdgeBatch]:
    """Columnar blocks for a stream or arbitrary edge iterable.

    Materialized :class:`~repro.graph.stream.GraphStream` inputs reuse the
    stream's cached columnar form; arbitrary iterables (including unbounded
    generators) are chunked lazily without materializing.  Every batched
    ingest path dispatches through here.
    """
    if isinstance(stream, GraphStream):
        return stream.iter_batches(batch_size)
    return chunked_batches(stream, batch_size)


def routed_confidence_batch(
    batch_router: BatchRouter,
    edges: Sequence[EdgeKey],
    sketch_for,
) -> "tuple[List[ConfidenceInterval], List[int]]":
    """Equation-1 confidence intervals for a block of edges, one routing pass.

    The single source of truth for partitioned confidence queries, shared by
    :meth:`GSketch.confidence_batch` and
    :meth:`~repro.distributed.coordinator.ShardedGSketch.confidence_batch` so
    the two cannot diverge.  Edges are routed once and estimated per
    partition via ``estimate_batch``; the additive bound and failure
    probability are per-partition constants, so each group contributes two
    scalars.  Returns the intervals plus the partition id that answered each
    edge (:data:`~repro.core.router.OUTLIER_PARTITION` for outliers), both
    positionally aligned with ``edges``.

    Args:
        batch_router: the engine's vectorized router.
        edges: the ``(source, target)`` keys to estimate.
        sketch_for: partition index → physical sketch resolver.
    """
    if len(edges) == 0:
        return [], []
    routed = batch_router.route_edges(edges)
    estimates = np.empty(len(edges), dtype=np.float64)
    bounds = np.empty(len(edges), dtype=np.float64)
    failures = np.empty(len(edges), dtype=np.float64)
    partitions = np.empty(len(edges), dtype=np.int64)
    for group in routed.groups:
        sketch = sketch_for(group.partition)
        estimates[group.positions] = sketch.estimate_batch(group.keys)
        # The bound and failure probability are per-partition constants;
        # derive them once per group from the scalar single source of truth
        # so the two confidence paths cannot diverge.
        template = countmin_confidence(sketch, 0.0)
        bounds[group.positions] = template.additive_bound
        failures[group.positions] = template.failure_probability
        partitions[group.positions] = group.partition
    intervals = [
        ConfidenceInterval(
            estimate=float(estimate),
            additive_bound=float(bound),
            failure_probability=float(failure),
        )
        for estimate, bound, failure in zip(estimates, bounds, failures)
    ]
    return intervals, partitions.tolist()


@dataclass(frozen=True)
class PartitionSummary:
    """Size and load summary of one partition (used by reports and Table 1)."""

    index: int
    vertex_count: int
    width: int
    depth: int
    total_frequency: float
    leaf_reason: str


class GSketch(PlanServingMixin):
    """The partitioned graph-stream sketch.

    Instances are normally created through :meth:`build` (data sample only,
    Figure 2) or :meth:`build_with_workload` (data + workload samples,
    Figure 3) rather than the constructor.

    Point queries are served through a lazily compiled
    :class:`~repro.queries.plan.CompiledQueryPlan` (one read arena spanning
    every partition plus the outlier sketch, answers bit-identical to the
    live per-partition path) with a generation-tagged hot-edge cache in
    front; the pre-plan routed path stays available as
    :meth:`query_edges_direct` / :meth:`confidence_batch_direct`.
    """

    def __init__(
        self,
        config: GSketchConfig,
        tree: PartitionTree,
        router: VertexRouter,
        stats: VertexStatistics,
        workload_weights: Optional[Mapping[Hashable, float]] = None,
    ) -> None:
        self.config = config
        self.tree = tree
        self.router = router
        self.stats = stats
        self.workload_weights = dict(workload_weights) if workload_weights else None

        self._partitions: List[CountMinSketch] = [
            make_partition_sketch(config, leaf) for leaf in tree.leaves
        ]
        self._outlier = make_outlier_sketch(config, tree.surplus_width)
        self._elements_processed = 0
        self._outlier_elements = 0
        self._batch_router = BatchRouter(router)
        self._init_query_plane()

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @staticmethod
    def _sample_statistics(
        sample: GraphStream, stream_size_hint: Optional[int]
    ) -> VertexStatistics:
        """Vertex statistics from the sample, extrapolated to stream scale.

        The split objectives are scale-invariant, but the Theorem-1
        termination criterion compares ``sum_m d̃(m)`` with absolute sketch
        widths, so the sample counts are scaled by the expected
        stream-to-sample size ratio when the caller can provide one.
        """
        stats = VertexStatistics.from_stream(sample)
        if stream_size_hint is not None and len(sample) > 0 and stream_size_hint > len(sample):
            sample_fraction = len(sample) / stream_size_hint
            stats = stats.extrapolated(sample_fraction)
        return stats

    @classmethod
    def build(
        cls,
        sample: GraphStream,
        config: GSketchConfig,
        stream_size_hint: Optional[int] = None,
    ) -> "GSketch":
        """Partition with a data sample only (Figure 2).

        Args:
            sample: the graph-stream data sample.
            config: space budget and termination constants.
            stream_size_hint: expected number of stream elements the sketch
                will absorb; used to extrapolate the sample statistics for the
                Theorem-1 termination criterion.  ``None`` keeps the raw
                sample counts.
        """
        stats = cls._sample_statistics(sample, stream_size_hint)
        tree = build_partition_tree(stats, config, workload_weights=None)
        router = VertexRouter.from_tree(tree)
        return cls(config=config, tree=tree, router=router, stats=stats)

    @classmethod
    def build_with_workload(
        cls,
        sample: GraphStream,
        workload: QueryWorkload | GraphStream,
        config: GSketchConfig,
        smoothing_alpha: float = 1.0,
        stream_size_hint: Optional[int] = None,
    ) -> "GSketch":
        """Partition with a data sample and a query workload sample (Figure 3).

        Args:
            sample: the graph-stream data sample.
            workload: either a :class:`~repro.queries.workload.QueryWorkload`
                or a :class:`~repro.graph.stream.GraphStream` whose elements
                are the workload-sample edges.
            config: space budget and termination constants.
            smoothing_alpha: Laplace pseudo-count for the vertex weights
                ``w̃(n)`` (Section 6.4).
            stream_size_hint: expected number of stream elements, used to
                extrapolate the sample statistics (see :meth:`build`).
        """
        stats = cls._sample_statistics(sample, stream_size_hint)
        if isinstance(workload, QueryWorkload):
            source_counts = workload.source_vertex_counts()
        else:
            source_counts = {
                vertex: float(freq) for vertex, freq in workload.vertex_frequencies().items()
            }
        weights = workload_vertex_weights(stats, source_counts, smoothing_alpha)
        tree = build_partition_tree(stats, config, workload_weights=weights)
        router = VertexRouter.from_tree(tree)
        return cls(config=config, tree=tree, router=router, stats=stats, workload_weights=weights)

    # ------------------------------------------------------------------ #
    # Stream maintenance
    # ------------------------------------------------------------------ #
    def update(self, source: Hashable, target: Hashable, frequency: float = 1.0) -> None:
        """Route one stream element to its localized (or outlier) sketch."""
        partition = self.router.partition_of(source)
        sketch = self._sketch_for(partition)
        sketch.update(edge_key(source, target), frequency)
        self._elements_processed += 1
        self._bump_generation()
        if partition == OUTLIER_PARTITION:
            self._outlier_elements += 1

    def update_edge(self, edge: StreamEdge) -> None:
        """Record one :class:`~repro.graph.edge.StreamEdge`."""
        self.update(edge.source, edge.target, edge.frequency)

    def ingest_batch(self, batch: EdgeBatch | Sequence[StreamEdge]) -> int:
        """Ingest one columnar block of stream elements.

        The block is hashed, routed and grouped by destination partition in a
        single vectorized pass (:class:`~repro.distributed.batch_router.BatchRouter`),
        then each group lands in its sketch via one
        :meth:`~repro.sketches.countmin.CountMinSketch.update_batch` call.
        Because the grouping sort is stable and partitions are independent
        sketches, the resulting counters are bit-identical to per-edge
        :meth:`update` calls in arrival order.

        Returns the number of elements ingested.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch.from_edges(list(batch))
        clock = stage_clock("ingest", INGEST_STAGE)
        routed = self._batch_router.route(batch)
        clock.lap("route")
        for group in routed.groups:
            self._sketch_for(group.partition).update_batch(group.keys, group.counts)
        clock.lap("apply")
        self._elements_processed += routed.num_elements
        self._outlier_elements += routed.outlier_count
        self._bump_generation()
        INGEST_BATCHES.inc()
        INGEST_ELEMENTS.inc(routed.num_elements)
        return routed.num_elements

    def process(
        self,
        stream: GraphStream | Iterable[StreamEdge],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Ingest an entire stream using vectorized batched updates.

        Semantically identical to calling :meth:`update` per element — the
        counters come out bit-identical — but hashing, routing and counter
        increments all run as array kernels per block of ``batch_size``
        elements.  Returns the number of elements processed.
        """
        processed = 0
        for batch in iter_edge_batches(stream, batch_size):
            processed += self.ingest_batch(batch)
        return processed

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_edge(self, edge: EdgeKey) -> float:
        """Estimate the aggregate frequency of a directed edge (Section 5).

        Served through the compiled plan (and hot-edge cache); bit-identical
        to the routed scalar lookup.
        """
        return float(self._planned_estimates([edge])[0])

    def query_edges(self, edges: Sequence[EdgeKey]) -> List[float]:
        """Estimate many edges at once, through the compiled query plan.

        One hash pass, one route, one fused gather across every involved
        partition — element-wise bit-identical to :meth:`query_edges_direct`.
        """
        return self._planned_estimates(edges).tolist()

    def query_edges_direct(self, edges: Sequence[EdgeKey]) -> List[float]:
        """The pre-plan routed path: group per partition, ``estimate_batch``
        per group.  Kept as the plan's parity oracle and benchmark baseline."""
        if len(edges) == 0:
            return []
        routed = self._batch_router.route_edges(edges)
        estimates = np.empty(len(edges), dtype=np.float64)
        for group in routed.groups:
            estimates[group.positions] = self._sketch_for(group.partition).estimate_batch(
                group.keys
            )
        return estimates.tolist()

    def query_subgraph(self, query: SubgraphQuery) -> float:
        """Estimate an aggregate subgraph query by per-edge decomposition.

        The constituent edges are estimated through the vectorized
        :meth:`query_edges` path (one route + one ``estimate_batch`` per
        involved partition) rather than per-edge scalar lookups.
        """
        return query.combine(self.query_edges(query.edges))

    def confidence(self, edge: EdgeKey) -> ConfidenceInterval:
        """Per-partition Equation-1 confidence interval for an edge estimate.

        Different queries get different intervals depending on the partition
        that answers them (Section 5).
        """
        source, _target = edge
        sketch = self._sketch_for(self.router.partition_of(source))
        return countmin_confidence(sketch, sketch.estimate(tuple(edge)))

    def confidence_batch(self, edges: Sequence[EdgeKey]) -> List[ConfidenceInterval]:
        """Equation-1 confidence intervals for many edges at once.

        Element-wise identical to calling :meth:`confidence` per edge; rides
        the compiled plan with the per-partition bound/failure constants
        gathered by partition slot.
        """
        return self.confidence_batch_with_partitions(edges)[0]

    def confidence_batch_with_partitions(
        self, edges: Sequence[EdgeKey]
    ) -> "tuple[List[ConfidenceInterval], List[int]]":
        """Intervals plus the partition id that answered each edge.

        One plan pass serves estimates, constants and provenance; the facade
        uses the partition column without re-routing the keys.  Bit-identical
        to :meth:`confidence_batch_direct`.
        """
        if len(edges) == 0:
            return [], []
        estimates, bounds, failures, partitions = self._planned_confidence(edges)
        return intervals_from_arrays(estimates, bounds, failures), partitions.tolist()

    def confidence_batch_direct(
        self, edges: Sequence[EdgeKey]
    ) -> "tuple[List[ConfidenceInterval], List[int]]":
        """The pre-plan routed confidence path (parity oracle)."""
        return routed_confidence_batch(self._batch_router, edges, self._sketch_for)

    def is_outlier_query(self, edge: EdgeKey) -> bool:
        """Whether the edge query would be answered by the outlier sketch."""
        return self.router.is_outlier(edge[0])

    # ------------------------------------------------------------------ #
    # Snapshot protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Complete estimator state: partitioning, counters and provenance.

        The snapshot is self-contained — :meth:`from_state` revives a sketch
        that routes, estimates and merges bit-identically — and includes the
        outlier sketch plus the ingest counters.
        """
        return {
            "config": self.config,
            "tree": self.tree,
            "router": self.router,
            "stats": self.stats,
            "workload_weights": self.workload_weights,
            "partitions": [sketch.state_dict() for sketch in self._partitions],
            "outlier": self._outlier.state_dict(),
            "elements_processed": self._elements_processed,
            "outlier_elements": self._outlier_elements,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GSketch":
        """Revive a sketch from a :meth:`state_dict` snapshot."""
        sketch = cls(
            config=state["config"],
            tree=state["tree"],
            router=state["router"],
            stats=state["stats"],
            workload_weights=state.get("workload_weights"),
        )
        partition_states = state["partitions"]
        if len(partition_states) != len(sketch._partitions):
            raise ValueError(
                f"snapshot has {len(partition_states)} partitions, tree expects "
                f"{len(sketch._partitions)}"
            )
        for partition, partition_state in zip(sketch._partitions, partition_states):
            partition.load_state(partition_state)
        sketch._outlier.load_state(state["outlier"])
        sketch._elements_processed = int(state["elements_processed"])
        sketch._outlier_elements = int(state["outlier_elements"])
        return sketch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _sketch_for(self, partition: int) -> CountMinSketch:
        if partition == OUTLIER_PARTITION:
            return self._outlier
        return self._partitions[partition]

    def _plan_layout(self):
        """Arena layout: localized sketches in leaf order, outlier last.

        The tables are privately owned, so the plan attaches them as
        zero-copy arena views — ingestion writes straight into the read
        arena and a refresh only re-derives the confidence constants.
        """
        return [*self._partitions, self._outlier], self.router, True

    @property
    def num_partitions(self) -> int:
        """Number of localized (non-outlier) partitions."""
        return len(self._partitions)

    @property
    def outlier_sketch(self) -> CountMinSketch:
        """The sketch serving vertices absent from the data sample."""
        return self._outlier

    @property
    def partitions(self) -> Sequence[CountMinSketch]:
        """The localized sketches, in leaf-index order."""
        return tuple(self._partitions)

    @property
    def elements_processed(self) -> int:
        """Number of stream elements ingested so far."""
        return self._elements_processed

    @property
    def outlier_elements(self) -> int:
        """Number of ingested elements routed to the outlier sketch."""
        return self._outlier_elements

    @property
    def total_frequency(self) -> float:
        """Total ingested frequency mass across all partitions."""
        return sum(s.total_count for s in self._partitions) + self._outlier.total_count

    @property
    def memory_cells(self) -> int:
        """Allocated counter cells across all partitions and the outlier sketch."""
        return sum(s.memory_cells for s in self._partitions) + self._outlier.memory_cells

    def partition_summaries(self) -> List[PartitionSummary]:
        """Per-partition summaries (the outlier sketch is index -1)."""
        summaries = [
            PartitionSummary(
                index=leaf.index,
                vertex_count=len(leaf.vertices),
                width=sketch.width,
                depth=sketch.depth,
                total_frequency=sketch.total_count,
                leaf_reason=leaf.leaf_reason,
            )
            for leaf, sketch in zip(self.tree.leaves, self._partitions)
        ]
        summaries.append(
            PartitionSummary(
                index=OUTLIER_PARTITION,
                vertex_count=0,
                width=self._outlier.width,
                depth=self._outlier.depth,
                total_frequency=self._outlier.total_count,
                leaf_reason="outlier",
            )
        )
        return summaries

    def telemetry_snapshot(self) -> dict:
        """Health telemetry: per-table saturation, outlier share, plan state.

        Computed lazily (``count_nonzero`` over every counter table) — call
        it at scrape/snapshot time, not per batch.
        """
        elements = self._elements_processed
        tables = [
            {"partition": index, **sketch_health(sketch)}
            for index, sketch in enumerate(self._partitions)
        ]
        tables.append(
            {"partition": OUTLIER_PARTITION, **sketch_health(self._outlier)}
        )
        return {
            "backend": "gsketch",
            "elements_processed": elements,
            "outlier_elements": self._outlier_elements,
            "outlier_share": self._outlier_elements / elements if elements else 0.0,
            "num_partitions": self.num_partitions,
            "memory_cells": self.memory_cells,
            "total_frequency": float(self.total_frequency),
            "tables": tables,
            **self._plan_telemetry(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GSketch(partitions={self.num_partitions}, cells={self.memory_cells}, "
            f"N={self.total_frequency:.0f})"
        )

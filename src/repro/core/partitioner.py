"""Sketch-partitioning algorithms (paper Figures 2 and 3).

Both scenarios share the same recursive structure: starting from a virtual
global sketch of width ``partitioned_width``, a node is split into two
children of half the width by choosing the pivot that minimizes the split
objective ``E'`` over vertices sorted by average edge frequency (data-only,
Equation 9) or by ``f̃_v / w̃`` (workload-aware, Equation 11).  A child stops
being split — and is materialized as a physical localized sketch — when either

1. its width would fall below the floor ``w0`` (criterion 1), or
2. its sampled distinct-edge count ``sum_m d̃(m)`` is at most ``C * width``
   (criterion 2, justified by Theorem 1's collision bound).

Leaves terminated by criterion 2 have their width shrunk to ``sum_m d̃(m)``
("the modest value" of Section 4.1); the saved cells are then redistributed
proportionally among the remaining leaves so the configured space budget is
fully used, which is the paper's stated intent for the saved space.

**Columnar build path.**  The sort key of both scenarios is *fixed per
vertex* — a node's sorted order is always a contiguous segment of the global
order — so :func:`build_partition_tree` sorts **once** at the root
(``np.lexsort`` over the key column with the scalar reference's ``repr``
tie-break) and from then on every tree node is a half-open index range
``[lo, hi)`` of that order.  Termination tests read a global degree prefix
sum, split objectives run the shared prefix-sum kernel
(:func:`~repro.core.errors.best_split_index`) on slices of two pre-gathered
term columns, and leaf materialization scores come from further prefix-sum
differences: zero per-node re-sorting and zero per-vertex Python work in the
recursion.  :func:`build_partition_tree_scalar` keeps the original per-node
implementation as the equivalence reference and benchmark baseline; the
golden tests in ``tests/test_columnar_build.py`` prove both produce
leaf-for-leaf identical trees.

One caveat on that identity: split objectives are evaluated with bit-identical
arithmetic (same cumsum over the same slice), but node degree sums come from
global prefix-sum *differences*, whose last-ULP rounding can differ from the
reference's sequential per-node sum.  The two builders could therefore
disagree only if a node's sampled edge count lands exactly on the
``C * width`` termination boundary (or a capacity exactly on a ``ceil``
integer boundary) within ~1 ULP — a measure-zero coincidence that does not
occur on the reference distributions the golden tests and benchmark pin down.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import GSketchConfig
from repro.core.errors import (
    SplitDecision,
    best_split_index,
    split_objective_data_only,
    split_objective_with_workload,
)
from repro.core.partition_tree import (
    LeafAssignments,
    PartitionLeaf,
    PartitionNode,
    PartitionTree,
)
from repro.graph.statistics import VertexStatistics
from repro.observability.instruments import BUILD_STAGE
from repro.observability.tracing import stage_clock


def _sampled_edge_count(vertices: Sequence[Hashable], stats: VertexStatistics) -> float:
    """``sum_m d̃(m)`` over the node's vertices (scalar reference path)."""
    return float(sum(stats.degree(v) for v in vertices))


def _should_keep_splitting(
    vertices: Sequence[Hashable],
    width: int,
    stats: VertexStatistics,
    config: GSketchConfig,
) -> Tuple[bool, Optional[str]]:
    """Decide whether a node remains active; returns ``(active, leaf_reason)``."""
    if len(vertices) < 2:
        return False, "too_few_vertices"
    if width < config.effective_width_floor:
        return False, "width_floor"
    if _sampled_edge_count(vertices, stats) <= config.collision_constant * width:
        return False, "collision_bound"
    return True, None


def _choose_split(
    vertices: Sequence[Hashable],
    stats: VertexStatistics,
    workload_weights: Optional[Mapping[Hashable, float]],
) -> SplitDecision:
    if workload_weights is None:
        return split_objective_data_only(vertices, stats)
    return split_objective_with_workload(vertices, stats, workload_weights)


def _empty_sample_tree(root_width: int) -> PartitionTree:
    """Degenerate case: an empty sample yields a single empty leaf so the
    outlier sketch ends up doing all the work."""
    root = PartitionNode(vertices=(), width=root_width, depth_in_tree=0)
    root.leaf_reason = "too_few_vertices"
    tree = PartitionTree(root=root)
    tree.leaves.append(
        PartitionLeaf(
            index=0,
            vertices=(),
            width=root_width,
            nominal_width=root_width,
            leaf_reason="too_few_vertices",
        )
    )
    tree.leaf_assignments = LeafAssignments(
        labels=[],
        int_labels=np.zeros(0, dtype=np.int64),
        partitions=np.zeros(0, dtype=np.int64),
    )
    return tree


# ---------------------------------------------------------------------- #
# Columnar build path (default)
# ---------------------------------------------------------------------- #
def build_partition_tree(
    stats: VertexStatistics,
    config: GSketchConfig,
    workload_weights: Optional[Mapping[Hashable, float]] = None,
) -> PartitionTree:
    """Run the sketch-partitioning algorithm of Figure 2 (or Figure 3).

    This is the columnar single-sort implementation (see the module
    docstring); it produces leaf-for-leaf the same tree as
    :func:`build_partition_tree_scalar`, in near-linear time.

    Args:
        stats: vertex statistics computed from the data sample.
        config: space budget and termination constants.
        workload_weights: smoothed relative vertex weights ``w̃(n)`` derived
            from the query workload sample; ``None`` selects the data-only
            objective (Figure 2), a mapping selects the workload-aware
            objective (Figure 3).

    Returns:
        The partitioning tree with its materializable leaves.  The sum of the
        final leaf widths never exceeds ``config.partitioned_width``.
    """
    n = len(stats)
    root_width = config.partitioned_width
    if n == 0:
        return _empty_sample_tree(root_width)

    clock = stage_clock("build", BUILD_STAGE)
    ids = stats.ids
    freq = stats.frequencies
    deg = stats.degrees
    average = stats.average_frequencies()
    reprs = np.array([repr(v) for v in ids])

    # Per-vertex sort keys and split-objective terms; both are fixed for the
    # whole build, which is what makes the single global sort sufficient.
    if workload_weights is None:
        sort_keys = average
        # d̃(m) / (f̃_v(m)/d̃(m)), with the reference's 1e-12 zero-average floor.
        ratio_raw = deg / np.where(average > 0, average, 1e-12)
        coefficients = deg
    else:
        weights = np.fromiter(
            (workload_weights.get(v, 0.0) for v in ids), dtype=np.float64, count=n
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            sort_keys = np.where(weights > 0, freq / weights, np.inf)
        # w̃(n) * d̃(n) / f̃_v(n), with the reference's 1e-12 zero-frequency floor.
        ratio_raw = weights * deg / np.where(freq != 0, freq, 1e-12)
        coefficients = weights

    # THE single sort: key-ordered with repr tie-break, exactly the order the
    # scalar reference re-derives at every node.
    order = np.lexsort((reprs, sort_keys))
    order_list = order.tolist()
    sorted_ids: List[Hashable] = [ids[i] for i in order_list]

    freq_terms = freq[order]
    ratio_terms = ratio_raw[order]
    degree_prefix = np.concatenate(([0.0], np.cumsum(deg[order])))
    frequency_prefix = np.concatenate(([0.0], np.cumsum(freq_terms)))
    # Equation 6 / Equation 10 coefficient column for leaf-width scoring:
    # coeff(m) / (f̃_v(m)/d̃(m)), zero where the average is undefined.
    with np.errstate(divide="ignore", invalid="ignore"):
        coeff_over_average = np.where(
            average > 0, coefficients / np.where(average > 0, average, 1.0), 0.0
        )[order]
    coefficient_prefix = np.concatenate(([0.0], np.cumsum(coeff_over_average)))
    clock.lap("lexsort")

    width_floor = config.effective_width_floor
    collision_constant = config.collision_constant

    def termination(lo: int, hi: int, width: int) -> Tuple[bool, Optional[str]]:
        if hi - lo < 2:
            return False, "too_few_vertices"
        if width < width_floor:
            return False, "width_floor"
        if float(degree_prefix[hi] - degree_prefix[lo]) <= collision_constant * width:
            return False, "collision_bound"
        return True, None

    # The root keeps the reference's repr-only order (it predates the first
    # key sort there); every other node is a contiguous range of the global
    # key order.
    root_vertices = tuple(ids[i] for i in np.argsort(reprs, kind="stable").tolist())
    root = PartitionNode(vertices=root_vertices, width=root_width, depth_in_tree=0)
    tree = PartitionTree(root=root)

    raw_leaves: List[Tuple[PartitionNode, int, int]] = []
    active: List[Tuple[PartitionNode, int, int]] = []

    keep_splitting, reason = termination(0, n, root_width)
    if keep_splitting:
        active.append((root, 0, n))
    else:
        root.leaf_reason = reason
        raw_leaves.append((root, 0, n))

    while active:
        node, lo, hi = active.pop()
        pivot_offset, _objective = best_split_index(
            freq_terms[lo:hi], ratio_terms[lo:hi]
        )
        pivot = lo + pivot_offset
        child_width = max(1, node.width // 2)
        left = PartitionNode(
            vertices=tuple(sorted_ids[lo:pivot]),
            width=child_width,
            depth_in_tree=node.depth_in_tree + 1,
        )
        right = PartitionNode(
            vertices=tuple(sorted_ids[pivot:hi]),
            width=child_width,
            depth_in_tree=node.depth_in_tree + 1,
        )
        node.left, node.right = left, right

        for child, child_lo, child_hi in ((left, lo, pivot), (right, pivot, hi)):
            keep, leaf_reason = termination(child_lo, child_hi, child.width)
            if keep:
                active.append((child, child_lo, child_hi))
            else:
                child.leaf_reason = leaf_reason
                raw_leaves.append((child, child_lo, child_hi))
    clock.lap("split")

    # ---- leaf materialization: scores from prefix-sum differences ---- #
    nominal_widths = [node.width for node, _lo, _hi in raw_leaves]
    reasons = [node.leaf_reason or "unknown" for node, _lo, _hi in raw_leaves]
    capacities = [
        max(1, int(math.ceil(float(degree_prefix[hi] - degree_prefix[lo]))))
        for _node, lo, hi in raw_leaves
    ]
    if config.width_allocation == "rebalanced":
        if workload_weights is None:
            scores = [float(capacity) for capacity in capacities]
        else:
            scores = [
                math.sqrt(
                    max(
                        float(frequency_prefix[hi] - frequency_prefix[lo])
                        * float(coefficient_prefix[hi] - coefficient_prefix[lo]),
                        0.0,
                    )
                )
                for _node, lo, hi in raw_leaves
            ]
        widths, surplus = _allocate_rebalanced(nominal_widths, scores, capacities)
    else:
        widths, surplus = _allocate_halving(nominal_widths, reasons, capacities)

    tree.leaves = [
        PartitionLeaf(
            index=index,
            vertices=node.vertices,
            width=max(1, width),
            nominal_width=node.width,
            leaf_reason=reason,
        )
        for index, ((node, _lo, _hi), width, reason) in enumerate(
            zip(raw_leaves, widths, reasons)
        )
    ]
    tree.surplus_width = surplus

    # Columnar vertex → leaf assignment: each leaf is one contiguous range of
    # the sorted order, so the router is built by pure array writes.
    partitions = np.empty(n, dtype=np.int64)
    for index, (_node, lo, hi) in enumerate(raw_leaves):
        partitions[lo:hi] = index
    int_ids = stats.int_ids
    tree.leaf_assignments = LeafAssignments(
        labels=sorted_ids,
        int_labels=int_ids[order] if int_ids is not None else None,
        partitions=partitions,
    )
    clock.lap("materialize")
    return tree


# ---------------------------------------------------------------------- #
# Scalar reference path (the pre-columnar implementation)
# ---------------------------------------------------------------------- #
def build_partition_tree_scalar(
    stats: VertexStatistics,
    config: GSketchConfig,
    workload_weights: Optional[Mapping[Hashable, float]] = None,
) -> PartitionTree:
    """The original per-node implementation of Figures 2 and 3.

    Kept as the golden reference for the columnar builder: every tree node
    re-sorts its vertex list with Python key functions and every decision
    walks per-vertex dictionaries.  ``experiments/build_bench.py`` measures
    the columnar speedup against this path, and the equivalence tests assert
    leaf-for-leaf identical output.
    """
    vertices: Tuple[Hashable, ...] = tuple(sorted(stats.vertices(), key=repr))
    root_width = config.partitioned_width
    if not vertices:
        tree = _empty_sample_tree(root_width)
        tree.leaf_assignments = None  # the scalar path carries no columns
        return tree

    root = PartitionNode(vertices=vertices, width=root_width, depth_in_tree=0)
    tree = PartitionTree(root=root)

    raw_leaves: List[PartitionNode] = []
    active: List[PartitionNode] = []

    keep_splitting, reason = _should_keep_splitting(vertices, root_width, stats, config)
    if keep_splitting:
        active.append(root)
    else:
        root.leaf_reason = reason
        raw_leaves.append(root)

    while active:
        node = active.pop()
        decision = _choose_split(node.vertices, stats, workload_weights)
        child_width = max(1, node.width // 2)
        left = PartitionNode(
            vertices=decision.left, width=child_width, depth_in_tree=node.depth_in_tree + 1
        )
        right = PartitionNode(
            vertices=decision.right, width=child_width, depth_in_tree=node.depth_in_tree + 1
        )
        node.left, node.right = left, right

        for child in (left, right):
            keep, leaf_reason = _should_keep_splitting(
                child.vertices, child.width, stats, config
            )
            if keep:
                active.append(child)
            else:
                child.leaf_reason = leaf_reason
                raw_leaves.append(child)

    nominal_widths = [node.width for node in raw_leaves]
    reasons = [node.leaf_reason or "unknown" for node in raw_leaves]
    capacities = [
        max(1, int(math.ceil(_sampled_edge_count(node.vertices, stats))))
        for node in raw_leaves
    ]
    if config.width_allocation == "rebalanced":
        if workload_weights is None:
            scores = [float(capacity) for capacity in capacities]
        else:
            scores = []
            for node in raw_leaves:
                frequency, coefficient = _leaf_error_coefficients(
                    node.vertices, stats, workload_weights
                )
                scores.append(math.sqrt(max(frequency * coefficient, 0.0)))
        widths, surplus = _allocate_rebalanced(nominal_widths, scores, capacities)
    else:
        widths, surplus = _allocate_halving(nominal_widths, reasons, capacities)

    tree.leaves = [
        PartitionLeaf(
            index=index,
            vertices=tuple(node.vertices),
            width=max(1, width),
            nominal_width=node.width,
            leaf_reason=reason,
        )
        for index, (node, width, reason) in enumerate(zip(raw_leaves, widths, reasons))
    ]
    tree.surplus_width = surplus
    return tree


def _leaf_error_coefficients(
    vertices: Sequence[Hashable],
    stats: VertexStatistics,
    workload_weights: Optional[Mapping[Hashable, float]],
) -> Tuple[float, float]:
    """Return ``(F, G)`` such that the leaf's modeled error is ``F * G / width``.

    ``F`` is the leaf's estimated total frequency (Equation 5) and ``G`` the
    coefficient ``sum_m coeff(m) / (f̃_v(m)/d̃(m))`` from Equation 6 (data-only,
    ``coeff = d̃``) or Equation 10 (workload-aware, ``coeff = w̃``).
    """
    total_frequency = sum(stats.frequency(v) for v in vertices)
    coefficient_sum = 0.0
    for vertex in vertices:
        average = stats.average_edge_frequency(vertex)
        if average <= 0:
            continue
        if workload_weights is None:
            coefficient = stats.degree(vertex)
        else:
            coefficient = workload_weights.get(vertex, 0.0)
        coefficient_sum += coefficient / average
    return total_frequency, coefficient_sum


# ---------------------------------------------------------------------- #
# Width allocation (shared by both build paths)
# ---------------------------------------------------------------------- #
def _allocate_rebalanced(
    nominal_widths: Sequence[int],
    scores: Sequence[float],
    capacities: Sequence[int],
) -> Tuple[List[int], int]:
    """Allocate the width budget optimally across the tree's leaf groups.

    The partitioning tree decides *which* vertices share a localized sketch;
    the per-leaf widths are then set to the continuous minimizer of the
    paper's objective ``sum_i F_i * G_i / w_i`` subject to
    ``sum_i w_i = partitioned_width``, i.e. ``w_i ∝ sqrt(F_i * G_i)``.  The
    recursive halving plus the Section 4.1 shrink-and-redistribute rule is a
    coarse approximation of this optimum; applying the closed form directly
    keeps lightly-loaded partitions from hoarding cells at reproduction scale
    (see DESIGN.md).  Leaves whose sampled edge population already fits their
    optimal width (Theorem 1) are capped at ``sum_m d̃(m)`` exactly as in the
    paper, and any resulting surplus is re-offered to the remaining leaves.

    In the data-only scenario the score is the leaf's Theorem-1 capacity
    (width proportional to the sampled distinct-edge population equalizes the
    per-partition collision probability, hence the expected *relative* error);
    with a workload sample it is ``sqrt(F_i * G_i)`` (Equation 10).
    """
    count = len(nominal_widths)
    total_width = sum(nominal_widths)
    widths = [1] * count
    remaining_width = total_width
    active = list(range(count))
    # Iteratively assign sqrt-proportional widths, capping each leaf at its
    # Theorem-1 capacity (a leaf never benefits from more cells than distinct
    # edges) and re-offering the excess to the still-uncapped leaves.
    for _ in range(count):
        score_total = sum(scores[i] for i in active)
        if remaining_width <= 0 or not active or score_total <= 0:
            break
        capped = []
        assigned_this_round = {}
        for i in active:
            share = max(1, int(round(remaining_width * scores[i] / score_total)))
            if share >= capacities[i]:
                assigned_this_round[i] = capacities[i]
                capped.append(i)
            else:
                assigned_this_round[i] = share
        if not capped:
            for i in active:
                widths[i] = assigned_this_round[i]
            remaining_width -= sum(assigned_this_round.values())
            active = []
            break
        for i in capped:
            widths[i] = capacities[i]
            remaining_width -= capacities[i]
            active.remove(i)
    # Rounding in the proportional shares can overshoot the budget by a few
    # cells; trim the widest leaves back until the budget is respected.
    overshoot = sum(widths) - total_width
    while overshoot > 0:
        widest = max(range(len(widths)), key=widths.__getitem__)
        if widths[widest] <= 1:
            break
        reduction = min(overshoot, widths[widest] - 1)
        widths[widest] -= reduction
        overshoot -= reduction
    surplus = max(0, total_width - sum(widths))
    return widths, surplus


def _allocate_halving(
    nominal_widths: Sequence[int],
    reasons: Sequence[str],
    capacities: Sequence[int],
) -> Tuple[List[int], int]:
    """Shrink collision-bound leaves and redistribute the saved width.

    Width accounting: recursive halving means the nominal widths of the raw
    leaves sum to at most ``partitioned_width``.  Criterion-2 leaves only need
    ``sum_m d̃(m)`` cells per row (Theorem 1 keeps their collision probability
    below ``C`` even at that width), so the surplus is handed to the other
    leaves proportionally to their nominal widths.
    """
    shrunk_widths: List[int] = []
    saved = 0
    for width, reason, capacity in zip(nominal_widths, reasons, capacities):
        if reason == "collision_bound":
            final = min(width, capacity)
            saved += width - final
        else:
            final = width
        shrunk_widths.append(final)

    growable = [i for i, reason in enumerate(reasons) if reason != "collision_bound"]
    surplus = 0
    if saved > 0 and growable:
        nominal_total = sum(nominal_widths[i] for i in growable)
        remaining = saved
        for position, i in enumerate(growable):
            if position == len(growable) - 1:
                bonus = remaining
            else:
                bonus = int(saved * nominal_widths[i] / nominal_total)
            shrunk_widths[i] += bonus
            remaining -= bonus
    elif saved > 0:
        # Every leaf terminated via Theorem 1, so none of them needs the saved
        # space; hand it to the outlier sketch instead of wasting it.
        surplus = saved
    return shrunk_widths, surplus


def workload_vertex_weights(
    stats: VertexStatistics,
    workload_source_counts: Mapping[Hashable, float],
    smoothing_alpha: float = 1.0,
) -> Dict[Hashable, float]:
    """Derive smoothed relative vertex weights ``w̃(n)`` for Figure 3.

    The weights are defined over the *data sample's* source vertices; vertices
    that never appear in the workload sample receive the Laplace-smoothed
    floor rather than zero (Section 6.4).
    """
    from repro.graph.smoothing import laplace_smoothed_weights

    return laplace_smoothed_weights(
        counts=workload_source_counts,
        vocabulary=stats.vertices(),
        alpha=smoothing_alpha,
    )

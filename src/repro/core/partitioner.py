"""Sketch-partitioning algorithms (paper Figures 2 and 3).

Both scenarios share the same recursive structure: starting from a virtual
global sketch of width ``partitioned_width``, a node is split into two
children of half the width by choosing the pivot that minimizes the split
objective ``E'`` over vertices sorted by average edge frequency (data-only,
Equation 9) or by ``f̃_v / w̃`` (workload-aware, Equation 11).  A child stops
being split — and is materialized as a physical localized sketch — when either

1. its width would fall below the floor ``w0`` (criterion 1), or
2. its sampled distinct-edge count ``sum_m d̃(m)`` is at most ``C * width``
   (criterion 2, justified by Theorem 1's collision bound).

Leaves terminated by criterion 2 have their width shrunk to ``sum_m d̃(m)``
("the modest value" of Section 4.1); the saved cells are then redistributed
proportionally among the remaining leaves so the configured space budget is
fully used, which is the paper's stated intent for the saved space.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import GSketchConfig
from repro.core.errors import (
    SplitDecision,
    split_objective_data_only,
    split_objective_with_workload,
)
from repro.core.partition_tree import PartitionLeaf, PartitionNode, PartitionTree
from repro.graph.statistics import VertexStatistics


def _sampled_edge_count(vertices: Sequence[Hashable], stats: VertexStatistics) -> float:
    """``sum_m d̃(m)`` over the node's vertices."""
    return float(sum(stats.degree(v) for v in vertices))


def _should_keep_splitting(
    vertices: Sequence[Hashable],
    width: int,
    stats: VertexStatistics,
    config: GSketchConfig,
) -> Tuple[bool, Optional[str]]:
    """Decide whether a node remains active; returns ``(active, leaf_reason)``."""
    if len(vertices) < 2:
        return False, "too_few_vertices"
    if width < config.effective_width_floor:
        return False, "width_floor"
    if _sampled_edge_count(vertices, stats) <= config.collision_constant * width:
        return False, "collision_bound"
    return True, None


def _choose_split(
    vertices: Sequence[Hashable],
    stats: VertexStatistics,
    workload_weights: Optional[Mapping[Hashable, float]],
) -> SplitDecision:
    if workload_weights is None:
        return split_objective_data_only(vertices, stats)
    return split_objective_with_workload(vertices, stats, workload_weights)


def build_partition_tree(
    stats: VertexStatistics,
    config: GSketchConfig,
    workload_weights: Optional[Mapping[Hashable, float]] = None,
) -> PartitionTree:
    """Run the sketch-partitioning algorithm of Figure 2 (or Figure 3).

    Args:
        stats: vertex statistics computed from the data sample.
        config: space budget and termination constants.
        workload_weights: smoothed relative vertex weights ``w̃(n)`` derived
            from the query workload sample; ``None`` selects the data-only
            objective (Figure 2), a mapping selects the workload-aware
            objective (Figure 3).

    Returns:
        The partitioning tree with its materializable leaves.  The sum of the
        final leaf widths never exceeds ``config.partitioned_width``.
    """
    vertices: Tuple[Hashable, ...] = tuple(
        sorted(stats.vertices(), key=repr)
    )
    root_width = config.partitioned_width
    root = PartitionNode(vertices=vertices, width=root_width, depth_in_tree=0)
    tree = PartitionTree(root=root)

    if not vertices:
        # Degenerate case: an empty sample yields a single empty leaf so the
        # outlier sketch ends up doing all the work.
        root.leaf_reason = "too_few_vertices"
        tree.leaves.append(
            PartitionLeaf(
                index=0,
                vertices=(),
                width=root_width,
                nominal_width=root_width,
                leaf_reason="too_few_vertices",
            )
        )
        return tree

    raw_leaves: List[PartitionNode] = []
    active: List[PartitionNode] = []

    keep_splitting, reason = _should_keep_splitting(vertices, root_width, stats, config)
    if keep_splitting:
        active.append(root)
    else:
        root.leaf_reason = reason
        raw_leaves.append(root)

    while active:
        node = active.pop()
        decision = _choose_split(node.vertices, stats, workload_weights)
        child_width = max(1, node.width // 2)
        left = PartitionNode(
            vertices=decision.left, width=child_width, depth_in_tree=node.depth_in_tree + 1
        )
        right = PartitionNode(
            vertices=decision.right, width=child_width, depth_in_tree=node.depth_in_tree + 1
        )
        node.left, node.right = left, right

        for child in (left, right):
            keep, leaf_reason = _should_keep_splitting(
                child.vertices, child.width, stats, config
            )
            if keep:
                active.append(child)
            else:
                child.leaf_reason = leaf_reason
                raw_leaves.append(child)

    if config.width_allocation == "rebalanced":
        tree.leaves, tree.surplus_width = _materialize_leaves_rebalanced(
            raw_leaves, stats, config, workload_weights
        )
    else:
        tree.leaves, tree.surplus_width = _materialize_leaves(raw_leaves, stats, config)
    return tree


def _leaf_error_coefficients(
    vertices: Sequence[Hashable],
    stats: VertexStatistics,
    workload_weights: Optional[Mapping[Hashable, float]],
) -> Tuple[float, float]:
    """Return ``(F, G)`` such that the leaf's modeled error is ``F * G / width``.

    ``F`` is the leaf's estimated total frequency (Equation 5) and ``G`` the
    coefficient ``sum_m coeff(m) / (f̃_v(m)/d̃(m))`` from Equation 6 (data-only,
    ``coeff = d̃``) or Equation 10 (workload-aware, ``coeff = w̃``).
    """
    total_frequency = sum(stats.frequency(v) for v in vertices)
    coefficient_sum = 0.0
    for vertex in vertices:
        average = stats.average_edge_frequency(vertex)
        if average <= 0:
            continue
        if workload_weights is None:
            coefficient = stats.degree(vertex)
        else:
            coefficient = workload_weights.get(vertex, 0.0)
        coefficient_sum += coefficient / average
    return total_frequency, coefficient_sum


def _materialize_leaves_rebalanced(
    raw_leaves: Sequence[PartitionNode],
    stats: VertexStatistics,
    config: GSketchConfig,
    workload_weights: Optional[Mapping[Hashable, float]],
) -> Tuple[List[PartitionLeaf], int]:
    """Allocate the width budget optimally across the tree's leaf groups.

    The partitioning tree decides *which* vertices share a localized sketch;
    the per-leaf widths are then set to the continuous minimizer of the
    paper's objective ``sum_i F_i * G_i / w_i`` subject to
    ``sum_i w_i = partitioned_width``, i.e. ``w_i ∝ sqrt(F_i * G_i)``.  The
    recursive halving plus the Section 4.1 shrink-and-redistribute rule is a
    coarse approximation of this optimum; applying the closed form directly
    keeps lightly-loaded partitions from hoarding cells at reproduction scale
    (see DESIGN.md).  Leaves whose sampled edge population already fits their
    optimal width (Theorem 1) are capped at ``sum_m d̃(m)`` exactly as in the
    paper, and any resulting surplus is re-offered to the remaining leaves.
    """
    total_width = sum(node.width for node in raw_leaves)
    scores = []
    capacities = []
    for node in raw_leaves:
        capacity = max(1, int(math.ceil(_sampled_edge_count(node.vertices, stats))))
        if workload_weights is None:
            # Width proportional to the partition's estimated distinct-edge
            # population equalizes the per-partition collision probability
            # (the Theorem-1 quantity) and therefore the expected *relative*
            # error of the queries each partition serves.
            score = float(capacity)
        else:
            # With a workload sample, weight the demand by how often the
            # partition's vertices are actually queried (Equation 10).
            frequency, coefficient = _leaf_error_coefficients(
                node.vertices, stats, workload_weights
            )
            score = math.sqrt(max(frequency * coefficient, 0.0))
        scores.append(score)
        capacities.append(capacity)

    widths = [1] * len(raw_leaves)
    remaining_width = total_width
    active = list(range(len(raw_leaves)))
    # Iteratively assign sqrt-proportional widths, capping each leaf at its
    # Theorem-1 capacity (a leaf never benefits from more cells than distinct
    # edges) and re-offering the excess to the still-uncapped leaves.
    for _ in range(len(raw_leaves)):
        score_total = sum(scores[i] for i in active)
        if remaining_width <= 0 or not active or score_total <= 0:
            break
        capped = []
        assigned_this_round = {}
        for i in active:
            share = max(1, int(round(remaining_width * scores[i] / score_total)))
            if share >= capacities[i]:
                assigned_this_round[i] = capacities[i]
                capped.append(i)
            else:
                assigned_this_round[i] = share
        if not capped:
            for i in active:
                widths[i] = assigned_this_round[i]
            remaining_width -= sum(assigned_this_round.values())
            active = []
            break
        for i in capped:
            widths[i] = capacities[i]
            remaining_width -= capacities[i]
            active.remove(i)
    # Rounding in the proportional shares can overshoot the budget by a few
    # cells; trim the widest leaves back until the budget is respected.
    overshoot = sum(widths) - total_width
    while overshoot > 0:
        widest = max(range(len(widths)), key=widths.__getitem__)
        if widths[widest] <= 1:
            break
        reduction = min(overshoot, widths[widest] - 1)
        widths[widest] -= reduction
        overshoot -= reduction
    surplus = max(0, total_width - sum(widths))

    leaves = []
    for index, (node, width) in enumerate(zip(raw_leaves, widths)):
        leaves.append(
            PartitionLeaf(
                index=index,
                vertices=tuple(node.vertices),
                width=max(1, width),
                nominal_width=node.width,
                leaf_reason=node.leaf_reason or "unknown",
            )
        )
    return leaves, surplus


def _materialize_leaves(
    raw_leaves: Sequence[PartitionNode],
    stats: VertexStatistics,
    config: GSketchConfig,
) -> Tuple[List[PartitionLeaf], int]:
    """Shrink collision-bound leaves and redistribute the saved width.

    Width accounting: recursive halving means the nominal widths of the raw
    leaves sum to at most ``partitioned_width``.  Criterion-2 leaves only need
    ``sum_m d̃(m)`` cells per row (Theorem 1 keeps their collision probability
    below ``C`` even at that width), so the surplus is handed to the other
    leaves proportionally to their nominal widths.
    """
    shrunk_widths: List[int] = []
    saved = 0
    for node in raw_leaves:
        if node.leaf_reason == "collision_bound":
            needed = max(1, int(math.ceil(_sampled_edge_count(node.vertices, stats))))
            final = min(node.width, needed)
            saved += node.width - final
        else:
            final = node.width
        shrunk_widths.append(final)

    growable = [
        i for i, node in enumerate(raw_leaves) if node.leaf_reason != "collision_bound"
    ]
    surplus = 0
    if saved > 0 and growable:
        nominal_total = sum(raw_leaves[i].width for i in growable)
        remaining = saved
        for position, i in enumerate(growable):
            if position == len(growable) - 1:
                bonus = remaining
            else:
                bonus = int(saved * raw_leaves[i].width / nominal_total)
            shrunk_widths[i] += bonus
            remaining -= bonus
    elif saved > 0:
        # Every leaf terminated via Theorem 1, so none of them needs the saved
        # space; hand it to the outlier sketch instead of wasting it.
        surplus = saved

    leaves = []
    for index, (node, width) in enumerate(zip(raw_leaves, shrunk_widths)):
        leaves.append(
            PartitionLeaf(
                index=index,
                vertices=tuple(node.vertices),
                width=max(1, width),
                nominal_width=node.width,
                leaf_reason=node.leaf_reason or "unknown",
            )
        )
    return leaves, surplus


def workload_vertex_weights(
    stats: VertexStatistics,
    workload_source_counts: Mapping[Hashable, float],
    smoothing_alpha: float = 1.0,
) -> Dict[Hashable, float]:
    """Derive smoothed relative vertex weights ``w̃(n)`` for Figure 3.

    The weights are defined over the *data sample's* source vertices; vertices
    that never appear in the workload sample receive the Laplace-smoothed
    floor rather than zero (Section 6.4).
    """
    from repro.graph.smoothing import laplace_smoothed_weights

    return laplace_smoothed_weights(
        counts=workload_source_counts,
        vocabulary=stats.vertices(),
        alpha=smoothing_alpha,
    )

"""The vertex → partition hash structure ``H`` (Section 5).

Sketch partitioning is an offline pre-processing step; at stream time every
incoming edge ``(m, n)`` is routed by its *source vertex* ``m`` to the
localized sketch ``H(m)``.  Vertices that never appeared in the data sample
are routed to the dedicated outlier partition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.partition_tree import PartitionTree

#: Sentinel partition index meaning "the outlier sketch".
OUTLIER_PARTITION = -1


class VertexRouter:
    """Maps source vertices to partition indices.

    Args:
        assignments: mapping from vertex to partition index (leaf index in the
            partitioning tree).
        num_partitions: number of non-outlier partitions; indices in
            ``assignments`` must lie in ``[0, num_partitions)``.
    """

    def __init__(self, assignments: Mapping[Hashable, int], num_partitions: int) -> None:
        if num_partitions < 0:
            raise ValueError("num_partitions must be >= 0")
        for vertex, index in assignments.items():
            if not 0 <= index < num_partitions:
                raise ValueError(
                    f"vertex {vertex!r} assigned to partition {index}, but only "
                    f"{num_partitions} partitions exist"
                )
        self._assignments: Dict[Hashable, int] = dict(assignments)
        self._num_partitions = num_partitions
        self._int_lookup = self._build_int_lookup()

    @classmethod
    def from_arrays(
        cls,
        labels: Sequence[Hashable],
        int_labels: Optional[np.ndarray],
        partitions: np.ndarray,
        num_partitions: int,
    ) -> "VertexRouter":
        """Build a router from parallel assignment columns, vectorized.

        Validation is one min/max reduction instead of a per-vertex range
        check, and for integer label spaces the ``searchsorted`` lookup table
        comes from a single argsort of ``int_labels`` — no per-vertex Python
        work beyond the (C-speed) construction of the scalar fallback dict.

        Args:
            labels: vertex labels, one per routed vertex.
            int_labels: the same labels as an ``int64`` array when the label
                space is pure integers, else ``None``.
            partitions: partition index per vertex, aligned with ``labels``.
            num_partitions: number of non-outlier partitions.
        """
        if num_partitions < 0:
            raise ValueError("num_partitions must be >= 0")
        partitions = np.asarray(partitions, dtype=np.int64)
        if len(partitions) != len(labels):
            raise ValueError("labels and partitions must be parallel columns")
        if len(partitions) and (
            partitions.min() < 0 or partitions.max() >= num_partitions
        ):
            raise ValueError(
                f"partition indices must lie in [0, {num_partitions}), got range "
                f"[{int(partitions.min())}, {int(partitions.max())}]"
            )
        router = cls.__new__(cls)
        router._assignments = dict(zip(labels, partitions.tolist()))
        router._num_partitions = num_partitions
        if int_labels is not None and len(int_labels) == len(labels) and len(labels):
            int_labels = np.asarray(int_labels, dtype=np.int64)
            order = np.argsort(int_labels, kind="stable")
            router._int_lookup = (int_labels[order], partitions[order])
        else:
            router._int_lookup = router._build_int_lookup()
        return router

    @classmethod
    def from_tree(cls, tree: "PartitionTree") -> "VertexRouter":
        """Build the hash structure ``H`` for a partitioning tree.

        Trees from the columnar builder carry ready-made assignment columns
        (:attr:`~repro.core.partition_tree.PartitionTree.leaf_assignments`);
        scalar-built trees fall back to the per-leaf vertex tuples.
        """
        assignments = tree.leaf_assignments
        if assignments is None:
            return cls(tree.vertex_partition_map(), num_partitions=len(tree.leaves))
        return cls.from_arrays(
            labels=assignments.labels,
            int_labels=assignments.int_labels,
            partitions=assignments.partitions,
            num_partitions=len(tree.leaves),
        )

    def _build_int_lookup(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Sorted ``(keys, partitions)`` arrays for vectorized integer routing.

        Only built when every routed vertex is a genuine integer (the common
        case for the bundled generators); mixed or non-integer label spaces
        fall back to the dictionary path.
        """
        if not self._assignments:
            return None
        keys = []
        values = []
        for vertex, index in self._assignments.items():
            if isinstance(vertex, bool) or not isinstance(vertex, (int, np.integer)):
                return None
            keys.append(int(vertex))
            values.append(index)
        try:
            key_arr = np.asarray(keys, dtype=np.int64)
        except OverflowError:
            return None
        value_arr = np.asarray(values, dtype=np.int64)
        order = np.argsort(key_arr, kind="stable")
        return key_arr[order], value_arr[order]

    @property
    def num_partitions(self) -> int:
        """Number of non-outlier partitions."""
        return self._num_partitions

    def __len__(self) -> int:
        return len(self._assignments)

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._assignments

    def partition_of(self, vertex: Hashable) -> int:
        """Partition index for ``vertex``; :data:`OUTLIER_PARTITION` if unseen."""
        return self._assignments.get(vertex, OUTLIER_PARTITION)

    def route_batch(self, sources: Sequence[Hashable] | np.ndarray) -> np.ndarray:
        """Partition indices for a block of source vertices.

        Integer-labelled blocks are routed with one ``searchsorted`` over the
        pre-sorted assignment table; anything else falls back to per-vertex
        dictionary lookups.  The result always agrees element-wise with
        :meth:`partition_of`.

        Returns:
            ``int64`` array with one partition index per source;
            :data:`OUTLIER_PARTITION` marks vertices served by the outlier
            sketch.
        """
        arr = np.asarray(sources)
        if self._int_lookup is not None and arr.dtype.kind in "iu" and arr.dtype != np.uint64:
            keys, values = self._int_lookup
            arr = arr.astype(np.int64, copy=False)
            positions = np.searchsorted(keys, arr)
            positions_clipped = np.minimum(positions, len(keys) - 1)
            found = keys[positions_clipped] == arr
            return np.where(found, values[positions_clipped], OUTLIER_PARTITION).astype(
                np.int64
            )
        items = arr.tolist()
        return np.fromiter(
            (self._assignments.get(v, OUTLIER_PARTITION) for v in items),
            dtype=np.int64,
            count=len(arr),
        )

    def lookup_arrays(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The sorted ``(vertex, partition)`` int64 lookup columns, if vectorized.

        ``None`` for non-integer label spaces (which route through the
        dictionary path).  The reader pool ships these columns into shared
        memory so worker processes can route with one ``searchsorted``,
        bit-identically to :meth:`route_batch`.
        """
        return self._int_lookup

    def is_outlier(self, vertex: Hashable) -> bool:
        """Whether ``vertex`` is served by the outlier sketch."""
        return vertex not in self._assignments

    def vertices_of(self, partition: int) -> Iterable[Hashable]:
        """All vertices routed to the given partition (slow; for diagnostics)."""
        return (v for v, p in self._assignments.items() if p == partition)

    def partition_sizes(self) -> Dict[int, int]:
        """Number of routed vertices per partition index."""
        sizes: Dict[int, int] = {}
        for index in self._assignments.values():
            sizes[index] = sizes.get(index, 0) + 1
        return sizes

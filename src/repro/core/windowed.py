"""Time-windowed gSketch maintenance (Section 5, "dynamic queries").

Users may ask for edge frequencies over specific time windows (last month,
last year, ...).  The paper's prescription: divide the time line into
intervals, keep per-window sketch statistics, and partition each window using
a reservoir sample drawn from the *previous* window.  Queries over an
arbitrary interval are answered by extrapolating from the stored windows that
overlap it.

:class:`WindowedGSketch` implements that scheme on top of :class:`GSketch`:

* the first window has no preceding sample, so it is served by a single
  unpartitioned sketch (equivalent to a Global Sketch of the same budget);
* while window ``k`` is being ingested, a reservoir sample of its elements is
  collected; when window ``k + 1`` opens, that sample drives the partitioning
  of window ``k + 1``'s gSketch;
* interval queries sum the per-window estimates, scaling the two boundary
  windows by their fractional overlap with the query interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.config import GSketchConfig
from repro.core.estimator import ConfidenceInterval, intervals_from_arrays
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge
from repro.graph.stream import GraphStream
from repro.queries.plan import HOT_CACHE_MAX_BATCH, HotEdgeCache
from repro.queries.subgraph_query import SubgraphQuery
from repro.sketches.hashing import key_to_uint64
from repro.utils.rng import resolve_rng
from repro.utils.validation import require_positive, require_positive_int


@dataclass
class _WindowState:
    """One time window's estimator plus its start time."""

    index: int
    estimator: GSketch | GlobalSketch

    def query_edge(self, edge: EdgeKey) -> float:
        return self.estimator.query_edge(edge)


class WindowedGSketch:
    """Maintains one estimator per fixed-length time window.

    Args:
        config: per-window space budget (each window gets its own sketches).
        window_length: length of each time window, in the stream's timestamp
            units.
        sample_size: reservoir size collected per window to partition the
            next window.
        seed: RNG seed for reservoir sampling.
    """

    def __init__(
        self,
        config: GSketchConfig,
        window_length: float,
        sample_size: int = 5_000,
        seed: int = 7,
    ) -> None:
        self.config = config
        self.window_length = require_positive(window_length, "window_length")
        self.sample_size = require_positive_int(sample_size, "sample_size")
        self._rng = resolve_rng(seed)
        self._windows: Dict[int, _WindowState] = {}
        self._current_window: Optional[int] = None
        self._reservoir: List[StreamEdge] = []
        self._reservoir_seen = 0
        self._previous_sample: Optional[GraphStream] = None
        self._previous_window_size = 0
        self._elements_processed = 0
        self._generation = 0
        self._hot_cache = HotEdgeCache()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def window_of(self, timestamp: float) -> int:
        """Index of the window containing ``timestamp``."""
        return int(math.floor(timestamp / self.window_length))

    def observe(self, edge: StreamEdge) -> None:
        """Ingest one stream element (elements must arrive in timestamp order)."""
        window = self.window_of(edge.timestamp)
        if self._current_window is None:
            self._open_window(window)
        elif window > self._current_window:
            self._roll_to(window)
        elif window < self._current_window:
            raise ValueError(
                f"out-of-order element: timestamp {edge.timestamp} belongs to window "
                f"{window} but window {self._current_window} is already open"
            )
        state = self._windows[self._current_window]
        state.estimator.update(edge.source, edge.target, edge.frequency)
        self._reservoir_insert(edge)
        self._elements_processed += 1
        self._generation += 1

    def ingest_batch(self, batch: EdgeBatch | Sequence[StreamEdge]) -> int:
        """Ingest one block of (timestamp-ordered) stream elements.

        Window rolling and reservoir sampling are inherently sequential in
        timestamp order, so the block is walked per element; the method exists
        so windowed estimators satisfy the same
        :class:`~repro.api.protocol.Estimator` surface as the other backends.
        Returns the number of elements ingested.
        """
        edges: Iterable[StreamEdge]
        if isinstance(batch, EdgeBatch):
            edges = batch.iter_edges()
        else:
            edges = batch
        count = 0
        for edge in edges:
            self.observe(edge if isinstance(edge, StreamEdge) else StreamEdge(*edge))
            count += 1
        return count

    def process(self, stream: GraphStream) -> int:
        """Ingest an entire (timestamp-ordered) stream."""
        count = 0
        for edge in stream:
            self.observe(edge)
            count += 1
        return count

    def _reservoir_insert(self, edge: StreamEdge) -> None:
        if len(self._reservoir) < self.sample_size:
            self._reservoir.append(edge)
        else:
            slot = int(self._rng.integers(0, self._reservoir_seen + 1))
            if slot < self.sample_size:
                self._reservoir[slot] = edge
        self._reservoir_seen += 1

    def _open_window(self, window: int) -> None:
        if self._previous_sample is not None and len(self._previous_sample) > 0:
            # The previous window's size is the best available hint for how
            # much the new window will absorb.
            estimator: GSketch | GlobalSketch = GSketch.build(
                self._previous_sample,
                self.config,
                stream_size_hint=self._previous_window_size or None,
            )
        else:
            estimator = GlobalSketch(self.config)
        self._windows[window] = _WindowState(index=window, estimator=estimator)
        self._current_window = window
        self._reservoir = []
        self._reservoir_seen = 0

    def _roll_to(self, window: int) -> None:
        """Close the current window and open ``window`` (possibly skipping gaps)."""
        self._previous_sample = GraphStream(
            list(self._reservoir), name=f"window-{self._current_window}-sample"
        )
        self._previous_window_size = self._reservoir_seen
        self._open_window(window)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_edge(self, edge: EdgeKey, start: float, end: float) -> float:
        """Estimate an edge's frequency over the time interval ``[start, end)``.

        Boundary windows contribute proportionally to their overlap with the
        interval (the paper's "extrapolating from the sketch time windows
        which overlap most closely").
        """
        if end <= start:
            raise ValueError("query interval must have positive length")
        first = self.window_of(start)
        last = self.window_of(end - 1e-12)
        total = 0.0
        for window in range(first, last + 1):
            state = self._windows.get(window)
            if state is None:
                continue
            window_start = window * self.window_length
            window_end = window_start + self.window_length
            overlap = min(end, window_end) - max(start, window_start)
            fraction = max(0.0, min(1.0, overlap / self.window_length))
            total += fraction * state.query_edge(edge)
        return total

    def query_edge_lifetime(self, edge: EdgeKey) -> float:
        """Estimate an edge's frequency over all windows seen so far."""
        return sum(state.query_edge(edge) for state in self._windows.values())

    def query_edges(self, edges: Sequence[EdgeKey]) -> List[float]:
        """Lifetime estimates for many edges at once.

        Each opened window answers the block through its own compiled query
        plan — closed windows are immutable, so their arenas never rebuild —
        and the per-window estimate columns are summed in one reduce per
        window.  Small batches additionally ride a lifetime-level hot-edge
        cache tagged by the windowed ingest generation.  Matches
        :meth:`query_edge_lifetime` element-wise.
        """
        if len(edges) == 0:
            return []
        if len(edges) <= HOT_CACHE_MAX_BATCH:
            keys = [key_to_uint64((edge[0], edge[1])) for edge in edges]
            cached = self._hot_cache.lookup_many(self._generation, keys)
            if cached is not None:
                return cached
            totals = self._lifetime_estimates(edges)
            self._hot_cache.store_many(self._generation, keys, totals.tolist())
            return totals.tolist()
        return self._lifetime_estimates(edges).tolist()

    def _lifetime_estimates(self, edges: Sequence[EdgeKey]) -> np.ndarray:
        """Plan-served per-window estimates, summed in window order."""
        totals = np.zeros(len(edges), dtype=np.float64)
        for window in sorted(self._windows):
            totals += self._windows[window].estimator._planned_estimates(edges)
        return totals

    def query_edges_direct(self, edges: Sequence[EdgeKey]) -> List[float]:
        """The pre-plan lifetime path: every window's routed direct path,
        summed (parity oracle and benchmark baseline)."""
        if len(edges) == 0:
            return []
        totals = np.zeros(len(edges), dtype=np.float64)
        for window in sorted(self._windows):
            totals += np.asarray(
                self._windows[window].estimator.query_edges_direct(edges),
                dtype=np.float64,
            )
        return totals.tolist()

    def query_subgraph(self, query: SubgraphQuery) -> float:
        """Lifetime aggregate subgraph estimate (per-edge decomposition)."""
        return query.combine(self.query_edges(query.edges))

    def confidence(self, edge: EdgeKey) -> ConfidenceInterval:
        """Lifetime confidence interval for an edge estimate.

        Per-window Equation-1 intervals compose additively: the estimate and
        additive bound sum across windows, and the failure probability is the
        union bound over the per-window failure events (clamped to 1).
        """
        return self.confidence_batch([edge])[0]

    def confidence_batch(self, edges: Sequence[EdgeKey]) -> List[ConfidenceInterval]:
        """Lifetime confidence intervals for many edges at once.

        Each window contributes its plan-served estimate/bound/failure
        columns directly (no per-window interval objects), which compose
        additively exactly as the scalar :meth:`confidence` path does.
        """
        if len(edges) == 0:
            return []
        estimates = np.zeros(len(edges), dtype=np.float64)
        bounds = np.zeros(len(edges), dtype=np.float64)
        failures = np.zeros(len(edges), dtype=np.float64)
        for window in sorted(self._windows):
            window_est, window_bounds, window_failures, _ = self._windows[
                window
            ].estimator._planned_confidence(edges)
            estimates += window_est
            bounds += window_bounds
            failures += window_failures
        # The union bound over per-window failure events clamps at 1.
        np.minimum(failures, 1.0, out=failures)
        return intervals_from_arrays(estimates, bounds, failures)

    def compile_plan(self) -> None:
        """Eagerly compile (or refresh) every opened window's query plan."""
        for window in sorted(self._windows):
            self._windows[window].estimator.compile_plan()

    # ------------------------------------------------------------------ #
    # Snapshot protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Complete windowed state: every window's estimator plus the roll
        machinery (reservoir, previous-window sample, RNG state)."""
        return {
            "config": self.config,
            "window_length": self.window_length,
            "sample_size": self.sample_size,
            "rng_state": self._rng.bit_generator.state,
            "windows": {
                index: (
                    "gsketch" if isinstance(state.estimator, GSketch) else "global",
                    state.estimator.state_dict(),
                )
                for index, state in self._windows.items()
            },
            "current_window": self._current_window,
            "reservoir": list(self._reservoir),
            "reservoir_seen": self._reservoir_seen,
            "previous_sample": (
                None
                if self._previous_sample is None
                else (list(self._previous_sample), self._previous_sample.name)
            ),
            "previous_window_size": self._previous_window_size,
            "elements_processed": self._elements_processed,
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowedGSketch":
        """Revive a windowed estimator from a :meth:`state_dict` snapshot."""
        sketch = cls(
            config=state["config"],
            window_length=state["window_length"],
            sample_size=state["sample_size"],
        )
        sketch._rng.bit_generator.state = state["rng_state"]
        for index, (kind, estimator_state) in state["windows"].items():
            estimator: GSketch | GlobalSketch
            if kind == "gsketch":
                estimator = GSketch.from_state(estimator_state)
            elif kind == "global":
                estimator = GlobalSketch.from_state(estimator_state)
            else:
                raise ValueError(f"unknown window estimator kind {kind!r}")
            sketch._windows[int(index)] = _WindowState(index=int(index), estimator=estimator)
        sketch._current_window = state["current_window"]
        sketch._reservoir = [StreamEdge(*edge) for edge in state["reservoir"]]
        sketch._reservoir_seen = int(state["reservoir_seen"])
        if state["previous_sample"] is not None:
            edges, name = state["previous_sample"]
            sketch._previous_sample = GraphStream(
                [StreamEdge(*edge) for edge in edges], name=name, validate=False
            )
        sketch._previous_window_size = int(state["previous_window_size"])
        sketch._elements_processed = int(state["elements_processed"])
        return sketch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def elements_processed(self) -> int:
        """Number of stream elements ingested so far."""
        return self._elements_processed

    @property
    def num_windows(self) -> int:
        """Number of windows opened so far."""
        return len(self._windows)

    def window_indices(self) -> List[int]:
        """Sorted indices of the opened windows."""
        return sorted(self._windows)

    def estimator_for_window(self, window: int) -> GSketch | GlobalSketch:
        """The estimator serving the given window (KeyError if never opened)."""
        return self._windows[window].estimator

    def telemetry_snapshot(self) -> dict:
        """Health telemetry: per-window backend snapshots plus lifetime state.

        Every opened window contributes its own backend snapshot (closed
        windows are immutable, so their numbers are final); the lifetime
        hot-edge cache is the windowed estimator's own.
        """
        windows = [
            {"window": window, **self._windows[window].estimator.telemetry_snapshot()}
            for window in sorted(self._windows)
        ]
        return {
            "backend": "windowed",
            "elements_processed": self._elements_processed,
            "num_windows": self.num_windows,
            "current_window": self._current_window,
            "generation": self._generation,
            "hot_cache": self._hot_cache.telemetry(),
            "windows": windows,
        }

"""Time-windowed gSketch maintenance (Section 5, "dynamic queries").

Users may ask for edge frequencies over specific time windows (last month,
last year, ...).  The paper's prescription: divide the time line into
intervals, keep per-window sketch statistics, and partition each window using
a reservoir sample drawn from the *previous* window.  Queries over an
arbitrary interval are answered by extrapolating from the stored windows that
overlap it.

:class:`WindowedGSketch` implements that scheme on top of :class:`GSketch`:

* the first window has no preceding sample, so it is served by a single
  unpartitioned sketch (equivalent to a Global Sketch of the same budget);
* while window ``k`` is being ingested, a reservoir sample of its elements is
  collected; when window ``k + 1`` opens, that sample drives the partitioning
  of window ``k + 1``'s gSketch;
* interval queries sum the per-window estimates, scaling the two boundary
  windows by their fractional overlap with the query interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.config import GSketchConfig
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.graph.edge import EdgeKey, StreamEdge
from repro.graph.stream import GraphStream
from repro.utils.rng import resolve_rng
from repro.utils.validation import require_positive, require_positive_int


@dataclass
class _WindowState:
    """One time window's estimator plus its start time."""

    index: int
    estimator: GSketch | GlobalSketch

    def query_edge(self, edge: EdgeKey) -> float:
        return self.estimator.query_edge(edge)


class WindowedGSketch:
    """Maintains one estimator per fixed-length time window.

    Args:
        config: per-window space budget (each window gets its own sketches).
        window_length: length of each time window, in the stream's timestamp
            units.
        sample_size: reservoir size collected per window to partition the
            next window.
        seed: RNG seed for reservoir sampling.
    """

    def __init__(
        self,
        config: GSketchConfig,
        window_length: float,
        sample_size: int = 5_000,
        seed: int = 7,
    ) -> None:
        self.config = config
        self.window_length = require_positive(window_length, "window_length")
        self.sample_size = require_positive_int(sample_size, "sample_size")
        self._rng = resolve_rng(seed)
        self._windows: Dict[int, _WindowState] = {}
        self._current_window: Optional[int] = None
        self._reservoir: List[StreamEdge] = []
        self._reservoir_seen = 0
        self._previous_sample: Optional[GraphStream] = None
        self._previous_window_size = 0

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def window_of(self, timestamp: float) -> int:
        """Index of the window containing ``timestamp``."""
        return int(math.floor(timestamp / self.window_length))

    def observe(self, edge: StreamEdge) -> None:
        """Ingest one stream element (elements must arrive in timestamp order)."""
        window = self.window_of(edge.timestamp)
        if self._current_window is None:
            self._open_window(window)
        elif window > self._current_window:
            self._roll_to(window)
        elif window < self._current_window:
            raise ValueError(
                f"out-of-order element: timestamp {edge.timestamp} belongs to window "
                f"{window} but window {self._current_window} is already open"
            )
        state = self._windows[self._current_window]
        state.estimator.update(edge.source, edge.target, edge.frequency)
        self._reservoir_insert(edge)

    def process(self, stream: GraphStream) -> int:
        """Ingest an entire (timestamp-ordered) stream."""
        count = 0
        for edge in stream:
            self.observe(edge)
            count += 1
        return count

    def _reservoir_insert(self, edge: StreamEdge) -> None:
        if len(self._reservoir) < self.sample_size:
            self._reservoir.append(edge)
        else:
            slot = int(self._rng.integers(0, self._reservoir_seen + 1))
            if slot < self.sample_size:
                self._reservoir[slot] = edge
        self._reservoir_seen += 1

    def _open_window(self, window: int) -> None:
        if self._previous_sample is not None and len(self._previous_sample) > 0:
            # The previous window's size is the best available hint for how
            # much the new window will absorb.
            estimator: GSketch | GlobalSketch = GSketch.build(
                self._previous_sample,
                self.config,
                stream_size_hint=self._previous_window_size or None,
            )
        else:
            estimator = GlobalSketch(self.config)
        self._windows[window] = _WindowState(index=window, estimator=estimator)
        self._current_window = window
        self._reservoir = []
        self._reservoir_seen = 0

    def _roll_to(self, window: int) -> None:
        """Close the current window and open ``window`` (possibly skipping gaps)."""
        self._previous_sample = GraphStream(
            list(self._reservoir), name=f"window-{self._current_window}-sample"
        )
        self._previous_window_size = self._reservoir_seen
        self._open_window(window)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_edge(self, edge: EdgeKey, start: float, end: float) -> float:
        """Estimate an edge's frequency over the time interval ``[start, end)``.

        Boundary windows contribute proportionally to their overlap with the
        interval (the paper's "extrapolating from the sketch time windows
        which overlap most closely").
        """
        if end <= start:
            raise ValueError("query interval must have positive length")
        first = self.window_of(start)
        last = self.window_of(end - 1e-12)
        total = 0.0
        for window in range(first, last + 1):
            state = self._windows.get(window)
            if state is None:
                continue
            window_start = window * self.window_length
            window_end = window_start + self.window_length
            overlap = min(end, window_end) - max(start, window_start)
            fraction = max(0.0, min(1.0, overlap / self.window_length))
            total += fraction * state.query_edge(edge)
        return total

    def query_edge_lifetime(self, edge: EdgeKey) -> float:
        """Estimate an edge's frequency over all windows seen so far."""
        return sum(state.query_edge(edge) for state in self._windows.values())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_windows(self) -> int:
        """Number of windows opened so far."""
        return len(self._windows)

    def window_indices(self) -> List[int]:
        """Sorted indices of the opened windows."""
        return sorted(self._windows)

    def estimator_for_window(self, window: int) -> GSketch | GlobalSketch:
        """The estimator serving the given window (KeyError if never opened)."""
        return self._windows[window].estimator

"""gSketch core: error model, sketch partitioning, routing and query estimation."""

from repro.core.config import GSketchConfig
from repro.core.errors import (
    partition_error_data_only,
    partition_error_with_workload,
    split_objective_data_only,
    split_objective_with_workload,
)
from repro.core.estimator import ConfidenceInterval, countmin_confidence
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.core.partition_tree import (
    LeafAssignments,
    PartitionLeaf,
    PartitionNode,
    PartitionTree,
)
from repro.core.partitioner import build_partition_tree, build_partition_tree_scalar
from repro.core.router import OUTLIER_PARTITION, VertexRouter
from repro.core.windowed import WindowedGSketch

__all__ = [
    "ConfidenceInterval",
    "GSketch",
    "GSketchConfig",
    "GlobalSketch",
    "LeafAssignments",
    "OUTLIER_PARTITION",
    "PartitionLeaf",
    "PartitionNode",
    "PartitionTree",
    "VertexRouter",
    "WindowedGSketch",
    "build_partition_tree",
    "build_partition_tree_scalar",
    "countmin_confidence",
    "partition_error_data_only",
    "partition_error_with_workload",
    "split_objective_data_only",
    "split_objective_with_workload",
]

"""The partitioning tree produced by the sketch-partitioning algorithms.

Internal nodes record how the vertex population was recursively split; only
leaves are materialized as physical Count-Min sketches (Section 4.1: "the
sketches are physically constructed only at the leaves of the tree").  The
tree itself is kept for inspection, ablation experiments and tests; query-time
routing uses the flat :class:`~repro.core.router.VertexRouter` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class PartitionNode:
    """A node of the partitioning tree.

    Attributes:
        vertices: the source vertices associated with this node.
        width: the Count-Min width allocated to this node.
        depth_in_tree: distance from the root (root = 0).
        left, right: children (``None`` for leaves).
        leaf_reason: why partitioning stopped here (leaves only): one of
            ``"width_floor"`` (criterion 1, width < w0 after a split),
            ``"collision_bound"`` (criterion 2, Theorem 1) or
            ``"too_few_vertices"`` (fewer than two vertices to split).
    """

    vertices: Tuple[Hashable, ...]
    width: int
    depth_in_tree: int = 0
    left: Optional["PartitionNode"] = None
    right: Optional["PartitionNode"] = None
    leaf_reason: Optional[str] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def __len__(self) -> int:
        return len(self.vertices)


@dataclass(frozen=True)
class PartitionLeaf:
    """A materializable leaf: a vertex group plus its final width allocation.

    Attributes:
        index: position of this leaf in the router's partition list.
        vertices: the source vertices routed to this leaf.
        width: final Count-Min width (after any Theorem-1 shrinking and
            redistribution of saved space).
        nominal_width: the width the recursive halving assigned before
            shrinking, kept for the ablation benchmarks.
        leaf_reason: why the partitioner stopped here.
    """

    index: int
    vertices: Tuple[Hashable, ...]
    width: int
    nominal_width: int
    leaf_reason: str


@dataclass(frozen=True)
class LeafAssignments:
    """Columnar vertex → leaf-index assignment produced by the columnar builder.

    The three columns are parallel and ordered by the builder's single global
    sort, so each leaf occupies one contiguous range.

    Attributes:
        labels: vertex labels, one per routed vertex.
        int_labels: the same labels as an ``int64`` column when the label
            space is pure integers (enables fully vectorized router
            construction), else ``None``.
        partitions: leaf index per vertex, aligned with ``labels``.
    """

    labels: List[Hashable]
    int_labels: Optional[np.ndarray]
    partitions: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)


@dataclass
class PartitionTree:
    """The full partitioning tree plus its flattened leaves.

    Attributes:
        root: root node of the recursive partitioning.
        leaves: materializable leaves in leaf-index order.
        surplus_width: width saved by criterion-2 shrinking that could not be
            redistributed to any other partition (all leaves were shrunk); the
            sketch hands it to the outlier partition so the configured budget
            is never wasted.
        leaf_assignments: columnar vertex → leaf assignment (set by the
            columnar builder; ``None`` for trees built by the scalar
            reference, which fall back to the per-leaf vertex tuples).
    """

    root: PartitionNode
    leaves: List[PartitionLeaf] = field(default_factory=list)
    surplus_width: int = 0
    leaf_assignments: Optional[LeafAssignments] = None

    def __len__(self) -> int:
        return len(self.leaves)

    def iter_nodes(self) -> Iterator[PartitionNode]:
        """Pre-order traversal over all nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def leaf_widths(self) -> List[int]:
        """Final widths of all leaves, in leaf-index order."""
        return [leaf.width for leaf in self.leaves]

    def height(self) -> int:
        """Height of the tree (root-only tree has height 0)."""

        def _height(node: PartitionNode) -> int:
            if node.is_leaf:
                return 0
            children = [c for c in (node.left, node.right) if c is not None]
            return 1 + max(_height(child) for child in children)

        return _height(self.root)

    def total_leaf_width(self) -> int:
        """Sum of the final leaf widths."""
        return sum(leaf.width for leaf in self.leaves)

    def vertex_partition_map(self) -> dict:
        """Map every vertex to its leaf index (the raw material of the router)."""
        if self.leaf_assignments is not None:
            return dict(
                zip(self.leaf_assignments.labels, self.leaf_assignments.partitions.tolist())
            )
        mapping = {}
        for leaf in self.leaves:
            for vertex in leaf.vertices:
                mapping[vertex] = leaf.index
        return mapping

"""Query set and query-workload generation.

Section 6 generates:

* edge query sets of 10,000 queries by uniform sampling of stream edges
  (Section 6.3) or Zipf-skewed sampling (Section 6.4);
* aggregate subgraph query sets whose subgraphs are grown by BFS exploration
  from uniformly sampled seed vertices, each containing 10 edges
  (Section 6.3);
* query *workload samples* (bags of edges used only for partitioning), drawn
  by Zipf sampling with skewness factor ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

from repro.graph.edge import EdgeKey
from repro.graph.sampling import uniform_edge_sample, zipf_edge_sample
from repro.graph.stream import GraphStream
from repro.queries.edge_query import EdgeQuery
from repro.queries.subgraph_query import SubgraphQuery
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_positive, require_positive_int


@dataclass
class QueryWorkload:
    """A container of edge queries and/or subgraph queries used by experiments.

    Attributes:
        edge_queries: the edge query set ``Q_e``.
        subgraph_queries: the aggregate subgraph query set ``Q_g``.
        description: free-form provenance string for experiment reports.
    """

    edge_queries: List[EdgeQuery] = field(default_factory=list)
    subgraph_queries: List[SubgraphQuery] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.edge_queries) + len(self.subgraph_queries)

    def queried_edge_keys(self) -> List[EdgeKey]:
        """All edge keys referenced by any query (including subgraph constituents)."""
        keys: List[EdgeKey] = [q.key for q in self.edge_queries]
        for subgraph in self.subgraph_queries:
            keys.extend(subgraph.edges)
        return keys

    def source_vertex_counts(self) -> Dict[Hashable, float]:
        """How often each source vertex appears across queried edges.

        This is the raw count from which the workload-aware partitioner
        derives the relative vertex weights ``w̃(n)`` (after Laplace
        smoothing).
        """
        counts: Dict[Hashable, float] = {}
        for source, _target in self.queried_edge_keys():
            counts[source] = counts.get(source, 0.0) + 1.0
        return counts


def uniform_edge_queries(
    stream: GraphStream, count: int, seed: SeedLike = None, distinct: bool = False
) -> List[EdgeQuery]:
    """``count`` edge queries drawn uniformly from the graph stream.

    By default queries are sampled uniformly from stream *elements*, i.e. an
    edge is queried with probability proportional to its frequency — this is
    the paper's "generated from the original graph stream by uniform
    sampling" protocol (Section 6.3).  Pass ``distinct=True`` to sample
    uniformly from the set of distinct edges instead, which weights rare
    edges much more heavily.
    """
    keys = uniform_edge_sample(stream, count, seed=seed, distinct=distinct)
    return [EdgeQuery.from_key(key) for key in keys]


def zipf_edge_queries(
    stream: GraphStream, count: int, alpha: float, seed: SeedLike = None
) -> List[EdgeQuery]:
    """``count`` edge queries drawn by Zipf sampling with skewness ``alpha``."""
    keys = zipf_edge_sample(stream, count, alpha, seed=seed)
    return [EdgeQuery.from_key(key) for key in keys]


def _adjacency(stream: GraphStream) -> Dict[Hashable, List[Hashable]]:
    """Directed adjacency lists of the stream's distinct edges."""
    adjacency: Dict[Hashable, Set[Hashable]] = {}
    for source, target in stream.distinct_edges():
        adjacency.setdefault(source, set()).add(target)
        adjacency.setdefault(target, set())
    return {vertex: sorted(targets, key=repr) for vertex, targets in adjacency.items()}


def bfs_subgraph_queries(
    stream: GraphStream,
    count: int,
    edges_per_subgraph: int = 10,
    aggregate: str = "sum",
    seed: SeedLike = None,
) -> List[SubgraphQuery]:
    """Subgraph queries grown by randomized BFS from uniform seed vertices.

    Mirrors Section 6.3: a seed vertex is sampled uniformly, then a BFS
    traversal explores its out-neighbourhood, picking the next edge at random,
    until ``edges_per_subgraph`` edges are collected.  Seeds whose reachable
    neighbourhood is too small wrap around by restarting from another seed, so
    every returned subgraph has exactly ``edges_per_subgraph`` constituent
    edges (as a bag).
    """
    require_positive_int(count, "count")
    require_positive_int(edges_per_subgraph, "edges_per_subgraph")
    rng = resolve_rng(seed)
    adjacency = _adjacency(stream)
    sources_with_edges = sorted(
        (v for v, targets in adjacency.items() if targets), key=repr
    )
    if not sources_with_edges:
        raise ValueError("the stream has no edges to build subgraph queries from")

    queries: List[SubgraphQuery] = []
    for _ in range(count):
        collected: List[EdgeKey] = []
        guard = 0
        while len(collected) < edges_per_subgraph:
            guard += 1
            if guard > 100 * edges_per_subgraph:
                # Pathologically tiny graphs: pad with uniform edges.
                needed = edges_per_subgraph - len(collected)
                collected.extend(
                    uniform_edge_sample(stream, needed, seed=rng, distinct=True)
                )
                break
            seed_vertex = sources_with_edges[int(rng.integers(0, len(sources_with_edges)))]
            frontier: List[Hashable] = [seed_vertex]
            visited: Set[Hashable] = {seed_vertex}
            while frontier and len(collected) < edges_per_subgraph:
                position = int(rng.integers(0, len(frontier)))
                vertex = frontier.pop(position)
                targets = adjacency.get(vertex, [])
                if not targets:
                    continue
                order = rng.permutation(len(targets))
                for index in order:
                    target = targets[int(index)]
                    collected.append((vertex, target))
                    if target not in visited:
                        visited.add(target)
                        frontier.append(target)
                    if len(collected) >= edges_per_subgraph:
                        break
        queries.append(SubgraphQuery.from_edges(collected[:edges_per_subgraph], aggregate))
    return queries


def zipf_subgraph_queries(
    stream: GraphStream,
    count: int,
    alpha: float,
    edges_per_subgraph: int = 10,
    aggregate: str = "sum",
    seed: SeedLike = None,
) -> List[SubgraphQuery]:
    """Subgraph queries whose constituent edges are Zipf-sampled (Section 6.4)."""
    require_positive_int(count, "count")
    require_positive_int(edges_per_subgraph, "edges_per_subgraph")
    require_positive(alpha, "alpha")
    keys = zipf_edge_sample(stream, count * edges_per_subgraph, alpha, seed=seed)
    queries = []
    for i in range(count):
        chunk = keys[i * edges_per_subgraph : (i + 1) * edges_per_subgraph]
        queries.append(SubgraphQuery.from_edges(chunk, aggregate))
    return queries

"""Query model, workload generation, accuracy metrics and the compiled
read-optimized query plan."""

from repro.queries.aggregate import AGGREGATES, AggregateFunction, get_aggregate
from repro.queries.edge_query import EdgeQuery
from repro.queries.evaluation import (
    EvaluationResult,
    average_relative_error,
    effective_query_count,
    evaluate_edge_queries,
    evaluate_subgraph_queries,
    relative_error,
)
from repro.queries.plan import (
    CompiledQueryPlan,
    HotEdgeCache,
    PlanServingMixin,
    demux_by_counts,
)
from repro.queries.subgraph_query import SubgraphQuery
from repro.queries.workload import (
    QueryWorkload,
    bfs_subgraph_queries,
    uniform_edge_queries,
    zipf_edge_queries,
    zipf_subgraph_queries,
)

__all__ = [
    "AGGREGATES",
    "AggregateFunction",
    "CompiledQueryPlan",
    "EdgeQuery",
    "EvaluationResult",
    "HotEdgeCache",
    "PlanServingMixin",
    "QueryWorkload",
    "SubgraphQuery",
    "average_relative_error",
    "bfs_subgraph_queries",
    "demux_by_counts",
    "effective_query_count",
    "evaluate_edge_queries",
    "evaluate_subgraph_queries",
    "get_aggregate",
    "relative_error",
    "uniform_edge_queries",
    "zipf_edge_queries",
    "zipf_subgraph_queries",
]

"""Query model, workload generation, accuracy metrics, the compiled
read-optimized query plan, and the parallel read plane (shared-memory
reader pool + optional compiled kernel tiers)."""

from repro.queries.aggregate import AGGREGATES, AggregateFunction, get_aggregate
from repro.queries.edge_query import EdgeQuery
from repro.queries.evaluation import (
    EvaluationResult,
    average_relative_error,
    effective_query_count,
    evaluate_edge_queries,
    evaluate_subgraph_queries,
    relative_error,
)
from repro.queries.kernels import (
    KERNEL_TIERS,
    KernelUnavailableError,
    NumpyScratchKernel,
    get_kernel,
)
from repro.queries.plan import (
    CompiledQueryPlan,
    HotEdgeCache,
    PlanServingMixin,
    demux_by_counts,
)
from repro.queries.subgraph_query import SubgraphQuery
from repro.queries.workload import (
    QueryWorkload,
    bfs_subgraph_queries,
    uniform_edge_queries,
    zipf_edge_queries,
    zipf_subgraph_queries,
)

__all__ = [
    "AGGREGATES",
    "AggregateFunction",
    "CompiledQueryPlan",
    "EdgeQuery",
    "EvaluationResult",
    "HotEdgeCache",
    "KERNEL_TIERS",
    "KernelUnavailableError",
    "NumpyScratchKernel",
    "PlanConfig",
    "PlanServingMixin",
    "QueryWorkload",
    "ReaderPool",
    "ReaderPoolError",
    "ReaderSupervisor",
    "ReaderWorkerError",
    "SubgraphQuery",
    "average_relative_error",
    "bfs_subgraph_queries",
    "demux_by_counts",
    "effective_query_count",
    "evaluate_edge_queries",
    "evaluate_subgraph_queries",
    "get_aggregate",
    "get_kernel",
    "relative_error",
    "uniform_edge_queries",
    "zipf_edge_queries",
    "zipf_subgraph_queries",
]

#: Reader-pool names re-exported lazily: ``repro.queries.parallel`` pulls in
#: the distributed package, which circularly imports the core estimators
#: while *they* are importing the plan mixin from this package.  PEP 562
#: deferral keeps ``from repro.queries import ReaderPool`` working without
#: eagerly completing that cycle at package-import time.
_PARALLEL_EXPORTS = frozenset(
    {
        "PlanConfig",
        "ReaderPool",
        "ReaderPoolError",
        "ReaderSupervisor",
        "ReaderWorkerError",
    }
)


def __getattr__(name: str):
    if name in _PARALLEL_EXPORTS:
        from repro.queries import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The compiled kernel tier for the read plane (ROADMAP "compiled kernel tier").

The two hot kernels of a compiled-plan gather are the Mersenne-61 modular
hash (:func:`~repro.sketches.hashing.mulmod_mersenne61_batch` inside
:func:`~repro.sketches.hashing.gathered_hash_columns`) and the fancy-index
gather + ``min`` reduce over the read arena.  The default expressions
allocate roughly a dozen temporaries per batch; at serving batch sizes
(hundreds of keys) allocation and temporary traffic cost as much as the
arithmetic itself.

This module provides swappable implementations of those two kernels behind a
small :class:`QueryKernel` interface:

``numpy``
    The default tier: the identical uint64 kernel *sequence* as the oracle
    expressions, but staged through preallocated per-instance scratch
    buffers (``out=`` everywhere), so a steady-state batch performs zero
    heap allocation.  Because uint64 wraparound arithmetic is value-exact
    regardless of where results are stored, the tier is bit-identical to
    the oracle — ``tests/test_kernels.py`` pins that on Mersenne boundary
    values.

``numba``
    An optional JIT tier compiled with :mod:`numba` when it is installed.
    The scalar loop reimplements the same 32-bit-limb mulmod fold, fusing
    hash, offset add, arena gather and min reduce into one pass per batch.
    Selecting it without numba installed raises
    :class:`KernelUnavailableError`; the parity suite skips cleanly.

The plain expressions in :mod:`repro.sketches.hashing` remain the parity
oracle: every tier must agree with them bit-for-bit, and
:meth:`~repro.queries.plan.CompiledQueryPlan.estimate_keys` keeps using the
oracle unless a kernel is explicitly attached (``PlanConfig(kernel=...)``).

Kernels are *stateful* (they own scratch) and therefore neither thread-safe
nor shareable across reader-pool workers — each worker constructs its own.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sketches.hashing import MERSENNE_PRIME_61

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_M61 = _U64(MERSENNE_PRIME_61)
_EIGHT = _U64(8)
_CARRY_BIT = _U64(1 << 32)
_SH3 = _U64(3)
_SH32 = _U64(32)
_SH61 = _U64(61)

#: Kernel tier names accepted by ``PlanConfig(kernel=...)``.
KERNEL_TIERS = ("numpy", "numba")

try:  # pragma: no cover - exercised only when numba is installed
    import numba  # type: ignore[import-not-found]

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common container state
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False


class KernelUnavailableError(RuntimeError):
    """A kernel tier was selected whose backing dependency is not installed."""


def scratch_capacity(scratch_mb: float, depth: int) -> int:
    """Largest batch the scratch buffers sized by ``scratch_mb`` can hold.

    The numpy tier keeps five uint64 + one bool + one int64 ``(depth, cap)``
    planes plus a few per-key rows (~``57 * depth + 80`` bytes per key);
    the result is floored at 1024 keys so tiny budgets stay usable.
    """
    if scratch_mb <= 0:
        raise ValueError(f"scratch_mb must be > 0, got {scratch_mb}")
    bytes_per_key = 57 * depth + 80
    return max(1024, int(scratch_mb * (1 << 20)) // bytes_per_key)


class QueryKernel:
    """Interface of a kernel tier: per-element hash columns + gather/min."""

    name: str = "abstract"
    #: Fused kernels answer whole batches via :meth:`estimate` instead of the
    #: two-step hash_columns/gather_min protocol.
    fused: bool = False

    def hash_columns(
        self, a: np.ndarray, b: np.ndarray, widths: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """``((a*key + b) mod p) mod width`` per element → int64 ``(depth, n)``.

        ``a``/``b`` are ``(depth, n)`` gathered coefficient columns or
        ``(depth, 1)`` broadcast columns (the single-slot fast path);
        ``widths`` is aligned with the last axis.  The returned array may be
        a view into kernel scratch — consume it before the next call.
        """
        raise NotImplementedError

    def gather_min(
        self, flat: np.ndarray, cols: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``flat[cols].min(axis=0)`` — the arena gather + CM min reduce.

        Without ``out`` the result may be a view into kernel scratch.
        """
        raise NotImplementedError

    def take_columns(
        self, table_a: np.ndarray, table_b: np.ndarray, slots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(table_a[:, slots], table_b[:, slots])`` without fresh allocation."""
        raise NotImplementedError


class NumpyScratchKernel(QueryKernel):
    """The ``numpy`` tier: oracle arithmetic staged through preallocated scratch.

    Buffers are sized to the larger of ``capacity`` and the largest batch
    seen — oversized batches grow the scratch once rather than failing, so
    correctness never depends on the configured cap.
    """

    name = "numpy"

    def __init__(self, depth: int, capacity: int = 8192) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be > 0, got {depth}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.depth = depth
        self.capacity = capacity
        self._size = 0

    def _grow(self, n: int) -> None:
        # Planes are stored flat and re-carved per batch as *contiguous*
        # (depth, n) views — slicing a preallocated 2-D plane to n columns
        # would leave capacity-strided rows that forfeit SIMD kernels.
        size = max(n, min(self.capacity, 8192)) if self._size == 0 else n
        cells = self.depth * size
        self._u64 = [np.empty(cells, dtype=np.uint64) for _ in range(5)]
        self._bool = np.empty(cells, dtype=bool)
        self._cols = np.empty(cells, dtype=np.int64)
        self._gather = np.empty(cells, dtype=np.float64)
        self._k_lo = np.empty(size, dtype=np.uint64)
        self._k_hi = np.empty(size, dtype=np.uint64)
        self._mins = np.empty(size, dtype=np.float64)
        self._coeff_a = np.empty(cells, dtype=np.uint64)
        self._coeff_b = np.empty(cells, dtype=np.uint64)
        self._size = size

    def _plane(self, flat_buf: np.ndarray, n: int) -> np.ndarray:
        return flat_buf[: self.depth * n].reshape(self.depth, n)

    def take_columns(
        self, table_a: np.ndarray, table_b: np.ndarray, slots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(slots)
        if n > self._size:
            self._grow(n)
        ga = self._plane(self._coeff_a, n)
        gb = self._plane(self._coeff_b, n)
        np.take(table_a, slots, axis=1, out=ga)
        np.take(table_b, slots, axis=1, out=gb)
        return ga, gb

    def hash_columns(
        self, a: np.ndarray, b: np.ndarray, widths: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        n = keys.shape[0]
        if n > self._size:
            self._grow(n)
        buf_a, buf_b, buf_c, buf_d, buf_e = (
            self._plane(plane, n) for plane in self._u64
        )
        carry = self._plane(self._bool, n)
        cols = self._plane(self._cols, n)
        k_lo = self._k_lo[:n]
        k_hi = self._k_hi[:n]

        np.bitwise_and(keys, _MASK32, out=k_lo)
        np.right_shift(keys, _SH32, out=k_hi)
        if a.shape[1] == n:
            a_lo = np.bitwise_and(a, _MASK32, out=buf_a)
            a_hi = np.right_shift(a, _SH32, out=buf_b)
        else:
            # Single-slot broadcast fast path: (depth, 1) columns are tiny,
            # so two small temporaries beat widening them into full planes.
            a_lo = a & _MASK32
            a_hi = a >> _SH32
        # -- mulmod_mersenne61_batch, identical op sequence through scratch -- #
        ll = np.multiply(a_lo, k_lo, out=buf_c)
        t = np.multiply(a_hi, k_lo, out=buf_d)
        np.right_shift(ll, _SH32, out=buf_e)
        np.add(t, buf_e, out=t)  # t = a_hi*x_lo + (ll >> 32)
        mid2 = np.multiply(a_lo, k_hi, out=buf_e)
        s = np.add(t, mid2, out=buf_a)  # a_lo (buf_a) is dead once mid2 exists
        np.less(s, t, out=carry)  # 2^64 carry of s = t + mid2
        hi = np.multiply(a_hi, k_hi, out=buf_e)  # mid2 is dead after s
        np.right_shift(s, _SH32, out=buf_b)
        np.add(hi, buf_b, out=hi)
        np.multiply(carry, _CARRY_BIT, out=buf_b, casting="unsafe")
        np.add(hi, buf_b, out=hi)  # hi = a_hi*x_hi + (s>>32) + (carry<<32)
        lo = np.left_shift(s, _SH32, out=s)
        np.bitwise_and(ll, _MASK32, out=ll)
        np.bitwise_or(lo, ll, out=lo)  # lo = (s<<32) | (ll & MASK32)
        top = np.left_shift(hi, _SH3, out=buf_d)  # t is dead
        np.right_shift(lo, _SH61, out=buf_b)
        np.bitwise_or(top, buf_b, out=top)  # top = (hi<<3) | (lo>>61)
        r = np.bitwise_and(lo, _M61, out=lo)
        np.add(top, r, out=r)  # r = top + (lo & M61)
        np.less(r, top, out=carry)
        np.multiply(carry, _EIGHT, out=buf_b, casting="unsafe")
        np.add(r, buf_b, out=r)  # 2^64 ≡ 8 (mod p)
        for _ in range(2):
            np.right_shift(r, _SH61, out=buf_b)
            np.bitwise_and(r, _M61, out=r)
            np.add(r, buf_b, out=r)
        np.greater_equal(r, _M61, out=carry)
        np.multiply(carry, _M61, out=buf_b, casting="unsafe")
        np.subtract(r, buf_b, out=r)  # where(r >= M61, r - M61, r)
        # -- + b, conditional fold, % width (gathered_hash_columns tail) ----- #
        np.add(r, b, out=r)
        np.greater_equal(r, _M61, out=carry)
        np.multiply(carry, _M61, out=buf_b, casting="unsafe")
        np.subtract(r, buf_b, out=r)
        np.remainder(r, widths, out=r)
        cols[...] = r  # uint64 → int64; values < width < 2^61 are exact
        return cols

    def gather_min(
        self, flat: np.ndarray, cols: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        n = cols.shape[1]
        if n > self._size:
            self._grow(n)
        gathered = self._plane(self._gather, n)
        np.take(flat, cols, out=gathered)
        target = out if out is not None else self._mins[:n]
        return gathered.min(axis=0, out=target)


if HAVE_NUMBA:  # pragma: no cover - compiled only when numba is installed

    @numba.njit(cache=True, nogil=True)  # type: ignore[misc]
    def _numba_hash_gather_min(a, b, widths, keys, flat, row_offsets, col_offsets, out):
        """Fused hash + arena gather + min reduce, one scalar pass.

        ``a``/``b`` are ``(depth, n)`` (or ``(depth, 1)`` broadcast) uint64
        coefficient columns; ``row_offsets[d]`` is ``d * total_width`` and
        ``col_offsets[i]`` the per-element arena column offset (all zeros
        for single-slot plans).  The limb fold mirrors
        ``mulmod_mersenne61_batch`` exactly, so results are bit-identical.
        """
        depth = a.shape[0]
        n = keys.shape[0]
        broadcast = a.shape[1] == 1
        mask32 = np.uint64(0xFFFFFFFF)
        m61 = np.uint64(MERSENNE_PRIME_61)
        for i in range(n):
            x = keys[i]
            x_lo = x & mask32
            x_hi = x >> np.uint64(32)
            width = widths[0] if broadcast else widths[i]
            best = np.inf
            for d in range(depth):
                ai = a[d, 0] if broadcast else a[d, i]
                bi = b[d, 0] if broadcast else b[d, i]
                a_lo = ai & mask32
                a_hi = ai >> np.uint64(32)
                ll = a_lo * x_lo
                t = a_hi * x_lo + (ll >> np.uint64(32))
                s = t + a_lo * x_hi
                carry = np.uint64(1) if s < t else np.uint64(0)
                hi = a_hi * x_hi + (s >> np.uint64(32)) + (carry << np.uint64(32))
                lo = (s << np.uint64(32)) | (ll & mask32)
                top = (hi << np.uint64(3)) | (lo >> np.uint64(61))
                r = top + (lo & m61)
                if r < top:
                    r = r + np.uint64(8)
                r = (r & m61) + (r >> np.uint64(61))
                r = (r & m61) + (r >> np.uint64(61))
                if r >= m61:
                    r = r - m61
                r = r + bi
                if r >= m61:
                    r = r - m61
                col = np.int64(r % width)
                value = flat[row_offsets[d] + col_offsets[i] + col]
                if value < best:
                    best = value
            out[i] = best


class NumbaKernel(QueryKernel):
    """The ``numba`` tier: one fused JIT pass per batch.

    Unlike the numpy tier this fuses hashing, gather and reduce, so the plan
    drives it through the fused entry point (:meth:`estimate`) instead of
    the two-step protocol.
    """

    name = "numba"
    fused = True

    def __init__(self, depth: int, capacity: int = 8192) -> None:
        if not HAVE_NUMBA:
            raise KernelUnavailableError(
                "kernel tier 'numba' requires the optional numba dependency; "
                "install it or select kernel='numpy'"
            )
        self.depth = depth
        self.capacity = capacity
        self._zeros = np.zeros(0, dtype=np.int64)
        self._out = np.empty(0, dtype=np.float64)

    def estimate(
        self,
        a: np.ndarray,
        b: np.ndarray,
        widths: np.ndarray,
        keys: np.ndarray,
        flat: np.ndarray,
        row_offsets: np.ndarray,
        col_offsets: Optional[np.ndarray],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        n = keys.shape[0]
        if col_offsets is None:
            if len(self._zeros) < n:
                self._zeros = np.zeros(max(n, self.capacity), dtype=np.int64)
            col_offsets = self._zeros[:n]
        if out is None:
            if len(self._out) < n:
                self._out = np.empty(max(n, self.capacity), dtype=np.float64)
            out = self._out[:n]
        _numba_hash_gather_min(
            np.ascontiguousarray(a, dtype=np.uint64),
            np.ascontiguousarray(b, dtype=np.uint64),
            np.ascontiguousarray(widths, dtype=np.uint64),
            keys,
            flat,
            np.ascontiguousarray(row_offsets, dtype=np.int64),
            np.ascontiguousarray(col_offsets, dtype=np.int64),
            out,
        )
        return out


def get_kernel(name: str, *, depth: int, capacity: int = 8192) -> QueryKernel:
    """Construct the kernel tier ``name`` for plans of the given ``depth``.

    Raises:
        KernelUnavailableError: ``name`` is ``"numba"`` but numba is absent.
        ValueError: ``name`` is not a known tier.
    """
    if name == "numpy":
        return NumpyScratchKernel(depth, capacity)
    if name == "numba":
        return NumbaKernel(depth, capacity)
    raise ValueError(f"unknown kernel tier {name!r}; expected one of {KERNEL_TIERS}")

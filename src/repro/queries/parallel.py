"""The parallel read plane: a shared-memory reader pool over frozen plan arenas.

PR 4 freed the *write* path from the GIL by giving each shard worker a
shared-memory counter arena; this module does the same for the *read* path.
A :class:`CompiledQueryPlan`'s state is immutable between generations — the
``(depth, Σwidths)`` counter arena, the stacked hash-coefficient matrix, the
per-slot offsets and the router lookup table — so it can be placed in one
POSIX shared-memory block (:class:`PlanArena`) that N reader processes map
**zero-copy**.  A :class:`ReaderPool` spawns those workers and feeds them
coalesced query batches through per-worker staging rings (two int64 input
columns, one float64 result column, double-buffered), so a batch costs two
small pipe messages and no pickling; the hash → route → gather → min work
runs entirely outside the parent's GIL.

Freshness reuses the plan's generation tags: :meth:`ReaderPool.swap`
publishes a new arena and sends each worker a ``remap`` message.  Pipes are
FIFO, so batches already in a worker's queue finish on the arena they were
dispatched against, the worker then remaps and acknowledges, and the parent
unlinks the old block only after every worker has let go — live ingest never
pauses reads.

Each worker also keeps a *direct-mapped memo* of recent point estimates
(vectorized open-addressing over ``2**cache_bits`` slots, keyed by the
canonical uint64 edge key — the same identity
:class:`~repro.queries.plan.HotEdgeCache` memoizes under).  On the
Zipf-skewed traffic the serving tier sees, the memo answers most keys with
three array kernels instead of a full gather; it is invalidated wholesale on
every remap, so pool answers stay bit-identical to the plan oracle at the
same generation.

Kernel selection, reader count and scratch sizing are configuration, not
environment variables: :class:`PlanConfig` rides
``EngineBuilder.plan(PlanConfig(...))`` next to the existing
``.recovery(...)`` pattern.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

import numpy as np

from repro import faults as _faults
from repro.distributed.shared_memory import release_shm
from repro.graph.edge import EdgeKey
from repro.observability import metrics as _obs
from repro.observability.instruments import (
    READER_DEAD,
    READER_RESTART_EVENTS,
    READER_RESTART_SECONDS,
)
from repro.queries.kernels import KERNEL_TIERS, get_kernel, scratch_capacity
from repro.queries.plan import CompiledQueryPlan, HotEdgeCache
from repro.sketches.hashing import pair_keys_to_uint64

_T = TypeVar("_T")

_U64 = np.uint64
_GOLDEN_GAMMA = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)


class _PairScratch:
    """Scratch-staged :func:`pair_keys_to_uint64` for the worker hot loop.

    Identical uint64 op sequence as the oracle (splitmix64 per endpoint,
    then the tuple rolling mix), staged through three preallocated buffers —
    a warm worker batch canonicalizes with zero heap allocation.
    """

    def __init__(self, capacity: int) -> None:
        self._buffers = [np.empty(capacity, dtype=np.uint64) for _ in range(3)]
        self._capacity = capacity

    def _splitmix(self, value: np.ndarray, tmp: np.ndarray) -> np.ndarray:
        np.add(value, _GOLDEN_GAMMA, out=value)
        np.right_shift(value, _U64(30), out=tmp)
        np.bitwise_xor(value, tmp, out=value)
        np.multiply(value, _MIX1, out=value)
        np.right_shift(value, _U64(27), out=tmp)
        np.bitwise_xor(value, tmp, out=value)
        np.multiply(value, _MIX2, out=value)
        np.right_shift(value, _U64(31), out=tmp)
        np.bitwise_xor(value, tmp, out=value)
        return value

    def pair_keys(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Canonical uint64 edge keys; the result is a scratch view."""
        n = len(sources)
        if n > self._capacity:
            self._buffers = [np.empty(n, dtype=np.uint64) for _ in range(3)]
            self._capacity = n
        hs, ht, tmp = (buffer[:n] for buffer in self._buffers)
        np.copyto(hs, sources, casting="unsafe")  # two's-complement wrap,
        np.copyto(ht, targets, casting="unsafe")  # matching astype(uint64)
        self._splitmix(hs, tmp)
        self._splitmix(ht, tmp)
        np.bitwise_xor(hs, _GOLDEN_GAMMA, out=hs)
        self._splitmix(hs, tmp)  # acc = splitmix(GG ^ h(source))
        np.bitwise_xor(hs, ht, out=hs)
        return self._splitmix(hs, tmp)  # splitmix(acc ^ h(target))

#: Partition sentinel; mirrors :data:`repro.core.router.OUTLIER_PARTITION`.
OUTLIER_PARTITION = -1

#: Below this many keys a batch is not worth splitting across workers.
MIN_SPLIT_KEYS = 128

#: Staging-ring capacity floor (keys per segment).
MIN_BATCH_CAPACITY = 1024


@dataclass(frozen=True)
class PlanConfig:
    """Typed read-plane configuration (``EngineBuilder.plan(...)``).

    Attributes:
        kernel: compiled kernel tier — ``"numpy"`` (preallocated-scratch
            numpy, the default) or ``"numba"`` (JIT; requires the optional
            numba dependency).
        readers: reader-pool size; ``0`` answers queries in-process.
        scratch_mb: per-worker scratch budget for the kernel tier, in MiB.
        cache_bits: per-worker direct-mapped memo size (``2**cache_bits``
            slots); ``0`` disables the memo.
        max_pending: staging segments (in-flight batches) per worker.
        batch_capacity: staging-ring capacity per segment, in keys.
        supervised: whether the serving tier wraps the pool in a
            :class:`ReaderSupervisor` that respawns dead workers (the pool
            itself never respawns; unsupervised pools degrade permanently).
        max_restarts: respawns per worker slot before the supervisor gives
            up on it (the pool keeps serving on the survivors).
        restart_backoff_seconds: delay before the second respawn of the
            same worker slot (the first respawn is immediate); grows by
            ``restart_backoff_multiplier`` per further respawn.
        restart_backoff_multiplier: exponential backoff factor.
    """

    kernel: str = "numpy"
    readers: int = 0
    scratch_mb: float = 4.0
    cache_bits: int = 16
    max_pending: int = 2
    batch_capacity: int = 8192
    supervised: bool = True
    max_restarts: int = 5
    restart_backoff_seconds: float = 0.05
    restart_backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.kernel not in KERNEL_TIERS:
            raise ValueError(
                f"kernel must be one of {KERNEL_TIERS}, got {self.kernel!r}"
            )
        if self.readers < 0:
            raise ValueError(f"readers must be >= 0, got {self.readers}")
        if self.scratch_mb <= 0:
            raise ValueError(f"scratch_mb must be > 0, got {self.scratch_mb}")
        if not 0 <= self.cache_bits <= 28:
            raise ValueError(f"cache_bits must be in [0, 28], got {self.cache_bits}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.batch_capacity < MIN_BATCH_CAPACITY:
            raise ValueError(
                f"batch_capacity must be >= {MIN_BATCH_CAPACITY}, "
                f"got {self.batch_capacity}"
            )
        if self.max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {self.max_restarts}")
        if self.restart_backoff_seconds < 0:
            raise ValueError(
                "restart_backoff_seconds must be >= 0, "
                f"got {self.restart_backoff_seconds}"
            )
        if self.restart_backoff_multiplier < 1:
            raise ValueError(
                "restart_backoff_multiplier must be >= 1, "
                f"got {self.restart_backoff_multiplier}"
            )


class ReaderPoolError(RuntimeError):
    """Base error for reader-pool lifecycle and dispatch failures."""


class ReaderWorkerError(ReaderPoolError):
    """A reader worker died or reported a failure.

    Attributes:
        worker_index: which reader failed.
    """

    def __init__(self, worker_index: int, message: str) -> None:
        super().__init__(f"reader worker {worker_index}: {message}")
        self.worker_index = worker_index


@dataclass(frozen=True)
class PlanArenaSpec:
    """Worker-side geometry of one shared plan arena (shipped over the pipe).

    All arrays live back to back in the named block, in the order the byte
    offsets imply: flat counter arena (float64), ``hash_a``/``hash_b``
    (uint64, ``depth × num_slots``), ``widths`` (uint64), ``offsets``
    (int64), then the router's sorted ``(vertex, partition)`` int64 columns.
    """

    shm_name: str
    generation: int
    depth: int
    num_slots: int
    total_width: int
    router_size: int
    routed: bool  # False → single-slot plan, everything maps to slot 0


class PlanArena:
    """One generation of a compiled plan, serialized into shared memory.

    The parent owns the block (creates and eventually unlinks it); workers
    attach by name and build read-only numpy views.  Arenas are immutable —
    a new generation gets a fresh arena and a ``remap`` broadcast.
    """

    def __init__(self, plan: CompiledQueryPlan) -> None:
        arena, hash_a, hash_b, widths, offsets = plan.export_arrays()
        router_cols = plan.export_router_arrays()
        if router_cols is None:
            if plan.routed:
                raise ReaderPoolError(
                    "reader pool requires integer vertex labels "
                    "(the router has no vectorized lookup table)"
                )
            router_keys = np.zeros(0, dtype=np.int64)
            router_parts = np.zeros(0, dtype=np.int64)
        else:
            router_keys, router_parts = router_cols
        depth, total_width = arena.shape
        num_slots = len(widths)
        sizes = [
            arena.size * 8,
            hash_a.size * 8,
            hash_b.size * 8,
            num_slots * 8,
            num_slots * 8,
            len(router_keys) * 8,
            len(router_parts) * 8,
        ]
        self.shm = shared_memory.SharedMemory(create=True, size=max(1, sum(sizes)))
        views = _arena_views(
            self.shm.buf, depth, total_width, num_slots, len(router_keys)
        )
        for view, source in zip(
            views, (arena.reshape(-1), hash_a, hash_b, widths, offsets,
                    router_keys, router_parts)
        ):
            view[...] = source.reshape(view.shape)
        self.spec = PlanArenaSpec(
            shm_name=self.shm.name,
            generation=plan.generation,
            depth=depth,
            num_slots=num_slots,
            total_width=total_width,
            router_size=len(router_keys),
            routed=plan.routed,
        )

    @property
    def generation(self) -> int:
        return self.spec.generation

    def close(self) -> None:
        release_shm(self.shm)


def _arena_views(
    buf, depth: int, total_width: int, num_slots: int, router_size: int
) -> Tuple[np.ndarray, ...]:
    """Typed views over a plan-arena block, parent and worker alike."""
    offset = 0

    def region(shape, dtype) -> np.ndarray:
        nonlocal offset
        view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
        offset += view.nbytes
        return view

    flat = region((depth * total_width,), np.float64)
    hash_a = region((depth, num_slots), np.uint64)
    hash_b = region((depth, num_slots), np.uint64)
    widths = region((num_slots,), np.uint64)
    offsets = region((num_slots,), np.int64)
    router_keys = region((router_size,), np.int64)
    router_parts = region((router_size,), np.int64)
    return flat, hash_a, hash_b, widths, offsets, router_keys, router_parts


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #


class _WorkerState:
    """Everything a reader worker derives from one mapped arena generation."""

    def __init__(self, spec: PlanArenaSpec, kernel_name: str, capacity: int) -> None:
        self.spec = spec
        self.shm = shared_memory.SharedMemory(name=spec.shm_name)
        (
            self.flat,
            self.hash_a,
            self.hash_b,
            self.widths,
            self.offsets,
            self.router_keys,
            self.router_parts,
        ) = _arena_views(
            self.shm.buf, spec.depth, spec.total_width, spec.num_slots,
            spec.router_size,
        )
        self.row_base = (
            np.arange(spec.depth, dtype=np.int64) * spec.total_width
        )[:, None]
        self.kernel = get_kernel(kernel_name, depth=spec.depth, capacity=capacity)

    def route_slots(self, sources: np.ndarray) -> Optional[np.ndarray]:
        """Arena slot per source; ``None`` for single-slot plans."""
        if not self.spec.routed:
            return None
        if self.spec.router_size == 0:
            return np.full(len(sources), self.spec.num_slots - 1, dtype=np.int64)
        positions = np.searchsorted(self.router_keys, sources)
        clipped = np.minimum(positions, self.spec.router_size - 1)
        found = self.router_keys[clipped] == sources
        partitions = np.where(found, self.router_parts[clipped], OUTLIER_PARTITION)
        return np.where(
            partitions == OUTLIER_PARTITION, self.spec.num_slots - 1, partitions
        ).astype(np.int64)

    def estimate(self, keys: np.ndarray, sources: np.ndarray) -> np.ndarray:
        """Hash/route/gather/min for one (sub-)batch; may return scratch views."""
        slots = self.route_slots(sources)
        kernel = self.kernel
        if getattr(kernel, "fused", False):
            if slots is None:
                return kernel.estimate(
                    self.hash_a, self.hash_b, self.widths, keys,
                    self.flat, self.row_base[:, 0], None,
                )
            return kernel.estimate(
                kernel_take(self.hash_a, slots), kernel_take(self.hash_b, slots),
                self.widths[slots], keys, self.flat, self.row_base[:, 0],
                self.offsets[slots],
            )
        if slots is None:
            cols = kernel.hash_columns(
                self.hash_a, self.hash_b, self.widths, keys
            )
        else:
            coeff_a, coeff_b = kernel.take_columns(self.hash_a, self.hash_b, slots)
            cols = kernel.hash_columns(coeff_a, coeff_b, self.widths[slots], keys)
            cols += self.offsets[slots]
        cols += self.row_base
        return kernel.gather_min(self.flat, cols)

    def close(self) -> None:
        self.flat = self.hash_a = self.hash_b = None  # type: ignore[assignment]
        self.widths = self.offsets = None  # type: ignore[assignment]
        self.router_keys = self.router_parts = None  # type: ignore[assignment]
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass


def kernel_take(table: np.ndarray, slots: np.ndarray) -> np.ndarray:
    """Fancy-gather coefficient columns (fused-tier helper)."""
    return np.take(table, slots, axis=1)


def _reader_worker(
    conn,
    worker_index: int,
    spec: PlanArenaSpec,
    staging_name: str,
    segments: int,
    capacity: int,
    kernel_name: str,
    scratch_keys: int,
    cache_bits: int,
    fault_plan=None,
) -> None:
    """Message loop of one reader process.

    Messages: ``("batch", seq, segment, count)`` → estimates written into
    the staging result column, acked with ``("ok", seq, segment, count)``;
    ``("remap", spec)`` → attach the new arena generation (acked with
    ``("remapped", generation)`` after the old mapping is released);
    ``("stop",)`` → clean exit.  Any exception is reported as
    ``("error", message, traceback)`` and ends the process.

    ``fault_plan`` is the parent's installed :class:`~repro.faults.FaultPlan`
    (respawned workers receive :func:`~repro.faults.restart_plan` instead),
    arming the ``reader_*`` injection sites with ``shard=worker_index``.
    The unconditional install matters under the fork start method: a
    respawned worker would otherwise *inherit* the parent's full plan and
    re-fire the one-shot spec that killed its predecessor, forever.
    """
    _faults.install(fault_plan)
    staging_shm = None
    state = None
    try:
        state = _WorkerState(spec, kernel_name, scratch_keys)
        staging_shm = shared_memory.SharedMemory(name=staging_name)
        stage_src, stage_tgt, stage_out = _staging_views(
            staging_shm.buf, segments, capacity
        )
        pair_scratch = _PairScratch(capacity)
        probe_index = np.empty(capacity, dtype=np.int64)
        probe_keys = np.empty(capacity, dtype=np.uint64)
        probe_hit = np.empty(capacity, dtype=bool)
        probe_tmp = np.empty(capacity, dtype=bool)
        if cache_bits > 0:
            mask = np.uint64((1 << cache_bits) - 1)
            memo_keys = np.zeros(1 << cache_bits, dtype=np.uint64)
            memo_vals = np.zeros(1 << cache_bits, dtype=np.float64)
            memo_live = np.zeros(1 << cache_bits, dtype=bool)
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "batch":
                _tag, seq, segment, count = message
                sources = stage_src[segment, :count]
                targets = stage_tgt[segment, :count]
                out = stage_out[segment, :count]
                keys = pair_scratch.pair_keys(sources, targets)
                if cache_bits > 0:
                    index = probe_index[:count]
                    np.bitwise_and(keys, mask, out=index, casting="unsafe")
                    hit = probe_hit[:count]
                    slot_keys = np.take(memo_keys, index, out=probe_keys[:count])
                    np.equal(slot_keys, keys, out=hit)
                    live = np.take(memo_live, index, out=probe_tmp[:count])
                    np.logical_and(hit, live, out=hit)
                    if hit.all():
                        np.take(memo_vals, index, out=out)
                    else:
                        miss = np.logical_not(hit, out=probe_tmp[:count])
                        gathered = state.estimate(keys[miss], sources[miss])
                        out[hit] = memo_vals[index[hit]]
                        out[miss] = gathered
                        store = index[miss]
                        memo_keys[store] = keys[miss]
                        memo_vals[store] = gathered
                        memo_live[store] = True
                else:
                    out[...] = state.estimate(keys, sources)
                if _faults._PLAN is not None:
                    _faults.maybe_stall(_faults.SITE_READER_STALL_RING, worker_index)
                    _faults.crash_point(_faults.SITE_READER_CRASH_BATCH, worker_index)
                conn.send(("ok", seq, segment, count))
            elif tag == "remap":
                new_state = _WorkerState(message[1], kernel_name, scratch_keys)
                state.close()
                state = new_state
                if cache_bits > 0:
                    memo_live[:] = False
                if _faults._PLAN is not None:
                    _faults.crash_point(_faults.SITE_READER_CRASH_REMAP, worker_index)
                conn.send(("remapped", new_state.spec.generation))
            elif tag == "stop":
                break
            else:  # pragma: no cover - protocol guard
                raise ValueError(f"unknown reader message {tag!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    except BaseException as error:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", str(error), traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - defensive
            pass
    finally:
        if state is not None:
            state.close()
        if staging_shm is not None:
            stage_src = stage_tgt = stage_out = None
            try:
                staging_shm.close()
            except BufferError:  # pragma: no cover - defensive
                pass
        conn.close()


def _staging_views(buf, segments: int, capacity: int):
    """Per-worker staging columns: int64 sources/targets in, float64 out."""
    src_bytes = segments * capacity * 8
    sources = np.ndarray((segments, capacity), dtype=np.int64, buffer=buf)
    targets = np.ndarray(
        (segments, capacity), dtype=np.int64, buffer=buf, offset=src_bytes
    )
    out = np.ndarray(
        (segments, capacity), dtype=np.float64, buffer=buf, offset=2 * src_bytes
    )
    return sources, targets, out


# --------------------------------------------------------------------------- #
# Parent-side pool
# --------------------------------------------------------------------------- #


@dataclass
class _Reader:
    """Parent-side handle of one reader worker.

    ``pending`` tracks dispatched-but-unacked batch tokens in FIFO order;
    ``done`` holds copied-out results for tokens that were acked before
    their caller collected them (acks free staging segments immediately, so
    results must be copied out at ack time, not collect time).
    """

    process: mp.process.BaseProcess
    conn: Connection
    staging: shared_memory.SharedMemory
    stage_src: np.ndarray
    stage_tgt: np.ndarray
    stage_out: np.ndarray
    free_segments: List[int]
    pending: Deque[Tuple[int, int, int]] = field(default_factory=deque)
    done: Dict[Tuple[int, int, int], np.ndarray] = field(default_factory=dict)


class ReaderPool:
    """N reader processes answering plan gathers over one shared arena.

    Construct from a compiled plan (:meth:`from_plan`) or directly from any
    :class:`~repro.queries.plan.PlanServingMixin` estimator
    (:meth:`from_estimator`), then call :meth:`query_edges` /
    :meth:`query_columns` for synchronous answers, :meth:`map_batches` for a
    pipelined stream, or :meth:`query_edges_cached` for the serving tier's
    cache-merged path.  :meth:`swap` hot-swaps all workers onto a new plan
    generation; :meth:`close` tears everything down (idempotent).
    """

    def __init__(self, plan: CompiledQueryPlan, config: PlanConfig) -> None:
        if config.readers < 1:
            raise ReaderPoolError(
                f"reader pool needs readers >= 1, got {config.readers}"
            )
        self.config = config
        self._arena: Optional[PlanArena] = PlanArena(plan)
        self._readers: List[Optional[_Reader]] = []
        self._next_reader = 0
        self._sequence = 0
        self._closed = False
        self._alive: List[int] = []
        self._alive_dirty = True
        self._scratch_keys = scratch_capacity(config.scratch_mb, plan.depth)
        self._ctx = mp.get_context()
        # Serializes lifecycle mutations (respawn vs swap vs close) so a
        # supervisor healing from another thread never races a generation
        # swap into mapping a worker onto an arena being unlinked.
        self._lock = threading.Lock()
        try:
            for index in range(config.readers):
                self._readers.append(
                    self._spawn_reader(index, _faults.current_plan())
                )
        except BaseException:
            self.close()
            raise

    def _spawn_reader(self, index: int, fault_plan) -> _Reader:
        """Fresh staging ring + worker process mapped to the current arena."""
        config = self.config
        staging = shared_memory.SharedMemory(
            create=True,
            size=config.max_pending * config.batch_capacity * 24,
        )
        try:
            stage_src, stage_tgt, stage_out = _staging_views(
                staging.buf, config.max_pending, config.batch_capacity
            )
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_reader_worker,
                args=(
                    child_conn,
                    index,
                    self._arena.spec,
                    staging.name,
                    config.max_pending,
                    config.batch_capacity,
                    config.kernel,
                    self._scratch_keys,
                    config.cache_bits,
                    fault_plan,
                ),
                daemon=True,
                name=f"repro-reader-{index}",
            )
            process.start()
            child_conn.close()
        except BaseException:
            release_shm(staging)
            raise
        return _Reader(
            process=process,
            conn=parent_conn,
            staging=staging,
            stage_src=stage_src,
            stage_tgt=stage_tgt,
            stage_out=stage_out,
            free_segments=list(range(config.max_pending)),
        )

    def respawn_worker(self, index: int) -> None:
        """Bring a dead worker slot back against the *current* generation.

        The respawned worker gets a fresh staging ring, maps the arena the
        pool currently serves (not the one its predecessor died on) and
        rejoins the round-robin on the next :meth:`_next`.  Restarted
        workers receive :func:`repro.faults.restart_plan` — persistent
        fault specs survive, one-shot specs do not — mirroring the shard
        executors' restart semantics.
        """
        with self._lock:
            self._require_open()
            if not 0 <= index < len(self._readers):
                raise ReaderPoolError(f"no reader slot {index}")
            if self._readers[index] is not None:
                raise ReaderPoolError(f"reader {index} is still in service")
            self._readers[index] = self._spawn_reader(index, _faults.restart_plan())
            self._alive_dirty = True

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def from_plan(cls, plan: CompiledQueryPlan, config: PlanConfig) -> "ReaderPool":
        return cls(plan, config)

    @classmethod
    def from_estimator(cls, estimator, config: PlanConfig) -> "ReaderPool":
        """Pool over the estimator's current compiled plan."""
        return cls(estimator.compile_plan(), config)

    # -- introspection ---------------------------------------------------- #
    @property
    def readers(self) -> int:
        return len(self._readers)

    @property
    def alive_count(self) -> int:
        """Workers currently in the round-robin."""
        return len(self._alive_readers())

    def dead_workers(self) -> List[int]:
        """Slot indices whose worker has died and not been respawned."""
        return [i for i, reader in enumerate(self._readers) if reader is None]

    @property
    def generation(self) -> int:
        """The plan generation workers currently serve (post-swap)."""
        if self._arena is None:
            raise ReaderPoolError("reader pool is closed")
        return self._arena.generation

    @property
    def closed(self) -> bool:
        return self._closed

    # -- dispatch plumbing ------------------------------------------------ #
    def _require_open(self) -> None:
        if self._closed or self._arena is None:
            raise ReaderPoolError("reader pool is closed")

    def _reader(self, index: int) -> _Reader:
        reader = self._readers[index]
        if reader is None:
            raise ReaderWorkerError(index, "worker previously failed")
        return reader

    def _fail_reader(self, index: int, message: str) -> ReaderWorkerError:
        """Mark a reader dead and surface a typed error (pool stays closed-safe)."""
        reader = self._readers[index]
        if reader is not None:
            exitcode = reader.process.exitcode
            if exitcode is not None:
                message = f"{message} (exitcode {exitcode})"
            self._teardown_reader(index, reader)
        return ReaderWorkerError(index, message)

    def _teardown_reader(self, index: int, reader: _Reader) -> None:
        try:
            reader.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if reader.process.is_alive():  # pragma: no cover - timing dependent
            reader.process.terminate()
        reader.process.join(timeout=5)
        reader.stage_src = reader.stage_tgt = reader.stage_out = None  # type: ignore[assignment]
        release_shm(reader.staging)
        self._readers[index] = None
        self._alive_dirty = True

    def _send(self, index: int, message) -> None:
        reader = self._reader(index)
        try:
            reader.conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise self._fail_reader(index, f"died before dispatch: {error}") from None

    def _recv(self, index: int):
        reader = self._reader(index)
        try:
            return reader.conn.recv()
        except (EOFError, OSError) as error:
            raise self._fail_reader(index, f"died mid-batch: {error}") from None

    def _handle_ok(self, index: int, message) -> Tuple[int, int, int]:
        """Retire one batch ack: copy its results out, recycle the segment."""
        reader = self._reader(index)
        expected = reader.pending.popleft()
        if (message[1], message[2], message[3]) != expected:
            raise ReaderWorkerError(
                index, f"ack out of order: expected {expected}, got {message[1:]}"
            )
        _seq, segment, count = expected
        reader.done[expected] = reader.stage_out[segment, :count].copy()
        reader.free_segments.append(segment)
        return expected

    def _await_ack(self, index: int) -> Tuple[int, int, int]:
        """Block for the oldest pending batch ack of one reader."""
        while True:
            message = self._recv(index)
            tag = message[0]
            if tag == "ok":
                return self._handle_ok(index, message)
            if tag == "remapped":
                continue  # swap acknowledgement racing ahead of our wait
            if tag == "error":
                raise self._fail_reader(
                    index, f"failed: {message[1]}\n{message[2]}"
                )
            raise ReaderWorkerError(index, f"unknown reply {tag!r}")

    def _dispatch(
        self, index: int, sources: np.ndarray, targets: np.ndarray
    ) -> Tuple[int, int, int]:
        """Stage one (sub-)batch on a reader; returns the pending token."""
        count = len(sources)
        if count > self.config.batch_capacity:
            raise ReaderPoolError(
                f"batch of {count} keys exceeds staging capacity "
                f"{self.config.batch_capacity}; split it or raise "
                "PlanConfig.batch_capacity"
            )
        reader = self._reader(index)
        if not reader.free_segments:
            self._await_ack(index)
            reader = self._reader(index)
        segment = reader.free_segments.pop()
        reader.stage_src[segment, :count] = sources
        reader.stage_tgt[segment, :count] = targets
        self._sequence += 1
        token = (self._sequence, segment, count)
        reader.pending.append(token)
        self._send(index, ("batch", self._sequence, segment, count))
        return token

    def _collect(self, index: int, token: Tuple[int, int, int]) -> np.ndarray:
        """Wait until ``token`` is acked, then hand its copied results over."""
        reader = self._reader(index)
        while token not in reader.done:
            self._await_ack(index)
            reader = self._reader(index)
        return reader.done.pop(token)

    def _alive_readers(self) -> List[int]:
        if self._alive_dirty:
            self._alive = [
                i for i, reader in enumerate(self._readers) if reader is not None
            ]
            self._alive_dirty = False
        return self._alive

    def _next(self) -> int:
        """Round-robin over the surviving readers."""
        alive = self._alive_readers()
        if not alive:
            raise ReaderPoolError("no reader workers left alive")
        choice = alive[self._next_reader % len(alive)]
        self._next_reader += 1
        return choice

    # -- public query paths ------------------------------------------------ #
    def query_columns(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        *,
        split: bool = True,
    ) -> np.ndarray:
        """Synchronous estimates for parallel int64 source/target columns.

        Large batches are split into contiguous chunks across the surviving
        readers and reassembled **in submission order** — the demux contract
        the cross-worker ordering regression test pins.
        """
        self._require_open()
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        count = len(sources)
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        alive = len(self._alive_readers())
        if not split or count < MIN_SPLIT_KEYS or alive == 1:
            index = self._next()
            token = self._dispatch(index, sources, targets)
            return self._collect(index, token)
        chunks = min(alive, max(1, count // (MIN_SPLIT_KEYS // 2)))
        bounds = np.linspace(0, count, chunks + 1).astype(int)
        inflight: List[Tuple[int, Tuple[int, int, int], int, int]] = []
        for begin, end in zip(bounds[:-1], bounds[1:]):
            if begin == end:
                continue
            index = self._next()
            token = self._dispatch(index, sources[begin:end], targets[begin:end])
            inflight.append((index, token, begin, end))
        out = np.empty(count, dtype=np.float64)
        for index, token, begin, end in inflight:
            out[begin:end] = self._collect(index, token)
        return out

    def query_edges(self, edges: Sequence[EdgeKey], *, split: bool = True) -> np.ndarray:
        """Synchronous estimates for ``(source, target)`` edge keys."""
        sources = np.fromiter(
            (edge[0] for edge in edges), dtype=np.int64, count=len(edges)
        )
        targets = np.fromiter(
            (edge[1] for edge in edges), dtype=np.int64, count=len(edges)
        )
        return self.query_columns(sources, targets, split=split)

    def query_edges_cached(
        self,
        edges: Sequence[EdgeKey],
        cache: HotEdgeCache,
        generation: int,
    ) -> np.ndarray:
        """Cache-merged pool path: memo hits on the loop, misses to the pool.

        This is the serving tier's coalesced answer path when a pool is
        active: :meth:`HotEdgeCache.lookup_partial` fills the hits at their
        original batch positions, the misses are compacted, split across
        workers, and scattered back by miss index — so mixed cached/gathered
        batches keep exactly the submission order regardless of how many
        workers served them.
        """
        self._require_open()
        count = len(edges)
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        sources = np.fromiter((edge[0] for edge in edges), dtype=np.int64, count=count)
        targets = np.fromiter((edge[1] for edge in edges), dtype=np.int64, count=count)
        keys = pair_keys_to_uint64(sources, targets)
        key_list = keys.tolist()
        cached, miss = cache.lookup_partial(generation, key_list)
        if cached is None:
            values = self.query_columns(sources, targets)
            cache.store_many(generation, key_list, values.tolist())
            return values
        if not miss.any():
            return cached
        miss_indices = np.nonzero(miss)[0]
        gathered = self.query_columns(sources[miss_indices], targets[miss_indices])
        cached[miss_indices] = gathered
        cache.store_many(
            generation,
            [key_list[index] for index in miss_indices],
            gathered.tolist(),
        )
        return cached

    def map_batches(
        self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> List[np.ndarray]:
        """Pipelined answers for many column batches, in submission order.

        Keeps every reader's staging ring full (``max_pending`` deep) —
        the benchmark's steady-state dispatch pattern, mirroring how the
        serving coalescer overlaps drains with pool compute.
        """
        self._require_open()
        placements: List[Tuple[int, Tuple[int, int, int]]] = []
        results: List[Optional[np.ndarray]] = [None] * len(batches)
        for position, (sources, targets) in enumerate(batches):
            index = self._next()
            token = self._dispatch(
                index,
                np.ascontiguousarray(sources, dtype=np.int64),
                np.ascontiguousarray(targets, dtype=np.int64),
            )
            placements.append((index, token))
            # Collect eagerly once the ring is saturated so staging segments
            # recycle without ever blocking the whole fleet on one reader.
            ready = position - len(self._readers) * (self.config.max_pending - 1)
            if ready >= 0 and results[ready] is None:
                r_index, r_token = placements[ready]
                results[ready] = self._collect(r_index, r_token)
        for position, (index, token) in enumerate(placements):
            if results[position] is None:
                results[position] = self._collect(index, token)
        return results  # type: ignore[return-value]

    # -- generation hot-swap ---------------------------------------------- #
    def swap(self, plan: CompiledQueryPlan) -> None:
        """Publish a new plan generation to every worker, without pausing reads.

        In-flight batches finish on the old arena (worker pipes are FIFO);
        the old block is unlinked only after every surviving worker has
        remapped, so no reader ever loses its mapping mid-gather.

        Worker death mid-swap (broken pipe on the remap send, death before
        the remap ack) marks that worker dead and moves on: the survivors
        still remap, the old arena is **always** released — a swap can
        shrink the pool but never leak the superseded ``PlanArena`` segment
        or leave survivors serving mixed generations.  A supervisor (or an
        explicit :meth:`respawn_worker`) brings the dead slots back against
        the new generation.
        """
        self._require_open()
        with self._lock:
            if plan.generation == self._arena.generation:
                return
            new_arena = PlanArena(plan)
            old_arena = self._arena
            self._arena = new_arena
            try:
                for index, reader in enumerate(self._readers):
                    if reader is None:
                        continue
                    try:
                        self._send(index, ("remap", new_arena.spec))
                    except ReaderWorkerError:
                        continue
                for index, reader in enumerate(self._readers):
                    if reader is None:
                        continue
                    try:
                        self._await_remapped(index, new_arena.generation)
                    except ReaderWorkerError:
                        continue
            finally:
                old_arena.close()

    def _await_remapped(self, index: int, generation: int) -> None:
        while True:
            message = self._recv(index)
            tag = message[0]
            if tag == "remapped" and message[1] == generation:
                return
            if tag == "ok":
                self._handle_ok(index, message)
                continue
            if tag == "error":
                raise self._fail_reader(index, f"failed: {message[1]}\n{message[2]}")
            raise ReaderWorkerError(index, f"unknown reply {tag!r}")

    def swap_from(self, estimator) -> bool:
        """Swap onto ``estimator``'s current plan if its generation moved."""
        if estimator.ingest_generation != self.generation:
            self.swap(estimator.compile_plan())
            return True
        return False

    # -- lifecycle ---------------------------------------------------------- #
    def close(self) -> None:
        """Stop workers, release staging rings and unlink the arena (idempotent).

        Teardown must not depend on any per-worker step succeeding: a
        broken pipe, an already-reaped process or a teardown exception on
        one worker never blocks releasing the others' staging rings or
        unlinking the plan arena — close after partial worker death is
        exactly as leak-free as close of a healthy pool.
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for index, reader in enumerate(self._readers):
                if reader is None:
                    continue
                try:
                    reader.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                try:
                    self._teardown_reader(index, reader)
                except Exception:  # pragma: no cover - defensive
                    self._readers[index] = None
                    release_shm(reader.staging)
            if self._arena is not None:
                try:
                    self._arena.close()
                finally:
                    self._arena = None

    def __enter__(self) -> "ReaderPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = sum(reader is not None for reader in self._readers)
        return (
            f"ReaderPool(readers={alive}/{len(self._readers)}, "
            f"kernel={self.config.kernel!r}, "
            f"generation={self._arena.generation if self._arena else 'closed'})"
        )


# --------------------------------------------------------------------------- #
# Supervision
# --------------------------------------------------------------------------- #


class ReaderSupervisor:
    """Self-healing driver over a :class:`ReaderPool`.

    Mirrors :class:`~repro.distributed.recovery.ShardSupervisor` for the
    read plane: worker deaths surface as :class:`ReaderWorkerError` on the
    dispatch path, the supervisor re-issues the failed (idempotent) batch
    on the survivors immediately, and a background healer respawns the dead
    slot against the pool's current arena generation — with exponential
    backoff between respawns of the same slot and a per-slot restart budget
    (:attr:`PlanConfig.max_restarts`).  A request only ever fails once the
    whole pool is gone and the blocking heal cannot bring any slot back.

    Pass ``background=False`` for deterministic tests: nothing heals until
    :meth:`heal` is called explicitly.
    """

    def __init__(self, pool: ReaderPool, *, background: bool = True) -> None:
        self.pool = pool
        self.restarts = 0
        self.exhausted: Set[int] = set()
        self._attempts: Dict[int, int] = {}
        self._not_before: Dict[int, float] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if background:
            self._thread = threading.Thread(
                target=self._run, daemon=True, name="repro-reader-supervisor"
            )
            self._thread.start()

    # -- healing --------------------------------------------------------- #
    def _backoff(self, attempts: int) -> float:
        """Respawn-rate floor after the ``attempts``-th respawn of a slot."""
        config = self.pool.config
        return config.restart_backoff_seconds * (
            config.restart_backoff_multiplier ** max(attempts - 1, 0)
        )

    def heal(self) -> Optional[float]:
        """Respawn every dead slot whose backoff window has elapsed.

        Returns the seconds until the next slot becomes eligible (``None``
        when nothing is left to heal — all slots alive or budget-exhausted).
        """
        with self._lock:
            return self._heal_locked()

    def _heal_locked(self) -> Optional[float]:
        pool = self.pool
        if pool.closed:
            return None
        soonest: Optional[float] = None
        for index in pool.dead_workers():
            if index in self.exhausted:
                continue
            attempts = self._attempts.get(index, 0)
            if attempts >= pool.config.max_restarts:
                self.exhausted.add(index)
                if _obs._ENABLED:
                    READER_RESTART_EVENTS["exhausted"].inc()
                continue
            now = time.monotonic()
            not_before = self._not_before.get(index, 0.0)
            if now < not_before:
                wait = not_before - now
                soonest = wait if soonest is None else min(soonest, wait)
                continue
            self._attempts[index] = attempts + 1
            self._not_before[index] = now + self._backoff(attempts + 1)
            begin = time.monotonic()
            try:
                pool.respawn_worker(index)
            except ReaderPoolError:
                if pool.closed:
                    return None
                # Spawn failed: the advanced backoff window rate-limits the
                # next attempt; the budget above bounds the total.
                wait = self._not_before[index] - time.monotonic()
                if wait > 0:
                    soonest = wait if soonest is None else min(soonest, wait)
                continue
            self.restarts += 1
            if _obs._ENABLED:
                READER_RESTART_SECONDS.observe(time.monotonic() - begin)
                READER_RESTART_EVENTS["respawned"].inc()
        READER_DEAD.set(float(len(pool.dead_workers()) if not pool.closed else 0))
        return soonest

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                wait = self.heal()
            except Exception:  # pragma: no cover - healer must never die
                wait = 0.25
            self._wake.wait(timeout=wait)
            self._wake.clear()

    def notify(self) -> None:
        """Wake the background healer (a death was just observed)."""
        self._wake.set()

    def _heal_blocking(self) -> bool:
        """Heal through backoff windows; True once any worker is serving.

        Only used when the pool is empty — there is nothing to serve from,
        so sleeping out the backoff on the calling thread costs no request
        anything it was not already paying.
        """
        while True:
            wait = self.heal()
            if self.pool.closed:
                return False
            if self.pool.alive_count > 0:
                return True
            if wait is None:
                return False
            time.sleep(wait)

    # -- supervised dispatch --------------------------------------------- #
    def call(self, fn: Callable[..., "_T"], *args, **kwargs) -> "_T":
        """Run one idempotent pool operation to completion or pool death.

        ``ReaderWorkerError`` re-issues the operation on the survivors (no
        partial results ever escaped — batch results only surface on a
        complete ack) and wakes the healer; an empty pool triggers a
        blocking heal.  The operation itself must be safe to re-issue,
        which every read path is.
        """
        while True:
            try:
                return fn(*args, **kwargs)
            except ReaderWorkerError:
                if self.pool.closed:
                    raise
                self.notify()
                if self._thread is None:
                    self.heal()
                if self.pool.alive_count == 0 and not self._heal_blocking():
                    raise
            except ReaderPoolError:
                if self.pool.closed:
                    raise
                if not self._heal_blocking():
                    raise

    # -- lifecycle / telemetry ------------------------------------------- #
    def close(self) -> None:
        """Stop the background healer (the pool's lifecycle is the owner's)."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def telemetry(self) -> dict:
        """Supervisor state for the serving health surface."""
        pool = self.pool
        dead = [] if pool.closed else pool.dead_workers()
        return {
            "width": pool.readers,
            "alive": 0 if pool.closed else pool.alive_count,
            "dead_workers": dead,
            "restarts": self.restarts,
            "exhausted": sorted(self.exhausted),
            "degraded": bool(dead),
            "self_healed": not dead and not pool.closed,
        }

"""Estimation-accuracy metrics.

Section 6.2 defines two measures over an edge query set ``Q_e``:

* **Average relative error** (Equations 12–13):
  ``e_r(q) = f̃(q)/f(q) - 1`` averaged over all queries.
* **Number of effective queries** (Equation 14): the number of queries whose
  relative error does not exceed a threshold ``G0`` (5 by default).

Subgraph queries use the analogous relative error on the aggregated value
(Equation 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.graph.edge import EdgeKey
from repro.queries.edge_query import EdgeQuery
from repro.queries.subgraph_query import SubgraphQuery
from repro.utils.validation import require_non_negative

#: Default effectiveness threshold ``G0`` (Section 6.2).
DEFAULT_EFFECTIVENESS_THRESHOLD = 5.0


def relative_error(estimate: float, truth: float) -> float:
    """``estimate / truth - 1`` (Equation 12).

    True frequencies of queried edges are positive by construction (queries
    are sampled from the stream); a zero truth therefore indicates a
    mis-specified query and raises.
    """
    if truth <= 0:
        raise ValueError(f"true frequency must be > 0 to compute a relative error, got {truth}")
    return estimate / truth - 1.0


def relative_errors(
    estimates: Sequence[float], truths: Sequence[float]
) -> np.ndarray:
    """Per-query Equation-12 errors as one vectorized column.

    Applies the same checks as the scalar :func:`relative_error` — equal
    lengths, and every truth strictly positive (the first offending truth is
    named in the error, exactly as the scalar path would raise on it).
    """
    estimate_arr = np.asarray(estimates, dtype=np.float64)
    truth_arr = np.asarray(truths, dtype=np.float64)
    if estimate_arr.shape != truth_arr.shape or estimate_arr.ndim != 1:
        raise ValueError("estimates and truths must have the same length")
    invalid = truth_arr <= 0
    if invalid.any():
        offender = truths[int(np.argmax(invalid))]
        raise ValueError(
            f"true frequency must be > 0 to compute a relative error, got {offender}"
        )
    return estimate_arr / truth_arr - 1.0


def average_relative_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean relative error over a query set (Equation 13), vectorized."""
    if len(estimates) != len(truths):
        raise ValueError("estimates and truths must have the same length")
    if not len(estimates):
        raise ValueError("cannot average over an empty query set")
    return float(relative_errors(estimates, truths).mean())


def effective_query_count(
    estimates: Sequence[float],
    truths: Sequence[float],
    threshold: float = DEFAULT_EFFECTIVENESS_THRESHOLD,
) -> int:
    """Number of queries with relative error <= ``threshold`` (Equation 14),
    vectorized."""
    require_non_negative(threshold, "threshold")
    if len(estimates) != len(truths):
        raise ValueError("estimates and truths must have the same length")
    if not len(estimates):
        return 0
    return int((relative_errors(estimates, truths) <= threshold).sum())


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy summary of a query set against one estimator.

    Attributes:
        query_count: number of evaluated queries.
        average_relative_error: Equation 13.
        effective_queries: Equation 14 count at ``threshold``.
        threshold: the ``G0`` used for the effective-query count.
        max_relative_error: worst per-query relative error (diagnostic).
    """

    query_count: int
    average_relative_error: float
    effective_queries: int
    threshold: float
    max_relative_error: float

    @property
    def effective_fraction(self) -> float:
        """Fraction of queries that were effective."""
        if self.query_count == 0:
            return 0.0
        return self.effective_queries / self.query_count


def summarize_errors(
    estimates: Sequence[float],
    truths: Sequence[float],
    threshold: float = DEFAULT_EFFECTIVENESS_THRESHOLD,
) -> EvaluationResult:
    """Build an :class:`EvaluationResult` from parallel estimate/truth lists.

    One vectorized error column feeds every summary statistic — this sits on
    the benchmark-scoring path, where query sets are 10,000 strong (Section
    6.3) and the former per-query ``zip`` loop was the bottleneck.
    """
    if not len(estimates):
        raise ValueError("cannot evaluate an empty query set")
    errors = relative_errors(estimates, truths)
    return EvaluationResult(
        query_count=int(errors.size),
        average_relative_error=float(errors.mean()),
        effective_queries=int((errors <= threshold).sum()),
        threshold=threshold,
        max_relative_error=float(errors.max()),
    )


def evaluate_edge_queries(
    estimator: Callable[[EdgeKey], float],
    queries: Sequence[EdgeQuery],
    true_frequencies: Dict[EdgeKey, float],
    threshold: float = DEFAULT_EFFECTIVENESS_THRESHOLD,
) -> EvaluationResult:
    """Evaluate an edge-query estimator against exact frequencies.

    Args:
        estimator: maps an edge key to an estimated frequency (e.g.
            ``gsketch.query_edge``).
        queries: the edge query set ``Q_e``.
        true_frequencies: exact frequencies from
            :meth:`~repro.graph.stream.GraphStream.edge_frequencies`.
        threshold: the effectiveness threshold ``G0``.

    Queries whose edge never occurred in the stream are rejected (the paper
    samples queries from the stream, so every query has positive truth).
    """
    estimates: List[float] = []
    truths: List[float] = []
    for query in queries:
        truth = true_frequencies.get(query.key, 0.0)
        if truth <= 0:
            raise ValueError(
                f"edge query {query.key!r} does not occur in the stream; "
                "queries must be sampled from the stream"
            )
        estimates.append(estimator(query.key))
        truths.append(truth)
    return summarize_errors(estimates, truths, threshold)


def evaluate_subgraph_queries(
    estimator: Callable[[EdgeKey], float],
    queries: Sequence[SubgraphQuery],
    true_frequencies: Dict[EdgeKey, float],
    threshold: float = DEFAULT_EFFECTIVENESS_THRESHOLD,
) -> EvaluationResult:
    """Evaluate aggregate subgraph queries (Equation 15).

    Each subgraph is decomposed into constituent edge queries, estimated edge
    by edge, and recombined with the query's aggregate Γ; the relative error
    is computed on the aggregated value against the aggregated truth.
    """
    estimates: List[float] = []
    truths: List[float] = []
    for query in queries:
        edge_estimates = [estimator(edge) for edge in query.edges]
        edge_truths = []
        for edge in query.edges:
            truth = true_frequencies.get(edge, 0.0)
            if truth <= 0:
                raise ValueError(
                    f"subgraph constituent edge {edge!r} does not occur in the stream"
                )
            edge_truths.append(truth)
        estimates.append(query.combine(edge_estimates))
        truths.append(query.combine(edge_truths))
    return summarize_errors(estimates, truths, threshold)

"""Aggregate functions Γ(·) for subgraph queries.

The paper defines aggregate subgraph queries as
``f̃(G) = Γ(f̃(x1,y1), ..., f̃(xk,yk))`` where Γ is an aggregate of interest
such as SUM, MIN or AVERAGE (Section 3.1).  The experiments use SUM
(Section 6.2); this module provides the standard set plus MAX so users can
extend.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

#: Signature of an aggregate function: a sequence of edge frequencies -> scalar.
AggregateFunction = Callable[[Sequence[float]], float]


def _sum(values: Sequence[float]) -> float:
    return float(sum(values))


def _minimum(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("MIN aggregate requires at least one value")
    return float(min(values))


def _maximum(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("MAX aggregate requires at least one value")
    return float(max(values))


def _average(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("AVERAGE aggregate requires at least one value")
    return float(sum(values) / len(values))


AGGREGATES: Dict[str, AggregateFunction] = {
    "sum": _sum,
    "min": _minimum,
    "max": _maximum,
    "average": _average,
}


def get_aggregate(name: str) -> AggregateFunction:
    """Look up an aggregate function by case-insensitive name.

    Raises:
        KeyError: if ``name`` is not one of ``sum``, ``min``, ``max``,
            ``average``.
    """
    key = name.strip().lower()
    if key not in AGGREGATES:
        raise KeyError(
            f"unknown aggregate {name!r}; available: {sorted(AGGREGATES)}"
        )
    return AGGREGATES[key]

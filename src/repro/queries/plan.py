"""The read-optimized query plane: frozen sketch arenas + one-gather estimation.

Ingestion got its vectorized hot path in earlier iterations (batched hashing,
shared-memory arenas, fused apply kernels); this module gives *queries* the
same treatment.  The serving workload the ROADMAP targets — millions of small
point-query batches per second — is dominated by per-call overhead, not kernel
time: the live path pays, per call, an ``EdgeBatch`` round-trip, a stable
argsort, per-partition ``PartitionGroup`` construction, and one
``estimate_batch`` (itself a per-row Python loop) *per partition touched*.

:class:`CompiledQueryPlan` removes all of that.  At compile time the counter
tables of every partition sketch **plus the outlier sketch** are laid out in
one contiguous ``(depth, Σwidths)`` read arena (the same layout the
shared-memory ingest executor uses for its per-shard arenas), together with a
stacked per-slot hash-coefficient matrix and per-slot column offsets.  A batch
of M edges spanning any number of partitions is then answered by exactly

1. one vectorized key canonicalization
   (:func:`~repro.sketches.hashing.pair_keys_to_uint64`),
2. one vectorized key → partition route
   (:meth:`~repro.core.router.VertexRouter.route_batch`) plus one ``where``
   mapping partitions onto arena slots,
3. one fused :func:`~repro.sketches.hashing.mulmod_mersenne61_batch` pass over
   all ``depth × M`` (coefficient, key) pairs
   (:func:`~repro.sketches.hashing.gathered_hash_columns` with per-element
   coefficient columns),
4. one fancy-index gather from the flat arena and one ``min`` reduce —

with **no per-group Python loop and no per-partition ``estimate_batch``
calls**.  Because the arithmetic is the identical uint64 kernel sequence the
live path runs, plan answers are bit-identical to
``CountMinSketch.estimate_batch`` per element; the parity tests in
``tests/test_query_plan.py`` enforce that for every backend.

Freshness is generation-based: every backend bumps an ingest generation
counter on any mutation, and :class:`PlanServingMixin` lazily refreshes the
plan (and clears the :class:`HotEdgeCache`) when the generation moved.  For
backends whose sketches own private tables (``GSketch``, ``GlobalSketch`` and
the per-window estimators) the arena is **attached**: the sketches adopt
zero-copy views into the arena (:meth:`~repro.sketches.countmin.CountMinSketch.attach_table`),
so ingestion writes land directly in the arena and a refresh only has to
re-derive the per-slot confidence constants.  The sharded coordinator cannot
attach (its sketches may already be views into a shared-memory ingest arena,
and executor syncs may swap the sketch objects wholesale), so its plan
re-copies the tables on refresh instead.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.batch import EdgeBatch, label_column
from repro.graph.edge import EdgeKey
from repro.observability import metrics as _obs
from repro.observability.tracing import span as _span
from repro.observability.tracing import stage_clock as _stage_clock
from repro.sketches.countmin import CountMinSketch
from repro.sketches.hashing import gathered_hash_columns, key_to_uint64

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle guard)
    from repro.core.router import VertexRouter

# Telemetry handles (see README "Observability" for the name catalogue).
# Resolved once at import; every update is gated on the module enable flag,
# so the disabled hot path pays one flag check and no dictionary lookups.
_QUERY_STAGE_HISTOGRAMS = {
    stage: _obs.REGISTRY.histogram(
        "repro_query_stage_seconds",
        "Compiled-plan query stage latency (seconds)",
        {"stage": stage},
    )
    for stage in ("hash", "route", "gather")
}
_QUERY_SECONDS = _obs.REGISTRY.histogram(
    "repro_query_plan_seconds", "End-to-end plan-served query batch latency (seconds)"
)
_QUERY_BATCHES = _obs.REGISTRY.counter(
    "repro_query_batches_total", "Plan-served query batches answered"
)
_QUERY_EDGES = _obs.REGISTRY.counter(
    "repro_query_edges_total", "Edges answered through the compiled query plan"
)
_PLAN_COMPILES = _obs.REGISTRY.counter(
    "repro_plan_compile_total", "Query plans compiled from scratch"
)
_PLAN_REFRESHES = _obs.REGISTRY.counter(
    "repro_plan_refresh_total", "Stale query plans refreshed in place"
)

#: Mirrors :data:`repro.core.router.OUTLIER_PARTITION`.  Importing it here
#: would cycle (``repro.core.__init__`` → ``gsketch`` → this module); the
#: equality is pinned by ``tests/test_query_plan.py``.
OUTLIER_PARTITION = -1

#: Batches up to this size take the scalar all-or-nothing memo path (cheaper
#: than columnarizing a tiny batch).  Larger batches — the shape coalesced
#: server traffic arrives in — consult the memo per key instead
#: (:meth:`HotEdgeCache.lookup_partial`): cached keys are served from the
#: memo and only the misses are gathered from the arena, so hot-edge traffic
#: from many clients never bypasses the cache just because it was coalesced.
HOT_CACHE_MAX_BATCH = 8

#: Default number of memoized point estimates per estimator.
DEFAULT_CACHE_CAPACITY = 65_536


def demux_by_counts(values: Sequence[float], counts: Sequence[int]) -> List[List[float]]:
    """Split one flat gather's results back into per-request slices.

    The serving tier coalesces point queries from many clients into a single
    compiled-plan batch; this is the inverse — ``counts[i]`` consecutive
    values belong to request ``i``.  The slices are plain lists (they go
    straight onto the wire as JSON).
    """
    slices: List[List[float]] = []
    cursor = 0
    for count in counts:
        nxt = cursor + count
        chunk = values[cursor:nxt]
        slices.append(chunk.tolist() if isinstance(chunk, np.ndarray) else list(chunk))
        cursor = nxt
    if cursor != len(values):
        raise ValueError(f"counts sum to {cursor}, but {len(values)} values were given")
    return slices


class HotEdgeCache:
    """Generation-tagged memo of point estimates, keyed by canonical uint64.

    Repeated point queries for the same (hot) edges are the dominant serving
    pattern the paper's workload model implies — Zipf-skewed query sets hit a
    small set of edges over and over.  The cache maps the canonical uint64
    edge key to its most recent estimate and is invalidated wholesale whenever
    the owning estimator's ingest generation moves, so a hit is always
    bit-identical to recomputing through the plan.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "_generation",
        "hits",
        "misses",
        "evictions",
        "invalidations",
    )

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, float] = {}
        self._generation = -1
        # Plain ints, always on: cheaper than registry probes in the per-query
        # path; snapshots mirror them into the registry (``telemetry()``).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def generation(self) -> int:
        """The ingest generation the cached estimates belong to."""
        return self._generation

    def _sync_generation(self, generation: int) -> Dict[int, float]:
        if generation != self._generation:
            if self._generation != -1:
                # The first sync merely adopts the owner's generation; every
                # later move means ingest/restore/merge made the memo stale.
                self.invalidations += 1
            self._entries = {}
            self._generation = generation
        return self._entries

    def lookup_many(self, generation: int, keys: Sequence[int]) -> Optional[List[float]]:
        """All-or-nothing lookup: the estimates for ``keys``, or ``None``.

        Partial hits return ``None`` — the vectorized plan path answers the
        whole batch at essentially the cost of answering the misses alone.
        Hit/miss counters tally lookup *batches*, matching the all-or-nothing
        contract.
        """
        entries = self._sync_generation(generation)
        values = []
        for key in keys:
            value = entries.get(key)
            if value is None:
                self.misses += 1
                return None
            values.append(value)
        self.hits += 1
        return values

    def lookup_partial(
        self, generation: int, keys: Sequence[int]
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Per-key lookup for large (coalesced) batches: hits served, misses marked.

        Returns ``(values, miss_mask)`` where ``values[i]`` holds the memoized
        estimate for every hit and ``miss_mask[i]`` is ``True`` where the key
        must still be gathered from the arena.  Returns ``(None, None)`` when
        the memo is empty for ``generation`` — the caller's untouched
        vectorized path costs nothing extra then.  Unlike
        :meth:`lookup_many`'s all-or-nothing batch contract, hits and misses
        are tallied *per key* here: a coalesced server batch routinely mixes
        hot and cold edges, and serving the hot ones from the memo while
        gathering only the misses is the whole point.
        """
        entries = self._sync_generation(generation)
        if not entries:
            return None, None
        values = np.zeros(len(keys), dtype=np.float64)
        miss = np.zeros(len(keys), dtype=bool)
        hits = 0
        get = entries.get
        for index, key in enumerate(keys):
            value = get(key)
            if value is None:
                miss[index] = True
            else:
                values[index] = value
                hits += 1
        self.hits += hits
        self.misses += len(keys) - hits
        return values, miss

    def store_many(
        self, generation: int, keys: Sequence[int], values: Sequence[float]
    ) -> None:
        """Memoize a batch of (key, estimate) pairs under ``generation``."""
        entries = self._sync_generation(generation)
        if len(entries) + len(keys) > self.capacity:
            # Wholesale eviction: the hot set re-establishes itself within a
            # few batches, and a clear keeps the memo O(1) with no bookkeeping.
            self.evictions += len(entries)
            entries.clear()
        for key, value in zip(keys, values):
            entries[key] = value

    def telemetry(self) -> Dict[str, int]:
        """Counter snapshot for ``telemetry_snapshot()`` surfaces."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "generation": self._generation,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class CompiledQueryPlan:
    """A frozen, arena-backed read path over a set of partition sketches.

    Build instances through :meth:`compile`; slot ``i`` serves partition ``i``
    and, when a router is present, the last slot serves the outlier partition.
    """

    def __init__(
        self,
        *,
        arena: np.ndarray,
        hash_a: np.ndarray,
        hash_b: np.ndarray,
        widths: np.ndarray,
        offsets: np.ndarray,
        router: Optional[VertexRouter],
        attached: bool,
        views: Tuple[np.ndarray, ...],
        generation: int,
    ) -> None:
        self._arena = arena
        self._flat = arena.reshape(-1)
        self._a = hash_a
        self._b = hash_b
        self._widths = widths
        self._offsets = offsets
        self._router = router
        self._attached = attached
        self._views = views
        self.generation = generation
        depth, total_width = arena.shape
        self._row_base = (np.arange(depth, dtype=np.int64) * total_width)[:, None]
        self._bounds = np.zeros(len(widths), dtype=np.float64)
        self._failures = np.zeros(len(widths), dtype=np.float64)
        self._kernel = None

    # ------------------------------------------------------------------ #
    # Compilation / refresh
    # ------------------------------------------------------------------ #
    @classmethod
    def compile(
        cls,
        sketches: Sequence[CountMinSketch],
        router: Optional[VertexRouter],
        generation: int = 0,
        attach: bool = False,
    ) -> "CompiledQueryPlan":
        """Lay the sketches out in one read arena and stack their hashing.

        Args:
            sketches: the physical sketches in slot order — for partitioned
                backends the localized sketches in partition order followed by
                the outlier sketch; a single sketch for the global baseline.
            router: the vertex → partition hash structure ``H``; ``None``
                routes every edge to slot 0 (single-sketch backends).
            generation: the owning estimator's ingest generation at compile
                time.
            attach: adopt zero-copy arena views as the sketches' live tables
                (:meth:`~repro.sketches.countmin.CountMinSketch.attach_table`),
                so subsequent ingestion writes straight into the arena.  Only
                safe for sketches with private tables.
        """
        if not sketches:
            raise ValueError("cannot compile a query plan over zero sketches")
        depth = sketches[0].depth
        for sketch in sketches:
            if sketch.depth != depth:
                raise ValueError(
                    f"all sketches must share depth {depth}, got {sketch.depth}"
                )
        widths = np.asarray([sketch.width for sketch in sketches], dtype=np.uint64)
        offsets = np.zeros(len(sketches), dtype=np.int64)
        np.cumsum(widths[:-1].astype(np.int64), out=offsets[1:])
        total_width = int(offsets[-1]) + int(widths[-1])
        arena = np.zeros((depth, total_width), dtype=np.float64)

        hash_a = np.empty((depth, len(sketches)), dtype=np.uint64)
        hash_b = np.empty((depth, len(sketches)), dtype=np.uint64)
        views = []
        for slot, sketch in enumerate(sketches):
            a, b = sketch.hash_arrays()
            hash_a[:, slot] = a
            hash_b[:, slot] = b
            start = int(offsets[slot])
            view = arena[:, start : start + sketch.width]
            if attach:
                sketch.attach_table(view)
            else:
                view[...] = sketch.table
            views.append(view)

        plan = cls(
            arena=arena,
            hash_a=hash_a,
            hash_b=hash_b,
            widths=widths,
            offsets=offsets,
            router=router,
            attached=attach,
            views=tuple(views),
            generation=generation,
        )
        plan._refresh_constants(sketches)
        return plan

    def _refresh_constants(self, sketches: Sequence[CountMinSketch]) -> None:
        """Re-derive the per-slot Equation-1 constants from the live sketches.

        Routed through :func:`~repro.core.estimator.countmin_confidence` — the
        scalar single source of truth — so plan-served intervals cannot
        diverge from the live confidence path.
        """
        from repro.core.estimator import countmin_confidence

        for slot, sketch in enumerate(sketches):
            template = countmin_confidence(sketch, 0.0)
            self._bounds[slot] = template.additive_bound
            self._failures[slot] = template.failure_probability

    def refresh(self, sketches: Sequence[CountMinSketch], generation: int) -> None:
        """Bring the plan up to date with the live sketches after ingestion.

        Attached plans share counter storage with the sketches, so only the
        confidence constants need re-deriving; detached plans (the sharded
        coordinator, whose sketch objects may have been swapped by an
        executor sync) re-copy every table into the arena.  Either way the
        arena afterwards equals a fresh :meth:`compile` of ``sketches``.
        """
        if len(sketches) != len(self._views):
            raise ValueError(
                f"plan covers {len(self._views)} slots, got {len(sketches)} sketches"
            )
        for slot, sketch in enumerate(sketches):
            view = self._views[slot]
            if view.shape != (self._arena.shape[0], sketch.width):
                raise ValueError(
                    f"slot {slot} width changed: plan has {view.shape[1]}, "
                    f"sketch has {sketch.width}"
                )
            if self._attached:
                # Re-adopt only if the sketch's table was swapped out from
                # under the arena (e.g. a load_state); adoption is idempotent.
                if not sketch.owns_table(view):
                    sketch.attach_table(view)
            else:
                view[...] = sketch.table
        self._refresh_constants(sketches)
        self.generation = generation

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    @property
    def attached(self) -> bool:
        """Whether the sketches' live tables are views into this arena."""
        return self._attached

    @property
    def depth(self) -> int:
        """Sketch depth (rows) shared by every slot."""
        return self._arena.shape[0]

    @property
    def routed(self) -> bool:
        """Whether this plan routes by source vertex (multi-slot backends)."""
        return self._router is not None

    @property
    def kernel(self):
        """The attached compiled kernel tier, or ``None`` (oracle path)."""
        return self._kernel

    def set_kernel(self, kernel) -> None:
        """Attach a :class:`~repro.queries.kernels.QueryKernel` tier.

        ``None`` restores the default oracle expressions.  The kernel owns
        mutable scratch, so an attached plan must not be queried from
        multiple threads concurrently (matching the estimators' existing
        single-writer contract).
        """
        self._kernel = kernel

    def export_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The frozen read-arena state: ``(arena, hash_a, hash_b, widths, offsets)``.

        These five arrays plus the router lookup columns
        (:meth:`export_router_arrays`) fully determine plan answers at this
        generation; the reader pool serializes them into one shared-memory
        block that worker processes map zero-copy.
        """
        return self._arena, self._a, self._b, self._widths, self._offsets

    def export_router_arrays(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Sorted ``(vertex, partition)`` routing columns, or ``None``.

        ``None`` means either the plan is single-slot (no router) or the
        router's label space is not integer-vectorizable — callers check
        :attr:`routed` to tell the two apart.
        """
        if self._router is None:
            return None
        lookup = self._router.lookup_arrays()
        if lookup is None and len(self._router) == 0:
            # An empty router routes everything to the outlier slot; that is
            # expressible as empty lookup columns.
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return lookup

    @property
    def num_slots(self) -> int:
        """Number of arena slots (partitions plus outlier, or 1)."""
        return len(self._widths)

    @property
    def arena_cells(self) -> int:
        """Number of counter cells in the read arena."""
        return self._arena.size

    def route_sources(
        self, sources: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Arena slot per source vertex, plus the raw partition ids.

        Single-sketch plans (no router) route everything to slot 0 and report
        no partition column.
        """
        if self._router is None:
            return np.zeros(len(sources), dtype=np.int64), None
        partitions = self._router.route_batch(sources)
        slots = np.where(
            partitions == OUTLIER_PARTITION, self.num_slots - 1, partitions
        )
        return slots, partitions

    def estimate_keys(self, keys: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Point estimates for pre-canonicalized keys with known arena slots.

        One fused hash pass over all ``depth × M`` pairs, one flat gather,
        one ``min`` reduce — bit-identical per element to
        :meth:`~repro.sketches.countmin.CountMinSketch.estimate_batch` on the
        slot's own sketch.
        """
        if keys.size == 0:
            return np.zeros(0, dtype=np.float64)
        kernel = self._kernel
        if kernel is not None:
            return self._estimate_keys_kernel(kernel, keys, slots)
        if self.num_slots == 1:
            # Single-slot plans (the global baseline) broadcast the one
            # coefficient column instead of gathering it per element, and
            # have no column offsets to apply.
            cols = gathered_hash_columns(self._a, self._b, self._widths, keys)
        else:
            cols = gathered_hash_columns(
                self._a[:, slots], self._b[:, slots], self._widths[slots], keys
            )
            cols += self._offsets[slots]
        cols += self._row_base
        return self._flat[cols].min(axis=0)

    def _estimate_keys_kernel(self, kernel, keys: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """The attached-kernel gather: scratch-staged, bit-exact vs the oracle."""
        if getattr(kernel, "fused", False):
            if self.num_slots == 1:
                return kernel.estimate(
                    self._a, self._b, self._widths, keys,
                    self._flat, self._row_base[:, 0], None,
                ).copy()
            return kernel.estimate(
                np.take(self._a, slots, axis=1), np.take(self._b, slots, axis=1),
                self._widths[slots], keys,
                self._flat, self._row_base[:, 0], self._offsets[slots],
            ).copy()
        if self.num_slots == 1:
            cols = kernel.hash_columns(self._a, self._b, self._widths, keys)
        else:
            coeff_a, coeff_b = kernel.take_columns(self._a, self._b, slots)
            cols = kernel.hash_columns(coeff_a, coeff_b, self._widths[slots], keys)
            cols += self._offsets[slots]
        cols += self._row_base
        # Copy the scratch-backed row out: callers may hold the result across
        # subsequent plan queries.
        return kernel.gather_min(self._flat, cols).copy()

    def confidence_constants(self, slots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-element additive bounds and failure probabilities, by slot."""
        return self._bounds[slots], self._failures[slots]

    def query_edges(self, edges: Sequence[EdgeKey]) -> np.ndarray:
        """Estimates for bare edge keys (hash + route + gather, no cache)."""
        if len(edges) == 0:
            return np.zeros(0, dtype=np.float64)
        clock = _stage_clock("query", _QUERY_STAGE_HISTOGRAMS)
        batch = EdgeBatch.from_edge_keys(edges)
        keys = batch.hashed_keys()
        clock.lap("hash")
        slots, _ = self.route_sources(batch.sources)
        clock.lap("route")
        estimates = self.estimate_keys(keys, slots)
        clock.lap("gather")
        return estimates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledQueryPlan(slots={self.num_slots}, cells={self.arena_cells}, "
            f"attached={self._attached}, generation={self.generation})"
        )


class PlanServingMixin:
    """Plan-served point queries shared by every estimator backend.

    A backend mixes this in, calls :meth:`_init_query_plane` during
    construction, bumps :meth:`_bump_generation` on **every** state mutation
    (per-element update, batch ingest, merge, checkpoint restore), and
    implements :meth:`_plan_layout`; in return it gets :meth:`compile_plan`
    (lazy compile / generation-checked refresh), plan-served
    :meth:`_planned_estimates` with the hot-edge cache in front, and
    :meth:`_planned_confidence` producing intervals plus partition
    provenance from the same single routing pass.
    """

    _query_plan: Optional[CompiledQueryPlan]

    def _init_query_plane(self, cache_capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self._query_plan = None
        self._plan_generation = 0
        self._hot_cache = HotEdgeCache(cache_capacity)
        self._plan_kernel = None

    def set_plan_kernel(self, kernel) -> None:
        """Select a compiled kernel tier for every future plan compile/refresh.

        Takes effect immediately on an already-compiled plan as well; pass
        ``None`` to restore the default oracle expressions.
        """
        self._plan_kernel = kernel
        if self._query_plan is not None:
            self._query_plan.set_kernel(kernel)

    def _bump_generation(self) -> None:
        """Mark any compiled plan and memoized estimates as stale."""
        self._plan_generation += 1

    @property
    def ingest_generation(self) -> int:
        """Monotonic counter of state mutations (plan/cache invalidation tag)."""
        return self._plan_generation

    # -- backend hooks -------------------------------------------------- #
    def _plan_layout(
        self,
    ) -> Tuple[List[CountMinSketch], Optional[VertexRouter], bool]:
        """The sketches in slot order, the router, and whether to attach."""
        raise NotImplementedError

    def _before_plan_query(self) -> None:
        """Pre-serve hook (the sharded coordinator drains its pipeline here)."""

    # -- telemetry ------------------------------------------------------ #
    def _plan_telemetry(self) -> Dict[str, object]:
        """Plan + hot-cache state shared by every ``telemetry_snapshot()``."""
        plan = self._query_plan
        return {
            "plan": {
                "compiled": plan is not None,
                "generation": self._plan_generation,
                "stale": plan is not None and plan.generation != self._plan_generation,
                "slots": plan.num_slots if plan is not None else 0,
                "arena_cells": plan.arena_cells if plan is not None else 0,
                "attached": plan.attached if plan is not None else False,
            },
            "hot_cache": self._hot_cache.telemetry(),
        }

    # -- plan lifecycle ------------------------------------------------- #
    def compile_plan(self) -> CompiledQueryPlan:
        """The current plan, compiling or refreshing it if ingestion moved on."""
        self._before_plan_query()
        plan = self._query_plan
        if plan is None:
            with _span("query", "compile"):
                sketches, router, attach = self._plan_layout()
                plan = CompiledQueryPlan.compile(
                    sketches, router, generation=self._plan_generation, attach=attach
                )
                if self._plan_kernel is not None:
                    plan.set_kernel(self._plan_kernel)
            self._query_plan = plan
            _PLAN_COMPILES.inc()
        elif plan.generation != self._plan_generation:
            with _span("query", "refresh"):
                sketches, _router, _attach = self._plan_layout()
                plan.refresh(sketches, self._plan_generation)
            _PLAN_REFRESHES.inc()
        return plan

    # -- serving -------------------------------------------------------- #
    def _planned_estimates(self, edges: Sequence[EdgeKey]) -> np.ndarray:
        """Plan-served estimates with the hot-edge cache on small batches.

        The telemetry wrapper times the whole call (histogram
        ``repro_query_plan_seconds``) and tallies batch/edge counters; when
        telemetry is disabled it costs one flag check and one extra frame.
        """
        if not _obs._ENABLED:
            return self._planned_estimates_impl(edges)
        begin = time.perf_counter_ns()
        estimates = self._planned_estimates_impl(edges)
        _QUERY_SECONDS._observe((time.perf_counter_ns() - begin) * 1e-9)
        _QUERY_BATCHES.inc()
        _QUERY_EDGES.inc(len(edges))
        return estimates

    def _planned_estimates_impl(self, edges: Sequence[EdgeKey]) -> np.ndarray:
        if len(edges) == 0:
            return np.zeros(0, dtype=np.float64)
        plan = self.compile_plan()
        if len(edges) <= HOT_CACHE_MAX_BATCH:
            # Scalar canonicalization: bit-identical to the batched pipeline
            # (pair_keys_to_uint64 == key_to_uint64 of the tuple) and cheaper
            # than columnarizing a tiny batch.
            keys = [key_to_uint64((edge[0], edge[1])) for edge in edges]
            cached = self._hot_cache.lookup_many(self._plan_generation, keys)
            if cached is not None:
                return np.asarray(cached, dtype=np.float64)
            slots, _ = plan.route_sources(label_column([edge[0] for edge in edges]))
            estimates = plan.estimate_keys(np.asarray(keys, dtype=np.uint64), slots)
            self._hot_cache.store_many(self._plan_generation, keys, estimates.tolist())
            return estimates
        # Large (coalesced) batches: serve per-key memo hits, gather only the
        # misses.  Cached values were produced by this same plan at this same
        # generation, and the miss-subset gather runs the identical per-element
        # kernel sequence, so the merged answer stays bit-exact.
        clock = _stage_clock("query", _QUERY_STAGE_HISTOGRAMS)
        batch = EdgeBatch.from_edge_keys(edges)
        keys_array = batch.hashed_keys()
        clock.lap("hash")
        key_list = keys_array.tolist()
        cached, miss = self._hot_cache.lookup_partial(self._plan_generation, key_list)
        if cached is None:
            slots, _ = plan.route_sources(batch.sources)
            clock.lap("route")
            estimates = plan.estimate_keys(keys_array, slots)
            clock.lap("gather")
            self._hot_cache.store_many(self._plan_generation, key_list, estimates.tolist())
            return estimates
        if not miss.any():
            return cached
        miss_indices = np.nonzero(miss)[0]
        slots, _ = plan.route_sources(batch.sources[miss_indices])
        clock.lap("route")
        gathered = plan.estimate_keys(keys_array[miss_indices], slots)
        clock.lap("gather")
        cached[miss_indices] = gathered
        self._hot_cache.store_many(
            self._plan_generation,
            [key_list[index] for index in miss_indices],
            gathered.tolist(),
        )
        return cached

    def _planned_confidence(
        self, edges: Sequence[EdgeKey]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """``(estimates, bounds, failures, partitions)`` from one routing pass.

        ``partitions`` is ``None`` for single-sketch plans.  The constants are
        gathered per element by arena slot, so queries spanning any number of
        partitions stay loop-free.
        """
        if not _obs._ENABLED:
            return self._planned_confidence_impl(edges)
        begin = time.perf_counter_ns()
        result = self._planned_confidence_impl(edges)
        _QUERY_SECONDS._observe((time.perf_counter_ns() - begin) * 1e-9)
        _QUERY_BATCHES.inc()
        _QUERY_EDGES.inc(len(edges))
        return result

    def _planned_confidence_impl(
        self, edges: Sequence[EdgeKey]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        plan = self.compile_plan()
        batch = EdgeBatch.from_edge_keys(edges)
        slots, partitions = plan.route_sources(batch.sources)
        estimates = plan.estimate_keys(batch.hashed_keys(), slots)
        bounds, failures = plan.confidence_constants(slots)
        return estimates, bounds, failures, partitions

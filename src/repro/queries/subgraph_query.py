"""Aggregate subgraph queries.

An aggregate subgraph query is a bag of constituent edges plus an aggregate
function Γ; it is answered by estimating each constituent edge separately and
combining the results with Γ (Sections 3.1 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, Set, Tuple

from repro.graph.edge import EdgeKey
from repro.queries.aggregate import get_aggregate
from repro.queries.edge_query import EdgeQuery


@dataclass(frozen=True)
class SubgraphQuery:
    """A query for the aggregate frequency of a subgraph's constituent edges.

    Attributes:
        edges: the constituent directed edges (a bag: duplicates allowed).
        aggregate: name of the aggregate function Γ (``sum`` by default, as in
            the paper's experiments).
    """

    edges: Tuple[EdgeKey, ...]
    aggregate: str = "sum"

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a subgraph query needs at least one constituent edge")
        # Validate the aggregate name eagerly so malformed queries fail at
        # construction rather than at estimation time.
        get_aggregate(self.aggregate)
        object.__setattr__(self, "edges", tuple(tuple(edge) for edge in self.edges))

    @classmethod
    def from_edges(cls, edges: Sequence[EdgeKey], aggregate: str = "sum") -> "SubgraphQuery":
        """Build a query from a sequence of ``(source, target)`` keys."""
        return cls(edges=tuple(edges), aggregate=aggregate)

    def edge_queries(self) -> Tuple[EdgeQuery, ...]:
        """Decompose into constituent edge queries (Section 5)."""
        return tuple(EdgeQuery.from_key(edge) for edge in self.edges)

    def vertices(self) -> Set[Hashable]:
        """The set of vertices touched by the subgraph."""
        result: Set[Hashable] = set()
        for source, target in self.edges:
            result.add(source)
            result.add(target)
        return result

    def combine(self, edge_estimates: Sequence[float]) -> float:
        """Apply Γ to the per-edge estimates."""
        if len(edge_estimates) != len(self.edges):
            raise ValueError(
                f"expected {len(self.edges)} edge estimates, got {len(edge_estimates)}"
            )
        return get_aggregate(self.aggregate)(edge_estimates)

    def __len__(self) -> int:
        return len(self.edges)

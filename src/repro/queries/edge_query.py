"""Edge queries.

An edge query asks for the total frequency of a single directed edge over the
lifetime of the stream (or a time window of interest): Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.graph.edge import EdgeKey


@dataclass(frozen=True)
class EdgeQuery:
    """A query for the aggregate frequency of the directed edge ``(source, target)``.

    Attributes:
        source: source vertex label.
        target: target vertex label.
        window: optional ``(start, end)`` time window of interest; ``None``
            means the lifetime of the stream.
    """

    source: Hashable
    target: Hashable
    window: Optional[Tuple[float, float]] = None

    @property
    def key(self) -> EdgeKey:
        """The ``(source, target)`` edge key this query targets."""
        return (self.source, self.target)

    @classmethod
    def from_key(cls, key: EdgeKey, window: Optional[Tuple[float, float]] = None) -> "EdgeQuery":
        """Build a query from an edge key."""
        source, target = key
        return cls(source=source, target=target, window=window)

"""Synthetic dataset generators standing in for the paper's data sets.

The paper evaluates on DBLP co-authorship streams, a proprietary corporate IP
attack stream and GTGraph R-MAT streams.  DBLP-at-2008 and the IP attack data
are not redistributable, and 10^9-edge R-MAT streams are out of scope for a
pure-Python session, so this package generates scaled synthetic equivalents
that preserve the properties the paper's experiments depend on: heavy-tailed
edge frequencies (global heterogeneity) and correlated per-vertex frequencies
(local similarity).  See DESIGN.md §3 for the substitution rationale.
"""

from repro.datasets.base import DatasetBundle, DatasetConfig
from repro.datasets.dblp import DBLPConfig, generate_dblp_stream
from repro.datasets.gtgraph import GTGraphConfig, generate_gtgraph_stream
from repro.datasets.ipattack import IPAttackConfig, generate_ip_attack_stream
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.rmat import RMATConfig, generate_rmat_edges

__all__ = [
    "DBLPConfig",
    "DatasetBundle",
    "DatasetConfig",
    "GTGraphConfig",
    "IPAttackConfig",
    "RMATConfig",
    "available_datasets",
    "generate_dblp_stream",
    "generate_gtgraph_stream",
    "generate_ip_attack_stream",
    "generate_rmat_edges",
    "load_dataset",
]

"""Common dataset containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.graph.stream import GraphStream


@dataclass(frozen=True)
class DatasetConfig:
    """Base configuration shared by all generators.

    Attributes:
        seed: RNG seed; generators are fully deterministic given a seed.
        name: dataset name used in reports.
    """

    seed: int = 7
    name: str = "dataset"


@dataclass
class DatasetBundle:
    """A generated dataset plus its provenance.

    Attributes:
        stream: the generated graph stream in arrival order.
        description: human-readable provenance (generator + parameters).
        parameters: the generator parameters, for experiment reports.
    """

    stream: GraphStream
    description: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.stream.name

    def summary(self) -> Dict[str, object]:
        """Quick census used by experiment reports."""
        return {
            "name": self.name,
            "elements": len(self.stream),
            "distinct_edges": len(self.stream.distinct_edges()),
            "vertices": len(self.stream.vertices()),
            "total_frequency": self.stream.total_frequency(),
        }

"""Named, scaled dataset configurations.

The benchmark harness refers to datasets by name so that every figure is
regenerated from the same scaled configurations.  Three size tiers exist:

* ``-tiny``  — seconds-scale, used by the test suite and quick smoke runs;
* ``-small`` — the default benchmark tier (tens of seconds end to end);
* ``-medium`` — closer to paper scale, for users willing to wait minutes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.base import DatasetBundle
from repro.datasets.dblp import DBLPConfig, generate_dblp_stream
from repro.datasets.gtgraph import GTGraphConfig, generate_gtgraph_stream
from repro.datasets.ipattack import IPAttackConfig, generate_ip_attack_stream

_REGISTRY: Dict[str, Callable[[int], DatasetBundle]] = {}


def _register(name: str, factory: Callable[[int], DatasetBundle]) -> None:
    _REGISTRY[name] = factory


_register(
    "dblp-tiny",
    lambda seed: generate_dblp_stream(
        DBLPConfig(seed=seed, name="dblp-tiny", num_authors=2_000, num_papers=4_000,
                   num_communities=40)
    ),
)
_register(
    "dblp-small",
    lambda seed: generate_dblp_stream(
        DBLPConfig(seed=seed, name="dblp-small", num_authors=8_000, num_papers=25_000,
                   num_communities=120)
    ),
)
_register(
    "dblp-medium",
    lambda seed: generate_dblp_stream(
        DBLPConfig(seed=seed, name="dblp-medium", num_authors=20_000, num_papers=80_000,
                   num_communities=250)
    ),
)
_register(
    "ipattack-tiny",
    lambda seed: generate_ip_attack_stream(
        IPAttackConfig(seed=seed, name="ipattack-tiny", num_attackers=60,
                       num_background_sources=3_000, num_targets=5_000,
                       num_events=20_000)
    ),
)
_register(
    "ipattack-small",
    lambda seed: generate_ip_attack_stream(
        IPAttackConfig(seed=seed, name="ipattack-small", num_attackers=250,
                       num_background_sources=15_000, num_targets=25_000,
                       num_events=120_000)
    ),
)
_register(
    "ipattack-medium",
    lambda seed: generate_ip_attack_stream(
        IPAttackConfig(seed=seed, name="ipattack-medium", num_attackers=500,
                       num_background_sources=40_000, num_targets=60_000,
                       num_events=400_000)
    ),
)
_register(
    "gtgraph-tiny",
    lambda seed: generate_gtgraph_stream(
        GTGraphConfig(seed=seed, name="gtgraph-tiny", scale=12, num_edges=30_000)
    ),
)
_register(
    "gtgraph-small",
    lambda seed: generate_gtgraph_stream(
        GTGraphConfig(seed=seed, name="gtgraph-small", scale=14, num_edges=150_000)
    ),
)
_register(
    "gtgraph-medium",
    lambda seed: generate_gtgraph_stream(
        GTGraphConfig(seed=seed, name="gtgraph-medium", scale=16, num_edges=600_000)
    ),
)


def available_datasets() -> List[str]:
    """Names of all registered dataset configurations."""
    return sorted(_REGISTRY)


def load_dataset(name: str, seed: int = 7) -> DatasetBundle:
    """Generate the named dataset with the given seed.

    Raises:
        KeyError: if ``name`` is not registered; the error message lists the
            available names.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return _REGISTRY[name](seed)

"""Bounded Zipf sampling helpers shared by the dataset generators."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_positive, require_positive_int


def bounded_zipf_probabilities(population: int, exponent: float) -> np.ndarray:
    """Probabilities ``p_i ∝ (i+1)^-exponent`` over ``population`` items."""
    require_positive_int(population, "population")
    require_positive(exponent, "exponent")
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def bounded_zipf_sample(
    population: int, size: int, exponent: float, seed: SeedLike = None
) -> np.ndarray:
    """Draw ``size`` item indices in ``[0, population)`` with Zipf-distributed ranks.

    Item 0 is the most popular.  Uses inverse-CDF sampling on the bounded
    Zipf distribution, which avoids the unbounded support of
    ``numpy.random.Generator.zipf``.
    """
    require_positive_int(size, "size")
    rng = resolve_rng(seed)
    probabilities = bounded_zipf_probabilities(population, exponent)
    cdf = np.cumsum(probabilities)
    cdf[-1] = 1.0
    uniforms = rng.random(size)
    return np.searchsorted(cdf, uniforms, side="left").astype(np.int64)

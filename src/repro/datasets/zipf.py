"""Bounded Zipf sampling helpers shared by the dataset generators."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import require_positive, require_positive_int


def bounded_zipf_probabilities(population: int, exponent: float) -> np.ndarray:
    """Probabilities ``p_i ∝ (i+1)^-exponent`` over ``population`` items."""
    require_positive_int(population, "population")
    require_positive(exponent, "exponent")
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def bounded_zipf_sample(
    population: int, size: int, exponent: float, seed: SeedLike = None
) -> np.ndarray:
    """Draw ``size`` item indices in ``[0, population)`` with Zipf-distributed ranks.

    Item 0 is the most popular.  Uses inverse-CDF sampling on the bounded
    Zipf distribution, which avoids the unbounded support of
    ``numpy.random.Generator.zipf``.
    """
    require_positive_int(size, "size")
    rng = resolve_rng(seed)
    probabilities = bounded_zipf_probabilities(population, exponent)
    cdf = np.cumsum(probabilities)
    cdf[-1] = 1.0
    uniforms = rng.random(size)
    return np.searchsorted(cdf, uniforms, side="left").astype(np.int64)


def zipf_stream(
    num_edges: int,
    population: int = 2_000,
    exponent: float = 1.2,
    seed: SeedLike = 7,
    name: str = "zipf",
) -> "GraphStream":
    """A Zipf-source arrival stream: rank-skewed sources, uniform targets.

    The canonical synthetic-stream assembly shared by the CLI and the
    throughput benchmark: timestamps are arrival indices and every element
    carries unit frequency.
    """
    from repro.graph.stream import GraphStream

    rng = resolve_rng(seed)
    sources = bounded_zipf_sample(population, num_edges, exponent, seed=rng)
    targets = rng.integers(0, population * 2, size=num_edges)
    return GraphStream.from_tuples(
        (
            (int(s), int(t), float(i), 1.0)
            for i, (s, t) in enumerate(zip(sources, targets))
        ),
        name=name,
    )

"""Synthetic DBLP-like co-authorship stream generator.

The paper extracts ordered author pairs from DBLP conference papers
(1956–2008): 595,406 authors, 602,684 papers, 1,954,776 ordered author pairs
input in chronological order (Section 6.1).  That snapshot is not bundled
here, so this generator produces a scaled synthetic co-authorship stream that
reproduces the structural properties the paper's experiments rely on:

* **Global heterogeneity** — a long tail of authors publishes once or twice,
  so the bulk of *distinct* author pairs have frequency 1–2, while a small
  set of prolific collaborations recurs dozens to hundreds of times.
* **Local similarity** — repeated collaborations are concentrated in stable
  "core teams" inside research communities: a prolific first author's pairs
  are mostly with the same few co-authors, so the edges emanating from such a
  vertex have similar (high) frequencies.  This is the property gSketch's
  vertex-based partitioning exploits (Section 3.3).
* **Chronological arrival** — each paper contributes its ordered author pairs
  at the paper's timestamp, exactly like the paper's stream construction.

The generator mixes two kinds of papers: *team papers*, written by a stable
core team of a community (these create the heavy, low-out-degree vertices),
and *ad-hoc papers*, written by Zipf-sampled community members (these create
the long tail of once-off pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.base import DatasetBundle, DatasetConfig
from repro.datasets.zipf import bounded_zipf_sample
from repro.graph.edge import StreamEdge
from repro.graph.stream import GraphStream
from repro.utils.rng import resolve_rng
from repro.utils.validation import require_in_range, require_positive, require_positive_int


@dataclass(frozen=True)
class DBLPConfig(DatasetConfig):
    """Parameters of the synthetic co-authorship generator.

    Attributes:
        num_authors: size of the author universe.
        num_papers: number of papers to generate (each contributes
            ``k * (k - 1) / 2`` ordered author pairs for ``k`` authors).
        num_communities: number of research communities authors are split into.
        teams_per_community: number of stable core teams per community.
        team_size: number of authors in a core team.
        team_paper_fraction: fraction of papers written by a core team
            (repeated collaborations; the heavy part of the stream).
        community_exponent: Zipf exponent of paper volume across communities.
        team_exponent: Zipf exponent of paper volume across a community's
            teams.
        productivity_exponent: Zipf exponent of ad-hoc author selection inside
            a community.
        cross_community_probability: probability that an ad-hoc co-author is
            drawn from outside the paper's home community.
        min_authors_per_paper: minimum number of authors on an ad-hoc paper.
        max_authors_per_paper: maximum number of authors on an ad-hoc paper.
    """

    name: str = "dblp-synthetic"
    num_authors: int = 20_000
    num_papers: int = 60_000
    num_communities: int = 200
    teams_per_community: int = 3
    team_size: int = 4
    team_paper_fraction: float = 0.5
    community_exponent: float = 1.2
    team_exponent: float = 1.3
    productivity_exponent: float = 1.2
    cross_community_probability: float = 0.05
    min_authors_per_paper: int = 2
    max_authors_per_paper: int = 5


def _validate(config: DBLPConfig) -> None:
    require_positive_int(config.num_authors, "num_authors")
    require_positive_int(config.num_papers, "num_papers")
    require_positive_int(config.num_communities, "num_communities")
    require_positive_int(config.teams_per_community, "teams_per_community")
    require_positive_int(config.team_size, "team_size")
    require_in_range(config.team_paper_fraction, "team_paper_fraction", 0.0, 1.0)
    require_positive(config.community_exponent, "community_exponent")
    require_positive(config.team_exponent, "team_exponent")
    require_positive(config.productivity_exponent, "productivity_exponent")
    require_in_range(config.cross_community_probability, "cross_community_probability", 0.0, 1.0)
    require_positive_int(config.min_authors_per_paper, "min_authors_per_paper")
    require_positive_int(config.max_authors_per_paper, "max_authors_per_paper")
    if config.min_authors_per_paper < 2:
        raise ValueError("papers need at least two authors to produce author pairs")
    if config.max_authors_per_paper < config.min_authors_per_paper:
        raise ValueError("max_authors_per_paper must be >= min_authors_per_paper")
    if config.num_communities > config.num_authors:
        raise ValueError("cannot have more communities than authors")
    if config.team_size < 2:
        raise ValueError("team_size must be at least 2")
    members_per_community = config.num_authors // config.num_communities
    if config.teams_per_community * config.team_size > max(2, members_per_community):
        raise ValueError(
            "teams_per_community * team_size exceeds the community size; "
            "use fewer/smaller teams or more authors"
        )


def generate_dblp_stream(config: DBLPConfig | None = None) -> DatasetBundle:
    """Generate a synthetic DBLP-like co-authorship graph stream.

    Returns:
        A :class:`~repro.datasets.base.DatasetBundle` whose stream contains
        one element per ordered author pair ``(a_i, a_j)`` with ``i < j`` in
        the paper's author list, time-stamped by paper index.
    """
    config = config or DBLPConfig()
    _validate(config)

    rng = resolve_rng(config.seed)
    num_communities = config.num_communities
    # Authors are assigned to communities round-robin so every community has
    # roughly num_authors / num_communities members.  The first
    # teams_per_community * team_size members of each community form its core
    # teams; they end up being the community's most prolific authors.
    community_members: List[np.ndarray] = [
        np.arange(c, config.num_authors, num_communities, dtype=np.int64)
        for c in range(num_communities)
    ]
    community_teams: List[List[np.ndarray]] = []
    community_adhoc_pool: List[np.ndarray] = []
    for members in community_members:
        teams = [
            members[t * config.team_size : (t + 1) * config.team_size]
            for t in range(config.teams_per_community)
        ]
        community_teams.append([team for team in teams if len(team) >= 2])
        # Ad-hoc papers draw from the non-core members so that core-team
        # authors keep homogeneous (high) edge frequencies: this is the
        # local-similarity property the partitioner relies on.
        reserved = config.teams_per_community * config.team_size
        pool = members[reserved:]
        community_adhoc_pool.append(pool if len(pool) >= 2 else members)

    paper_communities = bounded_zipf_sample(
        num_communities, config.num_papers, exponent=config.community_exponent, seed=rng
    )
    paper_is_team = rng.random(config.num_papers) < config.team_paper_fraction
    paper_team_ranks = bounded_zipf_sample(
        max(1, config.teams_per_community), config.num_papers,
        exponent=config.team_exponent, seed=rng,
    )
    paper_sizes = rng.integers(
        config.min_authors_per_paper,
        config.max_authors_per_paper + 1,
        size=config.num_papers,
    )

    edges: List[StreamEdge] = []
    for paper_index in range(config.num_papers):
        community = int(paper_communities[paper_index])
        members = community_adhoc_pool[community]
        teams = community_teams[community]
        if paper_is_team[paper_index] and teams:
            # A core-team paper: the same author group, in the same byline
            # order, publishes again and again -> heavy repeated pairs.
            team = teams[int(paper_team_ranks[paper_index]) % len(teams)]
            authors = [int(a) for a in team]
        else:
            # An ad-hoc paper: Zipf-sampled community members, occasionally a
            # cross-community guest -> the long tail of once-off pairs.
            size = int(paper_sizes[paper_index])
            authors = []
            ranks = bounded_zipf_sample(
                len(members), size * 3, exponent=config.productivity_exponent, seed=rng
            )
            for rank in ranks:
                if len(authors) >= size:
                    break
                if rng.random() < config.cross_community_probability:
                    candidate = int(rng.integers(0, config.num_authors))
                else:
                    candidate = int(members[int(rank) % len(members)])
                if candidate not in authors:
                    authors.append(candidate)
            while len(authors) < size:
                candidate = int(members[int(rng.integers(0, len(members)))])
                if candidate not in authors:
                    authors.append(candidate)

        timestamp = float(paper_index)
        for i in range(len(authors)):
            for j in range(i + 1, len(authors)):
                edges.append(StreamEdge(authors[i], authors[j], timestamp, 1.0))

    stream = GraphStream(edges, name=config.name)
    return DatasetBundle(
        stream=stream,
        description=(
            "Synthetic DBLP-like co-authorship stream: stable core teams create "
            "heavy repeated collaborations, ad-hoc Zipf-sampled papers create the "
            "long tail of once-off pairs; ordered author pairs arrive chronologically."
        ),
        parameters={
            "num_authors": config.num_authors,
            "num_papers": config.num_papers,
            "num_communities": config.num_communities,
            "teams_per_community": config.teams_per_community,
            "team_size": config.team_size,
            "team_paper_fraction": config.team_paper_fraction,
            "community_exponent": config.community_exponent,
            "team_exponent": config.team_exponent,
            "productivity_exponent": config.productivity_exponent,
            "cross_community_probability": config.cross_community_probability,
            "seed": config.seed,
        },
    )

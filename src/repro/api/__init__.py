"""repro.api — the unified estimator API.

This package is the canonical way to build, ingest into, query and persist
any estimator backend:

* :class:`~repro.api.protocol.Estimator` — the structural Protocol all four
  backends (:class:`~repro.core.gsketch.GSketch`,
  :class:`~repro.core.global_sketch.GlobalSketch`,
  :class:`~repro.distributed.coordinator.ShardedGSketch`,
  :class:`~repro.core.windowed.WindowedGSketch`) implement;
* typed queries (:class:`EdgeQuery`, :class:`SubgraphQuery`,
  :class:`WindowQuery`) and typed results (:class:`Estimate`,
  :class:`Provenance`, :class:`ConfidenceInterval`);
* :class:`~repro.api.engine.SketchEngine` — the facade owning the
  build → ingest → query → snapshot/restore lifecycle, with a fluent
  :meth:`~repro.api.engine.SketchEngine.builder`;
* the versioned snapshot format (:func:`save_snapshot`,
  :func:`load_snapshot`) that round-trips every backend;
* the ``python -m repro`` CLI (:mod:`repro.api.cli`).

Quickstart::

    from repro.api import EdgeQuery, SketchEngine

    engine = (SketchEngine.builder()
              .config(total_cells=60_000, depth=4, seed=7)
              .dataset(stream)            # or .sample(...) / .workload(...)
              .build())                   # .sharded(4) / .windowed(86400.0)
    engine.ingest(stream)
    estimate = engine.query(EdgeQuery("alice", "bob"))
    engine.save("sketch.snap")
    restored = SketchEngine.load("sketch.snap")
"""

from repro.api.engine import DEFAULT_SAMPLE_SIZE, EngineBuilder, EngineError, SketchEngine
from repro.api.protocol import (
    BACKEND_GLOBAL,
    BACKEND_GSKETCH,
    BACKEND_SHARDED,
    BACKEND_WINDOWED,
    Estimator,
)
from repro.api.queries import EdgeQuery, Query, SubgraphQuery, WindowQuery
from repro.api.results import Estimate, Provenance
from repro.api.snapshot import (
    BACKEND_CLASSES,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    backend_name,
    load_snapshot,
    save_snapshot,
)
from repro.core.estimator import ConfidenceInterval

__all__ = [
    "BACKEND_CLASSES",
    "BACKEND_GLOBAL",
    "BACKEND_GSKETCH",
    "BACKEND_SHARDED",
    "BACKEND_WINDOWED",
    "ConfidenceInterval",
    "DEFAULT_SAMPLE_SIZE",
    "EdgeQuery",
    "EngineBuilder",
    "EngineError",
    "Estimate",
    "Estimator",
    "Provenance",
    "Query",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SketchEngine",
    "SnapshotError",
    "SubgraphQuery",
    "WindowQuery",
    "backend_name",
    "load_snapshot",
    "save_snapshot",
]

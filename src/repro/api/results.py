"""Typed query results.

The raw backend methods return bare floats; the public facade surface wraps
them in :class:`Estimate` objects that carry the point value, the
per-partition Equation-1 :class:`~repro.core.estimator.ConfidenceInterval`
(when the query shape admits one), and a :class:`Provenance` record saying
*which physical structure answered* — the backend, the partition, the shard
and whether the outlier sketch served the query.  Different partitions give
different error guarantees (Section 5), so provenance is part of the answer,
not debug metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.estimator import ConfidenceInterval


@dataclass(frozen=True)
class Provenance:
    """Where an estimate came from.

    Attributes:
        backend: canonical backend name (``"gsketch"``, ``"global"``,
            ``"sharded"``, ``"windowed"``).
        partition: index of the localized partition that answered, when the
            backend routes queries through a partitioning
            (:data:`~repro.core.router.OUTLIER_PARTITION` marks the outlier
            sketch); ``None`` when the notion does not apply.
        shard: index of the shard owning that partition (sharded backend
            only).
        outlier: whether the outlier sketch served the query; ``None`` when
            the backend has no outlier reservation.
        degraded: ``True`` when the shard that owned this query's counters
            was abandoned after recovery exhaustion and the answer comes
            from degraded serving — the interval's upper end is widened by
            the lost frequency mass (see
            :class:`~repro.distributed.recovery.RecoveryPolicy`).
        generation: the engine's ingest generation at answer time (``None``
            when the backend keeps no generation clock).  The serving tier
            returns it on every response so sessions can assert monotonic
            reads across live ingest.
    """

    backend: str
    partition: Optional[int] = None
    shard: Optional[int] = None
    outlier: Optional[bool] = None
    degraded: bool = False
    generation: Optional[int] = None


@dataclass(frozen=True)
class Estimate:
    """A typed point estimate.

    Attributes:
        value: the estimated aggregate frequency.
        interval: the Equation-1 confidence interval, when the query shape
            admits one (single-edge lifetime queries); ``None`` otherwise.
        provenance: which physical structure answered.
    """

    value: float
    interval: Optional[ConfidenceInterval]
    provenance: Provenance

    def __float__(self) -> float:
        return self.value

    def to_dict(self) -> dict:
        """Plain-JSON form (used by the CLI)."""
        result: dict = {
            "value": self.value,
            "backend": self.provenance.backend,
        }
        if self.provenance.partition is not None:
            result["partition"] = self.provenance.partition
        if self.provenance.shard is not None:
            result["shard"] = self.provenance.shard
        if self.provenance.outlier is not None:
            result["outlier"] = self.provenance.outlier
        if self.provenance.degraded:
            result["degraded"] = True
        if self.provenance.generation is not None:
            result["generation"] = self.provenance.generation
        if self.interval is not None:
            result["interval"] = {
                "lower": self.interval.lower,
                "upper": self.interval.upper,
                "additive_bound": self.interval.additive_bound,
                "failure_probability": self.interval.failure_probability,
            }
            if self.interval.upper_slack:
                result["interval"]["upper_slack"] = self.interval.upper_slack
        return result

"""The :class:`Estimator` Protocol: the logical query interface every backend
implements.

Production query engines separate the *logical* query surface callers program
against from the *physical* execution strategy behind it.  This module pins
down that logical surface for the four estimator backends —
:class:`~repro.core.gsketch.GSketch`,
:class:`~repro.core.global_sketch.GlobalSketch`,
:class:`~repro.distributed.coordinator.ShardedGSketch` and
:class:`~repro.core.windowed.WindowedGSketch` — so that experiments, the
:class:`~repro.api.engine.SketchEngine` facade and the ``python -m repro`` CLI
can treat any of them interchangeably.

The protocol is *structural* (:func:`typing.runtime_checkable`): backends are
not required to inherit from anything, only to expose the methods below with
compatible semantics.  For :class:`WindowedGSketch` the edge-block queries are
**lifetime** queries (summed over all opened windows); its interval-restricted
``query_edge(edge, start, end)`` surface is windowed-specific and reached
through :class:`~repro.api.queries.WindowQuery`.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, runtime_checkable

from repro.core.estimator import ConfidenceInterval
from repro.graph.edge import EdgeKey
from repro.queries.subgraph_query import SubgraphQuery

#: Canonical backend names, used by snapshots and provenance records.
BACKEND_GSKETCH = "gsketch"
BACKEND_GLOBAL = "global"
BACKEND_SHARDED = "sharded"
BACKEND_WINDOWED = "windowed"


@runtime_checkable
class Estimator(Protocol):
    """Structural interface shared by all estimator backends.

    Semantics contract (beyond the method shapes):

    * :meth:`ingest_batch` accepts an :class:`~repro.graph.batch.EdgeBatch`
      or a sequence of :class:`~repro.graph.edge.StreamEdge` and returns the
      number of elements absorbed; repeated calls are equivalent to one pass
      over the concatenated stream.
    * :meth:`query_edges` / :meth:`confidence_batch` are element-wise
      positionally aligned with their input and agree with the scalar
      single-edge paths bit for bit.
    * :meth:`state_dict` captures the *complete* estimator state;
      ``type(est).from_state(est.state_dict())`` must answer every query
      identically to the original.
    """

    def ingest_batch(self, batch) -> int:
        """Absorb one block of stream elements; returns elements ingested."""
        ...

    def query_edges(self, edges: Sequence[EdgeKey]) -> List[float]:
        """Point estimates for a block of edge keys, positionally aligned."""
        ...

    def confidence_batch(self, edges: Sequence[EdgeKey]) -> List[ConfidenceInterval]:
        """Equation-1 confidence intervals for a block of edge keys."""
        ...

    def query_subgraph(self, query: SubgraphQuery) -> float:
        """Aggregate subgraph estimate by per-edge decomposition."""
        ...

    def state_dict(self) -> dict:
        """Complete, self-contained snapshot of the estimator state."""
        ...

    @property
    def elements_processed(self) -> int:
        """Number of stream elements ingested so far."""
        ...

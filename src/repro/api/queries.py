"""Typed query objects of the public API.

:class:`~repro.queries.edge_query.EdgeQuery` and
:class:`~repro.queries.subgraph_query.SubgraphQuery` are re-exported from
:mod:`repro.queries` (the facade absorbs them rather than duplicating them);
:class:`WindowQuery` is new here — the typed form of the windowed backend's
interval-restricted edge query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union

from repro.graph.edge import EdgeKey
from repro.queries.edge_query import EdgeQuery
from repro.queries.subgraph_query import SubgraphQuery

__all__ = ["EdgeQuery", "Query", "SubgraphQuery", "WindowQuery"]


@dataclass(frozen=True)
class WindowQuery:
    """A query for an edge's aggregate frequency over ``[start, end)``.

    Only the windowed backend can answer these; other backends raise
    :class:`~repro.api.engine.EngineError` when handed one.

    Attributes:
        source: source vertex label.
        target: target vertex label.
        start: window start (inclusive), in stream timestamp units.
        end: window end (exclusive).
    """

    source: Hashable
    target: Hashable
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError(
                f"query window must have positive length, got [{self.start}, {self.end})"
            )

    @property
    def key(self) -> EdgeKey:
        """The ``(source, target)`` edge key this query targets."""
        return (self.source, self.target)

    @classmethod
    def from_edge_query(cls, query: EdgeQuery) -> "WindowQuery":
        """Lift an :class:`EdgeQuery` carrying a ``window`` into a ``WindowQuery``."""
        if query.window is None:
            raise ValueError("EdgeQuery has no window attached")
        start, end = query.window
        return cls(source=query.source, target=query.target, start=start, end=end)


#: Anything the facade's ``query`` entry point accepts.
Query = Union[EdgeQuery, SubgraphQuery, WindowQuery]

"""``python -m repro`` — build, ingest, query and bench through the facade.

Every command drives the same :class:`~repro.api.engine.SketchEngine` API the
library exposes, so the CLI doubles as a smoke test of the public surface::

    python -m repro build  --dataset rmat --edges 20000 --cells 60000 --out sketch.snap
    python -m repro ingest --snapshot sketch.snap --dataset rmat --edges 20000
    python -m repro query  --snapshot sketch.snap --sample 5 --dataset rmat --edges 20000
    python -m repro query  --snapshot sketch.snap --edge 3 17
    python -m repro bench  --dataset rmat --edges 20000 --cells 60000
    python -m repro query-bench --dataset rmat --edges 20000 --batch-sizes 1 8 64
    python -m repro serve  --snapshot sketch.snap --port 8765
    python -m repro query  --connect 127.0.0.1:8765 --edge 3 17

Datasets are either registry names (``dblp-tiny``, ``gtgraph-small``, ... —
see :func:`repro.datasets.registry.available_datasets`) or the synthetic
``rmat`` / ``zipf`` generators parameterized by ``--edges`` / ``--scale``.
All commands print a single JSON document to stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict
from typing import Hashable, List, Optional, Sequence

from repro.api.engine import DEFAULT_SAMPLE_SIZE, EngineError, SketchEngine
from repro.api.queries import EdgeQuery, WindowQuery
from repro.core.config import GSketchConfig
from repro.datasets.registry import available_datasets, load_dataset
from repro.graph.sampling import zipf_workload_stream
from repro.graph.stream import GraphStream
from repro.queries.workload import uniform_edge_queries

DEFAULT_CELLS = 60_000
DEFAULT_DEPTH = 5
DEFAULT_SEED = 7


def _coerce_label(label: str) -> Hashable:
    """CLI edge labels: integers when they parse, strings otherwise."""
    try:
        return int(label)
    except ValueError:
        return label


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="rmat",
        help=(
            "registry dataset name, or synthetic 'rmat' / 'zipf' "
            f"(registry: {', '.join(available_datasets())})"
        ),
    )
    parser.add_argument(
        "--edges", type=int, default=20_000, help="stream length for synthetic datasets"
    )
    parser.add_argument(
        "--scale", type=int, default=12, help="R-MAT vertex scale (2^scale vertices)"
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)


def resolve_stream(args: argparse.Namespace) -> GraphStream:
    """The dataset stream named by the common CLI arguments."""
    name = args.dataset
    if name == "rmat":
        from repro.datasets.rmat import rmat_stream

        return rmat_stream(
            args.edges, scale=args.scale, seed=args.seed, name=f"rmat-{args.edges}"
        )
    if name == "zipf":
        from repro.datasets.zipf import zipf_stream

        population = max(2, 2 ** max(1, args.scale - 3))
        return zipf_stream(
            args.edges, population=population, seed=args.seed, name=f"zipf-{args.edges}"
        )
    return load_dataset(name, seed=args.seed).stream


def _emit(document: dict) -> None:
    json.dump(document, sys.stdout, indent=2)
    sys.stdout.write("\n")


def _open_engine(path: str) -> SketchEngine:
    """Load an engine from a snapshot file or a checkpoint directory."""
    if os.path.isdir(path):
        return SketchEngine.restore(path)
    return SketchEngine.load(path)


# ---------------------------------------------------------------------- #
# Commands
# ---------------------------------------------------------------------- #
def cmd_build(args: argparse.Namespace) -> int:
    if args.baseline and (args.sharded is not None or args.windowed is not None):
        raise EngineError(
            "--baseline builds the unpartitioned Global Sketch and cannot be "
            "combined with --sharded or --windowed"
        )
    stream = resolve_stream(args)
    config = GSketchConfig(total_cells=args.cells, depth=args.depth, seed=args.seed)
    builder = SketchEngine.builder().config(config)
    if not args.baseline:
        builder = builder.dataset(stream).sample_size(args.sample_size)
    if args.workload_alpha is not None:
        workload = zipf_workload_stream(
            stream, args.sample_size, args.workload_alpha, seed=args.seed + 1
        )
        builder = builder.workload(workload)
    if args.sharded is not None:
        builder = builder.sharded(args.sharded)
    if args.windowed is not None:
        builder = builder.windowed(args.windowed, sample_size=args.sample_size)

    engine = builder.build()
    ingested = engine.ingest(stream, batch_size=args.batch_size) if args.ingest else 0
    engine.save(args.out)
    summary = engine.describe()
    if args.checkpoint_dir is not None:
        engine.checkpoint(args.checkpoint_dir)
        summary["checkpoint"] = args.checkpoint_dir
    engine.close()
    summary.update({"snapshot": args.out, "dataset": stream.name, "ingested": ingested})
    _emit(summary)
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    engine = _open_engine(args.snapshot)
    stream = resolve_stream(args)
    ingested = engine.ingest(stream, batch_size=args.batch_size)
    summary = engine.describe()
    if args.checkpoint_dir is not None:
        engine.checkpoint(args.checkpoint_dir)
        summary["checkpoint"] = args.checkpoint_dir
    out = args.out or args.snapshot
    if os.path.isdir(out):
        # The input was a checkpoint directory: update it incrementally.
        engine.checkpoint(out)
        summary["checkpoint"] = out
    else:
        engine.save(out)
        summary["snapshot"] = out
    engine.close()
    summary.update({"dataset": stream.name, "ingested": ingested})
    _emit(summary)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    if (args.snapshot is None) == (args.connect is None):
        raise EngineError(
            "pass exactly one of --snapshot PATH (local) or --connect HOST:PORT (wire)"
        )
    keys: List[tuple] = [
        (_coerce_label(source), _coerce_label(target)) for source, target in args.edge or []
    ]
    if args.sample:
        stream = resolve_stream(args)
        keys.extend(
            q.key for q in uniform_edge_queries(stream, args.sample, seed=args.seed + 2)
        )
    if not keys:
        raise EngineError("nothing to query: pass --edge S T (repeatable) and/or --sample K")

    if args.connect is not None:
        return _query_over_wire(args, keys)

    engine = _open_engine(args.snapshot)
    if args.window is not None:
        start, end = args.window
        estimates = [
            engine.query(WindowQuery(source, target, start, end)) for source, target in keys
        ]
    else:
        estimates = engine.query([EdgeQuery(source, target) for source, target in keys])
    engine.close()
    _emit(
        {
            "backend": engine.backend,
            "snapshot": args.snapshot,
            "estimates": [
                {"source": str(key[0]), "target": str(key[1]), **estimate.to_dict()}
                for key, estimate in zip(keys, estimates)
            ],
        }
    )
    return 0


def _query_over_wire(args: argparse.Namespace, keys: List[tuple]) -> int:
    """``query --connect``: answer the edges through a running ``serve``."""
    from repro.serving import ServingError, SyncServingClient
    from repro.serving.wire import parse_address

    if args.window is not None:
        raise EngineError("--window queries are not served over the wire")
    host, port = parse_address(args.connect)
    try:
        with SyncServingClient(host, port) as client:
            if args.confidence:
                estimates = client.query_edges_confidence(keys)
                generation = estimates[0].get("generation") if estimates else None
                rows = [
                    {"source": str(key[0]), "target": str(key[1]), **estimate}
                    for key, estimate in zip(keys, estimates)
                ]
            else:
                result = client.query_edges(keys)
                generation = result.generation
                rows = [
                    {"source": str(key[0]), "target": str(key[1]), "value": value}
                    for key, value in zip(keys, result.values)
                ]
            document = {
                "backend": client.hello.get("backend"),
                "connect": f"{host}:{port}",
                "generation": generation,
                "estimates": rows,
            }
    except (ServingError, ConnectionError) as error:
        raise EngineError(f"serving request failed: {error}") from error
    _emit(document)
    return 0


def _probe_health(address: str) -> int:
    """``serve --health``: readiness probe against a running server.

    Prints the server's health document and exits 0 only when the state is
    ``serving`` — ``starting``, ``draining``, and unreachable all probe
    unhealthy, so the exit code slots straight into init-system and CI
    readiness checks.  A degraded-but-serving server probes healthy (it
    still answers); ``degraded`` in the document is the operator signal.
    """
    from repro.serving import ServingError, SyncServingClient
    from repro.serving.wire import STATE_SERVING, parse_address

    host, port = parse_address(address)
    try:
        with SyncServingClient(host, port, timeout=5.0) as client:
            document = client.health()
    except (ServingError, ConnectionError, OSError) as error:
        _emit({"healthy": False, "probe": address, "error": str(error)})
        return 1
    document.pop("id", None)
    document.pop("status", None)
    healthy = document.get("state") == STATE_SERVING
    _emit({"healthy": healthy, "probe": address, **document})
    return 0 if healthy else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a snapshot over TCP until interrupted (SIGINT drains gracefully).

    Prints one JSON ready-line (with the bound port — useful with
    ``--port 0``) as soon as the socket is listening, then a final JSON
    stats document after the drain.  With ``--health HOST:PORT`` it instead
    probes a running server's readiness and exits.
    """
    from repro.queries.parallel import PlanConfig
    from repro.serving import ServingConfig
    from repro.serving.server import run_server

    if args.health is not None:
        return _probe_health(args.health)
    if args.snapshot is None:
        raise EngineError("serve requires --snapshot (or --health to probe)")
    engine = _open_engine(args.snapshot)
    if args.readers or args.kernel != "numpy":
        engine.set_plan_config(PlanConfig(kernel=args.kernel, readers=args.readers))
    config = ServingConfig(
        max_batch=args.max_batch,
        max_delay_us=args.max_delay_us,
        max_pending=args.max_pending,
        allow_ingest=args.allow_ingest,
    )
    final_stats: dict = {}

    def on_started(server) -> None:
        host, port = server.address
        json.dump(
            {
                "serving": True,
                "host": host,
                "port": port,
                "backend": engine.backend,
                "snapshot": args.snapshot,
                "max_batch": config.max_batch,
                "allow_ingest": config.allow_ingest,
            },
            sys.stdout,
        )
        sys.stdout.write("\n")
        sys.stdout.flush()
        final_stats["server"] = server

    try:
        run_server(engine, args.host, args.port, config, on_started)
    finally:
        engine.close()
    server = final_stats.get("server")
    if server is not None:
        _emit({"serving": False, **server.stats()})
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    stream = resolve_stream(args)
    config = GSketchConfig(total_cells=args.cells, depth=args.depth, seed=args.seed)
    builder = SketchEngine.builder().config(config).dataset(stream)
    if args.sharded is not None:
        builder = builder.sharded(args.sharded)
    engine = builder.build()

    start = time.perf_counter()
    ingested = engine.ingest(stream, batch_size=args.batch_size)
    ingest_seconds = time.perf_counter() - start

    queries = [q.key for q in uniform_edge_queries(stream, args.queries, seed=args.seed + 2)]
    start = time.perf_counter()
    engine.query([EdgeQuery(source, target) for source, target in queries])
    query_seconds = time.perf_counter() - start
    engine.close()

    _emit(
        {
            "benchmark": "facade",
            "backend": engine.backend,
            "dataset": stream.name,
            "edges": ingested,
            "ingest_seconds": round(ingest_seconds, 6),
            "edges_per_second": round(ingested / ingest_seconds, 1),
            "queries": len(queries),
            "query_seconds": round(query_seconds, 6),
            "queries_per_second": round(len(queries) / max(query_seconds, 1e-12), 1),
        }
    )
    return 0


def cmd_query_bench(args: argparse.Namespace) -> int:
    """Query-throughput mode: pre-plan routed path vs the compiled plan.

    Builds one backend through the facade, ingests the dataset, freezes the
    read plan (:meth:`~repro.api.engine.SketchEngine.frozen`) and reports
    queries/second for both serving paths at each requested batch size —
    the CLI twin of ``experiments/query_bench.py``.
    """
    from repro.experiments.query_bench import (
        build_query_workload,
        measure_query_paths,
        measure_reader_pool,
    )

    if args.baseline and (args.sharded is not None or args.windowed is not None):
        raise EngineError(
            "--baseline benches the unpartitioned Global Sketch and cannot be "
            "combined with --sharded or --windowed"
        )
    stream = resolve_stream(args)
    config = GSketchConfig(total_cells=args.cells, depth=args.depth, seed=args.seed)
    builder = SketchEngine.builder().config(config)
    if not args.baseline:
        builder = builder.dataset(stream)
    if args.sharded is not None:
        builder = builder.sharded(args.sharded)
    if args.windowed is not None:
        builder = builder.windowed(args.windowed)
    engine = builder.build()
    try:
        engine.ingest(stream, batch_size=args.batch_size)
        engine.frozen()
        keys = build_query_workload(stream, args.queries, seed=args.seed + 2)
        rows = measure_query_paths(
            engine.estimator,
            engine.backend,
            keys,
            args.batch_sizes,
            rounds=args.rounds,
            repeats=args.repeats,
        )
        reader_rows = []
        if args.readers:
            reader_rows = measure_reader_pool(
                engine.estimator,
                engine.backend,
                keys,
                args.readers,
                rounds=args.rounds,
                repeats=args.repeats,
            )
    finally:
        engine.close()
    parity = all(row.parity_ok for row in rows) and all(
        row.parity_ok for row in reader_rows
    )
    _emit(
        {
            "benchmark": "query-throughput",
            "backend": engine.backend,
            "dataset": stream.name,
            "queries": len(keys),
            "parity_ok": parity,
            "results": [asdict(row) for row in rows],
            "readers": [asdict(row) for row in reader_rows],
        }
    )
    return 0 if parity else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Telemetry surface: build, ingest and query in-process, then report.

    Enables :mod:`repro.observability`, runs a full ingest plus a query
    workload shaped to light up every plane (one large compiled-plan batch,
    repeated singleton lookups for the hot-edge cache), and prints either
    the JSON document from :meth:`SketchEngine.metrics` or the Prometheus
    text exposition of the registry.
    """
    from repro.observability import (
        configure_tracing,
        get_registry,
        render_prometheus,
        set_enabled,
    )

    if args.baseline and (args.sharded is not None or args.windowed is not None):
        raise EngineError(
            "--baseline profiles the unpartitioned Global Sketch and cannot be "
            "combined with --sharded or --windowed"
        )
    set_enabled(True)
    get_registry().reset()
    if args.trace_file:
        configure_tracing(args.trace_file)
    stream = resolve_stream(args)
    config = GSketchConfig(total_cells=args.cells, depth=args.depth, seed=args.seed)
    builder = SketchEngine.builder().config(config)
    if not args.baseline:
        builder = builder.dataset(stream)
    if args.sharded is not None:
        builder = builder.sharded(args.sharded)
    if args.windowed is not None:
        builder = builder.windowed(args.windowed)
    engine = builder.build()
    try:
        engine.ingest(stream, batch_size=args.batch_size)
        engine.frozen()
        keys = [
            q.key for q in uniform_edge_queries(stream, args.queries, seed=args.seed + 2)
        ]
        estimator = engine.estimator
        estimator.query_edges(keys)
        # Repeated singleton lookups: the first pass misses and populates the
        # hot-edge cache, the second hits it.
        for _ in range(2):
            for key in keys[: min(16, len(keys))]:
                estimator.query_edges([key])
        document = engine.metrics()
    finally:
        engine.close()
    if args.format == "prometheus":
        sys.stdout.write(render_prometheus())
    else:
        document["dataset"] = stream.name
        _emit(document)
    return 0


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Build, ingest into, query and bench gSketch estimators.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="partition an estimator and snapshot it")
    _add_dataset_arguments(build)
    build.add_argument("--cells", type=int, default=DEFAULT_CELLS)
    build.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    build.add_argument("--sample-size", type=int, default=DEFAULT_SAMPLE_SIZE)
    build.add_argument(
        "--workload-alpha",
        type=float,
        default=None,
        help="partition with a Zipf workload sample of this skewness",
    )
    build.add_argument("--sharded", type=int, default=None, metavar="N")
    build.add_argument("--windowed", type=float, default=None, metavar="LENGTH")
    build.add_argument(
        "--baseline", action="store_true", help="Global Sketch baseline (no partitioning)"
    )
    build.add_argument(
        "--ingest", action="store_true", help="also ingest the full dataset before saving"
    )
    build.add_argument("--batch-size", type=int, default=8192)
    build.add_argument("--out", required=True, help="snapshot path to write")
    build.add_argument(
        "--checkpoint-dir",
        default=None,
        help="also write a crash-consistent checkpoint directory",
    )
    build.set_defaults(func=cmd_build)

    ingest = commands.add_parser("ingest", help="ingest a dataset into a snapshot")
    _add_dataset_arguments(ingest)
    ingest.add_argument(
        "--snapshot", required=True, help="snapshot file or checkpoint directory"
    )
    ingest.add_argument("--out", default=None, help="output path (default: overwrite)")
    ingest.add_argument("--batch-size", type=int, default=8192)
    ingest.add_argument(
        "--checkpoint-dir",
        default=None,
        help="also write (or incrementally update) a checkpoint directory",
    )
    ingest.set_defaults(func=cmd_ingest)

    query = commands.add_parser("query", help="answer edge queries from a snapshot")
    _add_dataset_arguments(query)
    query.add_argument(
        "--edge",
        nargs=2,
        action="append",
        metavar=("SOURCE", "TARGET"),
        help="edge to estimate (repeatable)",
    )
    query.add_argument(
        "--sample",
        type=int,
        default=0,
        help="additionally sample this many query edges from the dataset",
    )
    query.add_argument(
        "--window",
        nargs=2,
        type=float,
        default=None,
        metavar=("START", "END"),
        help="restrict to a time window (windowed backend only)",
    )
    query.add_argument(
        "--snapshot", default=None, help="snapshot file or checkpoint directory"
    )
    query.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="query a running `serve` over the wire instead of a snapshot",
    )
    query.add_argument(
        "--confidence",
        action="store_true",
        help="with --connect: typed estimates with intervals and provenance",
    )
    query.set_defaults(func=cmd_query)

    serve = commands.add_parser(
        "serve", help="serve a snapshot over TCP with cross-client query coalescing"
    )
    serve.add_argument(
        "--snapshot", default=None, help="snapshot file or checkpoint directory"
    )
    serve.add_argument(
        "--health",
        default=None,
        metavar="HOST:PORT",
        help="probe a running server's readiness instead of serving "
        "(exit 0 only when its state is 'serving')",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    serve.add_argument("--max-batch", type=int, default=512)
    serve.add_argument(
        "--max-delay-us", type=int, default=200, help="micro-batching dally"
    )
    serve.add_argument(
        "--max-pending", type=int, default=4096, help="admission bound (waiting keys)"
    )
    serve.add_argument(
        "--allow-ingest",
        action="store_true",
        help="accept live ingest frames while serving",
    )
    serve.add_argument(
        "--readers",
        type=int,
        default=0,
        metavar="N",
        help="spawn N reader-pool worker processes mapping the plan arena "
        "from shared memory (0 answers on the event loop)",
    )
    serve.add_argument(
        "--kernel",
        choices=("numpy", "numba"),
        default="numpy",
        help="compiled kernel tier for plan gathers (numba requires numba)",
    )
    serve.set_defaults(func=cmd_serve)

    bench = commands.add_parser("bench", help="facade ingest/query throughput")
    _add_dataset_arguments(bench)
    bench.add_argument("--cells", type=int, default=DEFAULT_CELLS)
    bench.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    bench.add_argument("--sharded", type=int, default=None, metavar="N")
    bench.add_argument("--batch-size", type=int, default=8192)
    bench.add_argument("--queries", type=int, default=500)
    bench.set_defaults(func=cmd_bench)

    query_bench = commands.add_parser(
        "query-bench",
        help="query throughput: pre-plan routed path vs the compiled plan",
    )
    _add_dataset_arguments(query_bench)
    query_bench.add_argument("--cells", type=int, default=DEFAULT_CELLS)
    query_bench.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    query_bench.add_argument("--sharded", type=int, default=None, metavar="N")
    query_bench.add_argument(
        "--windowed", type=float, default=None, metavar="LENGTH"
    )
    query_bench.add_argument(
        "--baseline",
        action="store_true",
        help="Global Sketch baseline (no partitioning)",
    )
    query_bench.add_argument("--batch-size", type=int, default=8192)
    query_bench.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=[1, 8, 64],
        metavar="M",
        help="query batch sizes to measure (default: 1 8 64)",
    )
    query_bench.add_argument(
        "--queries", type=int, default=512, help="workload size per timed pass"
    )
    query_bench.add_argument("--rounds", type=int, default=2)
    query_bench.add_argument("--repeats", type=int, default=2)
    query_bench.add_argument(
        "--readers",
        type=int,
        nargs="*",
        default=[],
        metavar="N",
        help="also measure reader-pool sizes N... against the single-process "
        "coalesced baseline (plan-serving backends with integer labels)",
    )
    query_bench.set_defaults(func=cmd_query_bench)

    stats = commands.add_parser(
        "stats",
        help="telemetry snapshot: ingest + query with observability enabled",
    )
    _add_dataset_arguments(stats)
    stats.add_argument("--cells", type=int, default=DEFAULT_CELLS)
    stats.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    stats.add_argument("--sharded", type=int, default=None, metavar="N")
    stats.add_argument("--windowed", type=float, default=None, metavar="LENGTH")
    stats.add_argument(
        "--baseline",
        action="store_true",
        help="Global Sketch baseline (no partitioning)",
    )
    stats.add_argument("--batch-size", type=int, default=8192)
    stats.add_argument(
        "--queries", type=int, default=256, help="query workload size to replay"
    )
    stats.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="output format (default: json)",
    )
    stats.add_argument(
        "--trace-file",
        default=None,
        help="also append JSON-lines phase trace events to this path",
    )
    stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    # EngineError and SnapshotError are ValueErrors; plain ValueError also
    # covers backend input validation (bad configs, out-of-order elements).
    # OSError covers unreadable/unwritable snapshot paths (missing file,
    # directory, permission) so every user error exits 2 with JSON.
    except (ValueError, KeyError, OSError) as error:
        json.dump({"error": str(error)}, sys.stderr)
        sys.stderr.write("\n")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())

"""Versioned estimator snapshots.

Every backend implements the ``state_dict()`` / ``from_state()`` half of the
:class:`~repro.api.protocol.Estimator` contract; this module wraps those
states in a self-describing envelope so a snapshot file can be handed to
``load_snapshot`` without knowing which backend produced it:

``{"format": "repro.sketch-snapshot", "version": 1, "backend": <name>,
"state": <backend state_dict>}``

The payload is pickled (counter tables are numpy arrays and the partitioning
tree/router carry arbitrary hashable vertex labels), so snapshots are a
trusted-input format — the same trust model as
:meth:`~repro.distributed.shard.SketchShard.serialize`.  The envelope is
versioned so a future layout change can keep loading old files.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Dict, Type, Union

from repro.api.protocol import (
    BACKEND_GLOBAL,
    BACKEND_GSKETCH,
    BACKEND_SHARDED,
    BACKEND_WINDOWED,
    Estimator,
)
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.core.windowed import WindowedGSketch
from repro.distributed.coordinator import ShardedGSketch

SNAPSHOT_FORMAT = "repro.sketch-snapshot"
SNAPSHOT_VERSION = 1

#: backend name → estimator class, the single source of truth for dispatch.
BACKEND_CLASSES: Dict[str, type] = {
    BACKEND_GSKETCH: GSketch,
    BACKEND_GLOBAL: GlobalSketch,
    BACKEND_SHARDED: ShardedGSketch,
    BACKEND_WINDOWED: WindowedGSketch,
}

_CLASS_BACKENDS: Dict[type, str] = {cls: name for name, cls in BACKEND_CLASSES.items()}


class SnapshotError(ValueError):
    """A snapshot file is malformed, unversioned or from an unknown backend."""


def backend_name(estimator: Estimator) -> str:
    """Canonical backend name of an estimator instance.

    Resolves subclasses structurally (``isinstance``) after the exact-type
    fast path, so a specialized ``GSketch`` subclass still snapshots as the
    ``gsketch`` backend.
    """
    name = _CLASS_BACKENDS.get(type(estimator))
    if name is not None:
        return name
    for backend, cls in BACKEND_CLASSES.items():
        if isinstance(estimator, cls):
            return backend
    raise SnapshotError(
        f"unknown estimator type {type(estimator).__name__}; snapshot backends: "
        f"{sorted(BACKEND_CLASSES)}"
    )


def save_snapshot(estimator: Estimator, path: Union[str, Path]) -> Path:
    """Write a versioned snapshot of ``estimator`` to ``path``.

    Returns the path written.  The snapshot round-trips through
    :func:`load_snapshot` into an estimator answering every query
    bit-identically.
    """
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "backend": backend_name(estimator),
        "state": estimator.state_dict(),
    }
    path = Path(path)
    # Write-then-rename so an interrupted save never truncates an existing
    # snapshot (the CLI's ``ingest`` overwrites its input file by default).
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def load_snapshot(path: Union[str, Path]) -> Estimator:
    """Revive the estimator stored at ``path``.

    Raises:
        SnapshotError: if the file is not a repro snapshot, has an
            unsupported version, or names an unknown backend.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError, IndexError) as error:
        raise SnapshotError(f"{path} is not a readable {SNAPSHOT_FORMAT} file: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} has snapshot version {version!r}; this build reads version "
            f"{SNAPSHOT_VERSION}"
        )
    backend = payload.get("backend")
    cls: Type = BACKEND_CLASSES.get(backend)  # type: ignore[assignment]
    if cls is None:
        raise SnapshotError(
            f"{path} names unknown backend {backend!r}; known: {sorted(BACKEND_CLASSES)}"
        )
    return cls.from_state(payload["state"])

"""Versioned estimator snapshots and crash-consistent checkpoints.

Every backend implements the ``state_dict()`` / ``from_state()`` half of the
:class:`~repro.api.protocol.Estimator` contract; this module wraps those
states in a self-describing envelope so a snapshot file can be handed to
``load_snapshot`` without knowing which backend produced it.

Version 2 envelope (written by this build)::

    <pickled header dict> <raw section payload bytes>

    header = {"format": "repro.sketch-snapshot", "version": 2,
              "backend": <name>, "payload_length": <total bytes>,
              "sections": [{"name", "length", "crc32"}, ...]}

The header is a plain pickle; the section payloads follow it back to back.
Each section carries a CRC32 and its exact length, so a torn write
(truncation) or silent corruption (bit flip) is rejected by
:func:`load_snapshot` with a :class:`SnapshotError` *naming the bad
section* — never deserialized into garbage counters.  Sharded engines split
into a small ``state`` section (partitioning, plan, scalars) plus one
``shard-N`` section per shard; other backends write a single ``state``
section.  Version 1 files (one pickle, no checksums) still load.

:func:`save_checkpoint` / :func:`load_checkpoint` keep the same sections as
*files in a directory* under an atomically-swapped ``MANIFEST.json`` —
an **incremental** checkpoint: a section whose dirty generation matches the
manifest is carried forward instead of rewritten, so steady-state
checkpoints rewrite only the shards that ingested since the last one.
Every file is written temp-file → flush → fsync → ``os.replace``, so a
crash mid-checkpoint leaves the previous checkpoint fully intact.

Payloads are pickled (counter tables are numpy arrays and the partitioning
tree/router carry arbitrary hashable vertex labels), so snapshots are a
trusted-input format — the same trust model as
:meth:`~repro.distributed.shard.SketchShard.serialize`.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Type, Union

from repro import faults as _faults
from repro.api.protocol import (
    BACKEND_GLOBAL,
    BACKEND_GSKETCH,
    BACKEND_SHARDED,
    BACKEND_WINDOWED,
    Estimator,
)
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import GSketch
from repro.core.windowed import WindowedGSketch
from repro.distributed.coordinator import ShardedGSketch

SNAPSHOT_FORMAT = "repro.sketch-snapshot"
SNAPSHOT_VERSION = 2

CHECKPOINT_FORMAT = "repro.sketch-checkpoint"
CHECKPOINT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"

#: backend name → estimator class, the single source of truth for dispatch.
BACKEND_CLASSES: Dict[str, type] = {
    BACKEND_GSKETCH: GSketch,
    BACKEND_GLOBAL: GlobalSketch,
    BACKEND_SHARDED: ShardedGSketch,
    BACKEND_WINDOWED: WindowedGSketch,
}

_CLASS_BACKENDS: Dict[type, str] = {cls: name for name, cls in BACKEND_CLASSES.items()}

_PICKLE_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError, ImportError, IndexError)


class SnapshotError(ValueError):
    """A snapshot/checkpoint is malformed, truncated, corrupt or unknown."""


def backend_name(estimator: Estimator) -> str:
    """Canonical backend name of an estimator instance.

    Resolves subclasses structurally (``isinstance``) after the exact-type
    fast path, so a specialized ``GSketch`` subclass still snapshots as the
    ``gsketch`` backend.
    """
    name = _CLASS_BACKENDS.get(type(estimator))
    if name is not None:
        return name
    for backend, cls in BACKEND_CLASSES.items():
        if isinstance(estimator, cls):
            return backend
    raise SnapshotError(
        f"unknown estimator type {type(estimator).__name__}; snapshot backends: "
        f"{sorted(BACKEND_CLASSES)}"
    )


def _resolve_backend(backend, source: str) -> type:
    """The estimator class for a backend name, or a SnapshotError naming it."""
    cls: Optional[type] = BACKEND_CLASSES.get(backend)
    if cls is None:
        raise SnapshotError(
            f"{source} names unknown backend {backend!r}; known: "
            f"{sorted(BACKEND_CLASSES)}"
        )
    return cls


def _estimator_sections(
    estimator: Estimator,
) -> Tuple[Dict[str, int], Callable[[str], bytes]]:
    """The estimator's checkpoint sections: ``{name: generation}`` + loader.

    Sharded engines expose ``checkpoint_generations``/``checkpoint_section``
    (one section per shard, dirty-generation tracked); every other backend
    falls back to a single always-dirty ``state`` section holding its full
    ``state_dict``.
    """
    generations_fn = getattr(estimator, "checkpoint_generations", None)
    section_fn = getattr(estimator, "checkpoint_section", None)
    if generations_fn is not None and section_fn is not None:
        return generations_fn(), section_fn

    def whole_state(name: str) -> bytes:
        return pickle.dumps(estimator.state_dict(), protocol=pickle.HIGHEST_PROTOCOL)

    return {"state": 0}, whole_state


def _revive_from_sections(
    backend: str, sections: Mapping[str, bytes], source: str
) -> Estimator:
    """Assemble an estimator from verified section payloads."""
    cls: Type = _resolve_backend(backend, source)
    assemble = getattr(cls, "from_checkpoint_sections", None)
    try:
        if assemble is not None:
            return assemble(sections)
        return cls.from_state(pickle.loads(sections["state"]))
    except _PICKLE_ERRORS as error:
        raise SnapshotError(
            f"{source} holds an unreadable {backend!r} state: {error}"
        ) from error


def _write_atomic(path: Path, data: bytes) -> None:
    """Temp-file → flush → fsync → atomic rename; never truncates ``path``."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def save_snapshot(estimator: Estimator, path: Union[str, Path]) -> Path:
    """Write a versioned, per-section-checksummed snapshot to ``path``.

    Returns the path written.  The snapshot round-trips through
    :func:`load_snapshot` into an estimator answering every query
    bit-identically; a file damaged on disk afterwards (truncated, bit
    flipped) is rejected at load with the damaged section named.
    """
    generations, section_fn = _estimator_sections(estimator)
    names = sorted(generations)
    payloads = [section_fn(name) for name in names]
    header = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "backend": backend_name(estimator),
        "payload_length": sum(len(data) for data in payloads),
        "sections": [
            {"name": name, "length": len(data), "crc32": zlib.crc32(data)}
            for name, data in zip(names, payloads)
        ],
    }
    # Checksums cover the true bytes; the durability fault sites mangle what
    # is physically written, so an injected torn/corrupt write fails
    # validation exactly like a real one.
    body, _ = _faults.mangle_payload(b"".join(payloads))
    path = Path(path)
    _write_atomic(
        path, pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL) + body
    )
    return path


def load_snapshot(path: Union[str, Path]) -> Estimator:
    """Revive the estimator stored at ``path`` (version 2 or legacy 1).

    Raises:
        SnapshotError: if the file is not a repro snapshot, has an
            unsupported version, names an unknown backend, is truncated, or
            fails a section checksum.
    """
    try:
        with open(path, "rb") as handle:
            header = pickle.load(handle)
            body = handle.read()
    except _PICKLE_ERRORS as error:
        raise SnapshotError(
            f"{path} is not a readable {SNAPSHOT_FORMAT} file: {error}"
        ) from error
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    version = header.get("version")
    if version == 1:
        # Legacy envelope: the whole file is one pickle, state in-band.
        backend = header.get("backend")
        cls = _resolve_backend(backend, str(path))
        return cls.from_state(header["state"])
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} has snapshot version {version!r}; this build reads versions "
            f"1 and {SNAPSHOT_VERSION}"
        )
    _resolve_backend(header.get("backend"), str(path))  # fail fast on unknown
    sections = _verify_sections(header["sections"], body, str(path))
    return _revive_from_sections(header.get("backend"), sections, str(path))


def _verify_sections(
    listed: List[dict], body: bytes, source: str
) -> Dict[str, bytes]:
    """Slice + validate the concatenated section payloads of a v2 snapshot."""
    sections: Dict[str, bytes] = {}
    offset = 0
    for entry in listed:
        name, length = entry["name"], int(entry["length"])
        data = body[offset : offset + length]
        if len(data) != length:
            raise SnapshotError(
                f"{source} is truncated in section {name!r}: expected {length} "
                f"bytes, found {len(data)}"
            )
        if zlib.crc32(data) != entry["crc32"]:
            raise SnapshotError(
                f"{source} failed the CRC32 checksum of section {name!r}; the "
                "file is corrupt — restore from a good checkpoint"
            )
        sections[name] = data
        offset += length
    return sections


# ---------------------------------------------------------------------- #
# Checkpoint directories (incremental, crash-consistent)
# ---------------------------------------------------------------------- #
def save_checkpoint(estimator: Estimator, directory: Union[str, Path]) -> Path:
    """Write (or incrementally update) a checkpoint directory.

    Layout: one ``{section}-{generation}.bin`` file per section plus an
    atomically-swapped ``MANIFEST.json`` naming the live files with their
    lengths and CRC32 checksums.  Sections whose dirty generation matches
    the existing manifest are carried forward untouched; superseded section
    files are removed after the new manifest is in place.  A crash at any
    point leaves the directory loading as either the old or the new
    checkpoint, never a mix.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    backend = backend_name(estimator)
    epoch = getattr(estimator, "checkpoint_epoch", None)
    generations, section_fn = _estimator_sections(estimator)

    carried: Dict[str, dict] = {}
    previous = _read_manifest(directory, required=False)
    if (
        previous is not None
        and epoch is not None
        and previous.get("epoch") == epoch
        and previous.get("backend") == backend
    ):
        carried = {entry["name"]: entry for entry in previous["sections"]}

    entries: List[dict] = []
    for name in sorted(generations):
        generation = int(generations[name])
        prior = carried.get(name)
        if (
            prior is not None
            and int(prior["generation"]) == generation
            and (directory / prior["file"]).exists()
        ):
            entries.append(prior)  # clean section: carry the file forward
            continue
        data = section_fn(name)
        entry = {
            "name": name,
            "generation": generation,
            "file": f"{name}-{generation}.bin",
            "length": len(data),
            "crc32": zlib.crc32(data),
        }
        # Checksum the true bytes, write the (possibly fault-mangled) bytes:
        # an injected torn/corrupt section write must fail validation.
        mangled, _ = _faults.mangle_payload(data)
        _write_atomic(directory / entry["file"], mangled)
        entries.append(entry)
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "backend": backend,
        "epoch": epoch,
        "sections": entries,
    }
    _write_atomic(
        directory / MANIFEST_NAME, json.dumps(manifest, indent=2).encode("utf-8")
    )
    live = {entry["file"] for entry in entries}
    for stale in directory.glob("*.bin"):
        if stale.name not in live:
            stale.unlink(missing_ok=True)
    return directory


def load_checkpoint(directory: Union[str, Path]) -> Estimator:
    """Revive the estimator checkpointed in ``directory``.

    Every section file is length- and CRC32-verified against the manifest
    before any deserialization happens.

    Raises:
        SnapshotError: if the manifest is missing/malformed or any section
            file is missing, truncated or corrupt (the section is named).
    """
    directory = Path(directory)
    manifest = _read_manifest(directory, required=True)
    sections: Dict[str, bytes] = {}
    for entry in manifest["sections"]:
        name = entry["name"]
        path = directory / entry["file"]
        try:
            data = path.read_bytes()
        except FileNotFoundError as error:
            raise SnapshotError(
                f"{directory} is missing checkpoint section {name!r} ({path.name})"
            ) from error
        if len(data) != int(entry["length"]):
            raise SnapshotError(
                f"{directory} section {name!r} is truncated: expected "
                f"{entry['length']} bytes, found {len(data)} — the write was torn"
            )
        if zlib.crc32(data) != entry["crc32"]:
            raise SnapshotError(
                f"{directory} section {name!r} failed its CRC32 checksum; the "
                "file is corrupt — restore from a good checkpoint"
            )
        sections[name] = data
    return _revive_from_sections(manifest.get("backend"), sections, str(directory))


def _read_manifest(directory: Path, required: bool) -> Optional[dict]:
    """Read + validate ``MANIFEST.json``; ``None`` when absent/invalid and
    not required (an interrupted first checkpoint simply rewrites fully)."""
    path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text("utf-8"))
    except FileNotFoundError:
        if required:
            raise SnapshotError(f"{directory} has no {MANIFEST_NAME}") from None
        return None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        if required:
            raise SnapshotError(
                f"{directory}/{MANIFEST_NAME} is not valid JSON: {error}"
            ) from error
        return None
    if (
        not isinstance(manifest, dict)
        or manifest.get("format") != CHECKPOINT_FORMAT
        or not isinstance(manifest.get("sections"), list)
    ):
        if required:
            raise SnapshotError(f"{directory} is not a {CHECKPOINT_FORMAT} directory")
        return None
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        if required:
            raise SnapshotError(
                f"{directory} has checkpoint version {version!r}; this build "
                f"reads version {CHECKPOINT_VERSION}"
            )
        return None
    return manifest

"""The :class:`SketchEngine` facade: one entry point for every backend.

``SketchEngine`` owns the full estimator lifecycle — **build** (fluent
builder over data sample / query workload / shard count / window length),
**ingest** (columnar batches through the
:class:`~repro.api.protocol.Estimator` surface), **query** (typed
:class:`~repro.api.queries.Query` objects in,
:class:`~repro.api.results.Estimate` objects out) and **snapshot/restore**
(the versioned :mod:`repro.api.snapshot` format) — so callers program against
one logical interface while the physical execution strategy (single sketch,
partitioned, sharded, windowed) stays a construction-time choice::

    engine = (SketchEngine.builder()
              .config(total_cells=60_000, depth=4, seed=7)
              .dataset(stream)
              .build())
    engine.ingest(stream)
    estimate = engine.query(EdgeQuery(3, 17))
    estimate.value, estimate.interval.lower, estimate.provenance.partition
    engine.save("sketch.snap")
    restored = SketchEngine.load("sketch.snap")
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence as SequenceABC
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Union

from repro.api.protocol import (
    BACKEND_GLOBAL,
    BACKEND_GSKETCH,
    BACKEND_SHARDED,
    BACKEND_WINDOWED,
    Estimator,
)
from repro.api.queries import EdgeQuery, Query, SubgraphQuery, WindowQuery
from repro.api.results import Estimate, Provenance
from repro.api.snapshot import (
    SnapshotError,
    backend_name,
    load_checkpoint,
    load_snapshot,
    save_checkpoint,
    save_snapshot,
)
from repro.core.config import GSketchConfig
from repro.core.global_sketch import GlobalSketch
from repro.core.gsketch import DEFAULT_BATCH_SIZE, GSketch, iter_edge_batches
from repro.core.router import OUTLIER_PARTITION
from repro.core.windowed import WindowedGSketch
from repro.datasets.registry import load_dataset
from repro.distributed.coordinator import ShardedGSketch
from repro.distributed.executor import ShardExecutor, make_executor
from repro.distributed.recovery import RecoveryPolicy
from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge
from repro.graph.sampling import reservoir_sample
from repro.graph.stream import GraphStream
from repro.observability import AccuracyTracker
from repro.observability import metrics as _obs
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.queries.kernels import get_kernel, scratch_capacity
from repro.queries.parallel import PlanConfig
from repro.queries.workload import QueryWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.serving imports us)
    from repro.serving.server import ServerHandle, ServingConfig

#: Default reservoir size when the partitioning sample is derived from a
#: dataset rather than supplied explicitly.
DEFAULT_SAMPLE_SIZE = 5_000


class EngineError(ValueError):
    """A builder or query request is inconsistent with the chosen backend."""


class SketchEngine:
    """Facade over one :class:`~repro.api.protocol.Estimator` backend.

    Instances come from :meth:`builder` (fresh engines),
    :meth:`from_estimator` (wrapping an existing backend object) or
    :meth:`load` (snapshot restore); the constructor is internal.
    """

    def __init__(self, estimator: Estimator, backend: Optional[str] = None) -> None:
        self._estimator = estimator
        # Accuracy census starts empty at construction (and therefore at
        # snapshot restore): its exact truth covers edges ingested *through
        # this engine*, which is the only mass it can count exactly.
        self._accuracy = AccuracyTracker()
        if backend is None:
            try:
                backend = backend_name(estimator)
            except SnapshotError:
                # Custom Estimator implementations can be wrapped and queried;
                # only save() requires a registered snapshot backend.
                backend = type(estimator).__name__
        self._backend = backend
        self._plan_config: Optional[PlanConfig] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def builder(cls) -> "EngineBuilder":
        """Start a fluent build (config → dataset/sample → variant → build)."""
        return EngineBuilder()

    @classmethod
    def from_estimator(cls, estimator: Estimator) -> "SketchEngine":
        """Wrap an already-constructed backend in the facade."""
        return cls(estimator)

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        stream: GraphStream | Iterable[StreamEdge],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Ingest a whole stream in columnar blocks; returns elements ingested."""
        total = 0
        for batch in iter_edge_batches(stream, batch_size):
            total += self.ingest_batch(batch)
        return total

    def ingest_batch(self, batch: EdgeBatch | Sequence[StreamEdge]) -> int:
        """Ingest one block of stream elements; returns elements ingested."""
        if _obs._ENABLED:
            if not isinstance(batch, EdgeBatch):
                batch = EdgeBatch.from_edges(batch)
            self._accuracy.observe_batch(batch)
        return self._estimator.ingest_batch(batch)

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #
    def query(
        self, query: Union[Query, EdgeKey, Sequence[Union[Query, EdgeKey]]]
    ) -> Union[Estimate, List[Estimate]]:
        """The polymorphic query entry point: one query in, one result out.

        Accepts any member of the query family — :class:`EdgeQuery`
        (lifetime; an attached ``window`` lifts it to a
        :class:`WindowQuery`), :class:`SubgraphQuery`, :class:`WindowQuery`
        (windowed backend only), or a bare ``(source, target)`` edge key as
        an :class:`EdgeQuery` shorthand — and returns one typed,
        provenance-carrying :class:`~repro.api.results.Estimate`.

        Also accepts a *sequence* of the above and returns a parallel
        ``List[Estimate]``; plain edge queries inside the sequence share one
        batched plan gather, so mixing families costs nothing over sorting
        them yourself::

            engine.query(EdgeQuery(3, 17)).value
            engine.query([EdgeQuery(3, 17), SubgraphQuery.from_edges(...)])

        This dispatcher is the only query surface the serving tier and the
        CLI use; ``estimate_edges``/``query_many`` remain as deprecated
        shims over it.
        """
        if isinstance(query, (EdgeQuery, SubgraphQuery, WindowQuery)):
            return self._dispatch_query(query)
        if isinstance(query, tuple) and len(query) == 2 and not isinstance(
            query[0], (EdgeQuery, SubgraphQuery, WindowQuery)
        ):
            # A bare edge key, not a 2-element batch of query objects.
            return self._dispatch_query(query)
        if isinstance(query, SequenceABC) and not isinstance(query, (str, bytes)):
            return self._dispatch_batch(list(query))
        raise EngineError(
            f"unsupported query type {type(query).__name__}; expected EdgeQuery, "
            "SubgraphQuery, WindowQuery, a (source, target) key, or a sequence "
            "of those"
        )

    def _dispatch_query(self, query: Union[Query, EdgeKey]) -> Estimate:
        """Answer one typed query with a typed, provenance-carrying result."""
        if isinstance(query, WindowQuery):
            return self._query_window(query)
        if isinstance(query, EdgeQuery):
            if query.window is not None:
                return self._query_window(WindowQuery.from_edge_query(query))
            return self._estimate_edge_keys([query.key])[0]
        if isinstance(query, SubgraphQuery):
            value = self._estimator.query_subgraph(query)
            return Estimate(
                value=float(value),
                interval=None,
                provenance=Provenance(backend=self._backend),
            )
        if isinstance(query, tuple) and len(query) == 2:
            return self._estimate_edge_keys([query])[0]
        raise EngineError(
            f"unsupported query type {type(query).__name__}; expected EdgeQuery, "
            "SubgraphQuery, WindowQuery or a (source, target) key"
        )

    def _dispatch_batch(self, queries: Sequence[Union[Query, EdgeKey]]) -> List[Estimate]:
        """Answer a block of queries; plain edge queries share one batched pass."""
        estimates: List[Optional[Estimate]] = [None] * len(queries)
        edge_positions: List[int] = []
        edge_keys: List[EdgeKey] = []
        for position, query in enumerate(queries):
            if isinstance(query, EdgeQuery) and query.window is None:
                edge_positions.append(position)
                edge_keys.append(query.key)
            elif isinstance(query, tuple) and len(query) == 2:
                edge_positions.append(position)
                edge_keys.append(query)
            else:
                estimates[position] = self._dispatch_query(query)
        if edge_keys:
            for position, estimate in zip(
                edge_positions, self._estimate_edge_keys(edge_keys)
            ):
                estimates[position] = estimate
        assert all(e is not None for e in estimates), "query batch left a slot unanswered"
        return estimates  # type: ignore[return-value]

    def query_many(self, queries: Sequence[Union[Query, EdgeKey]]) -> List[Estimate]:
        """Deprecated alias: pass the sequence straight to :meth:`query`."""
        warnings.warn(
            "SketchEngine.query_many is deprecated; pass the sequence to "
            "engine.query([...]) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._dispatch_batch(list(queries))

    def estimate_edges(self, keys: Sequence[EdgeKey]) -> List[Estimate]:
        """Deprecated alias: build :class:`EdgeQuery` objects for :meth:`query`."""
        warnings.warn(
            "SketchEngine.estimate_edges is deprecated; use "
            "engine.query([EdgeQuery(source, target), ...]) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._estimate_edge_keys(keys)

    def _estimate_edge_keys(self, keys: Sequence[EdgeKey]) -> List[Estimate]:
        """Typed estimates for a block of edge keys (lifetime semantics).

        Partitioned backends answer values, intervals *and* provenance from a
        single routing pass (``confidence_batch_with_partitions``); backends
        without a partitioning fall back to plain ``confidence_batch``.
        """
        generation = getattr(self._estimator, "ingest_generation", None)
        if generation is not None:
            generation = int(generation)
        combined = getattr(self._estimator, "confidence_batch_with_partitions", None)
        if combined is None:
            shared = Provenance(backend=self._backend, generation=generation)
            return [
                Estimate(value=interval.estimate, interval=interval, provenance=shared)
                for interval in self._estimator.confidence_batch(keys)
            ]
        intervals, partitions = combined(keys)
        plan = self._estimator.plan if self._backend == BACKEND_SHARDED else None
        dead = frozenset(getattr(self._estimator, "dead_shards", ()) or ())
        estimates = []
        for interval, partition in zip(intervals, partitions):
            shard = None if plan is None else plan.shard_of(partition)
            estimates.append(
                Estimate(
                    value=interval.estimate,
                    interval=interval,
                    provenance=Provenance(
                        backend=self._backend,
                        partition=partition,
                        shard=shard,
                        outlier=partition == OUTLIER_PARTITION,
                        degraded=shard is not None and shard in dead,
                        generation=generation,
                    ),
                )
            )
        return estimates

    def _query_window(self, query: WindowQuery) -> Estimate:
        if self._backend != BACKEND_WINDOWED:
            raise EngineError(
                f"window queries need the windowed backend, engine is {self._backend!r}"
            )
        value = self._estimator.query_edge(query.key, query.start, query.end)
        return Estimate(
            value=float(value),
            interval=None,
            provenance=Provenance(backend=self._backend),
        )

    # ------------------------------------------------------------------ #
    # Read optimization
    # ------------------------------------------------------------------ #
    def frozen(self) -> "SketchEngine":
        """Pre-compile the backend's read plan so the next query hits the arena.

        Every backend auto-plans — the first query after an ingest compiles
        (or refreshes) its :class:`~repro.queries.plan.CompiledQueryPlan`
        lazily — so this is purely a warm-up: call it after bulk ingestion
        and before latency-sensitive serving to keep plan compilation out of
        the first request.  Returns ``self`` for chaining::

            engine.ingest(stream)
            estimates = engine.frozen().query(queries)
        """
        compile_plan = getattr(self._estimator, "compile_plan", None)
        if compile_plan is not None:
            compile_plan()
        return self

    @property
    def plan_config(self) -> Optional[PlanConfig]:
        """The typed read-plane configuration, if one was applied."""
        return self._plan_config

    def set_plan_config(self, config: PlanConfig) -> "SketchEngine":
        """Apply a typed read-plane configuration (kernel tier + reader pool).

        ``config.kernel`` selects the compiled kernel tier every plan
        compile/refresh will use (``"numpy"`` scratch kernels by default,
        ``"numba"`` when available); ``config.readers`` sizes the
        :class:`~repro.queries.parallel.ReaderPool` the serving tier spawns.
        Usually set at build time via ``EngineBuilder.plan(...)``; raises
        :class:`EngineError` for backends without a compiled read plan (the
        windowed backend) and
        :class:`~repro.queries.kernels.KernelUnavailableError` when the
        requested tier's dependency is missing.
        """
        set_kernel = getattr(self._estimator, "set_plan_kernel", None)
        backend_config = getattr(self._estimator, "config", None)
        depth = getattr(backend_config, "depth", None)
        if set_kernel is None or depth is None:
            raise EngineError(
                f"the {self._backend!r} backend has no compiled read plan; "
                "plan configuration applies to plan-serving backends only"
            )
        kernel = get_kernel(
            config.kernel,
            depth=int(depth),
            capacity=scratch_capacity(config.scratch_mb, int(depth)),
        )
        set_kernel(kernel)
        self._plan_config = config
        return self

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional["ServingConfig"] = None,
    ) -> "ServerHandle":
        """Serve this engine over TCP on a background event-loop thread.

        Point queries from concurrent clients coalesce into shared
        compiled-plan gathers (see :mod:`repro.serving`).  Returns once the
        socket is bound; the handle exposes ``address``, ``stats()`` and
        ``stop()`` and works as a context manager::

            with engine.serve() as handle:
                host, port = handle.address
                ...

        While the handle is live the engine is driven by the server thread —
        don't query or ingest it directly from other threads.
        """
        from repro.serving.server import serve_in_background

        return serve_in_background(self, host, port, config)

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write a versioned snapshot of the engine's estimator to ``path``."""
        return save_snapshot(self._estimator, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SketchEngine":
        """Restore an engine from a :meth:`save` snapshot (any backend)."""
        return cls.from_estimator(load_snapshot(path))

    def checkpoint(self, directory: Union[str, Path]) -> Path:
        """Write (or incrementally update) a crash-consistent checkpoint.

        Sections whose dirty generation is unchanged since the previous
        checkpoint of the same engine instance are carried forward, so
        steady-state checkpoints rewrite only the shards that ingested in
        between.  See :func:`repro.api.snapshot.save_checkpoint`.
        """
        return save_checkpoint(self._estimator, directory)

    @classmethod
    def restore(cls, directory: Union[str, Path]) -> "SketchEngine":
        """Revive an engine from a :meth:`checkpoint` directory.

        Every section file is length- and checksum-verified before any
        deserialization; a torn or corrupt checkpoint raises
        :class:`~repro.api.snapshot.SnapshotError` naming the bad section.
        """
        return cls.from_estimator(load_checkpoint(directory))

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release backend resources (worker pools on the sharded backend)."""
        close = getattr(self._estimator, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "SketchEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def backend(self) -> str:
        """Canonical name of the physical backend serving this engine."""
        return self._backend

    @property
    def estimator(self) -> Estimator:
        """The underlying backend object (escape hatch for backend-specific APIs)."""
        return self._estimator

    @property
    def elements_processed(self) -> int:
        """Number of stream elements ingested so far."""
        return self._estimator.elements_processed

    def describe(self) -> dict:
        """Plain-JSON summary of the engine (used by the CLI and reports)."""
        estimator = self._estimator
        summary: dict = {
            "backend": self._backend,
            "elements_processed": self.elements_processed,
        }
        for attribute in ("num_partitions", "num_shards", "num_windows", "memory_cells"):
            value = getattr(estimator, attribute, None)
            if value is not None:
                summary[attribute] = int(value)
        total_frequency = getattr(estimator, "total_frequency", None)
        if total_frequency is not None:
            summary["total_frequency"] = float(total_frequency)
        if getattr(estimator, "degraded", False):
            summary["degraded"] = True
            summary["dead_shards"] = list(getattr(estimator, "dead_shards", ()))
        return summary

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    @property
    def accuracy_tracker(self) -> AccuracyTracker:
        """The live observed-vs-bound census attached to this engine."""
        return self._accuracy

    def metrics(self) -> dict:
        """Full telemetry snapshot: registry metrics, backend health, accuracy.

        Backend health (per-table fill ratios, outlier share, plan and
        hot-cache state) and the live accuracy report are mirrored into
        registry gauges *before* the registry is snapshotted, so a
        subsequent Prometheus render
        (:func:`repro.observability.render_prometheus`) carries them too.
        The accuracy replay issues real queries against the backend and
        therefore shows up in the query-plane counters.
        """
        registry = get_registry()
        health: Optional[dict] = None
        snapshot_fn = getattr(self._estimator, "telemetry_snapshot", None)
        if snapshot_fn is not None:
            health = snapshot_fn()
            _mirror_health(registry, self._backend, health)
        accuracy = self._accuracy.report(self._estimator)
        _mirror_accuracy(registry, self._backend, accuracy)
        return {
            "backend": self._backend,
            "elements_processed": self.elements_processed,
            "health": health,
            "accuracy": accuracy,
            "metrics": registry.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SketchEngine(backend={self._backend!r}, estimator={self._estimator!r})"


def _mirror_tables(
    registry: MetricsRegistry, labels: dict, tables: Iterable[dict]
) -> None:
    for table in tables:
        table_labels = dict(labels)
        table_labels["partition"] = str(table.get("partition", ""))
        registry.gauge(
            "repro_sketch_fill_ratio",
            "Fraction of nonzero counter cells per sketch table.",
            table_labels,
        ).set(float(table.get("fill_ratio", 0.0)))
        registry.gauge(
            "repro_sketch_max_cell",
            "Largest counter cell value per sketch table.",
            table_labels,
        ).set(float(table.get("max_cell", 0.0)))


def _mirror_health(registry: MetricsRegistry, backend: str, health: dict) -> None:
    """Project a backend ``telemetry_snapshot()`` onto registry gauges."""
    labels = {"backend": backend}
    registry.gauge(
        "repro_backend_elements",
        "Stream elements ingested by the backend.",
        labels,
    ).set(float(health.get("elements_processed", 0)))
    outlier_share = health.get("outlier_share")
    if outlier_share is not None:
        registry.gauge(
            "repro_outlier_share",
            "Fraction of ingested elements routed to the outlier sketch.",
            labels,
        ).set(float(outlier_share))
    _mirror_tables(registry, labels, health.get("tables", ()))
    for window in health.get("windows", ()):
        window_labels = dict(labels)
        window_labels["window"] = str(window.get("window", ""))
        _mirror_tables(registry, window_labels, window.get("tables", ()))
    plan = health.get("plan")
    if plan:
        registry.gauge(
            "repro_plan_generation",
            "Ingest generation of the compiled query plan's backend.",
            labels,
        ).set(float(plan.get("generation", 0)))
        registry.gauge(
            "repro_plan_stale",
            "1 when the compiled plan lags the backend generation.",
            labels,
        ).set(1.0 if plan.get("stale") else 0.0)
    hot = health.get("hot_cache")
    if hot:
        for field in ("hits", "misses", "evictions", "invalidations"):
            registry.counter(
                f"repro_hot_cache_{field}_total",
                f"Hot-edge cache {field} (mirrored from the always-on cache).",
                labels,
            ).set_total(float(hot.get(field, 0)))
        registry.gauge(
            "repro_hot_cache_size",
            "Entries currently resident in the hot-edge cache.",
            labels,
        ).set(float(hot.get("size", 0)))


def _mirror_accuracy(registry: MetricsRegistry, backend: str, report: dict) -> None:
    """Project an :class:`AccuracyTracker` report onto registry gauges."""
    labels = {"backend": backend}
    gauges = (
        ("repro_accuracy_samples", "Distinct edges under exact census.", "samples"),
        ("repro_accuracy_mean_error", "Mean estimate minus truth.", "mean_error"),
        ("repro_accuracy_max_error", "Largest estimate minus truth.", "max_error"),
        (
            "repro_accuracy_mean_relative_error",
            "Mean relative overestimate across the census.",
            "mean_relative_error",
        ),
        (
            "repro_accuracy_mean_bound",
            "Mean Equation-1 additive bound across the census.",
            "mean_bound",
        ),
        (
            "repro_accuracy_bound_violation_ratio",
            "Fraction of census edges whose error exceeds their Eq.-1 bound.",
            "bound_violation_ratio",
        ),
    )
    for name, help_text, field in gauges:
        registry.gauge(name, help_text, labels).set(float(report[field]))
    registry.counter(
        "repro_accuracy_bound_violations_total",
        "Census edges whose error exceeds their Eq.-1 bound.",
        labels,
    ).set_total(float(report["bound_violations"]))


class EngineBuilder:
    """Fluent configuration of a :class:`SketchEngine`.

    Call order is free; :meth:`build` validates the combination.  The variant
    defaults to the partitioned single-process gSketch when a sample source is
    given and the Global Sketch baseline otherwise; :meth:`sharded` and
    :meth:`windowed` select the scale-out and time-windowed variants.
    """

    def __init__(self) -> None:
        self._config: Optional[GSketchConfig] = None
        self._dataset: Optional[Union[str, GraphStream]] = None
        self._dataset_seed: Optional[int] = None
        self._sample: Optional[GraphStream] = None
        self._sample_size = DEFAULT_SAMPLE_SIZE
        self._workload: Optional[Union[QueryWorkload, GraphStream]] = None
        self._smoothing_alpha = 1.0
        self._num_shards: Optional[int] = None
        self._executor: Optional[Union[str, ShardExecutor]] = None
        self._recovery: Optional[RecoveryPolicy] = None
        self._window_length: Optional[float] = None
        self._window_sample_size = DEFAULT_SAMPLE_SIZE
        self._stream_size_hint: Optional[int] = None
        self._plan_config: Optional[PlanConfig] = None

    # -- space budget -------------------------------------------------- #
    def config(self, config: Optional[GSketchConfig] = None, **kwargs) -> "EngineBuilder":
        """Set the space budget: a ready :class:`GSketchConfig` or its kwargs."""
        if config is not None and kwargs:
            raise EngineError("pass either a GSketchConfig or keyword arguments, not both")
        if config is None:
            config = GSketchConfig(**kwargs)
        self._config = config
        return self

    # -- sample sources ------------------------------------------------ #
    def dataset(
        self, dataset: Union[str, GraphStream], seed: Optional[int] = None
    ) -> "EngineBuilder":
        """The stream the engine will serve: a :class:`GraphStream` or a
        registry name (:func:`repro.datasets.registry.load_dataset`).

        Used to derive the partitioning sample (unless :meth:`sample` is
        given) and the stream-size hint for Theorem-1 extrapolation.
        """
        self._dataset = dataset
        self._dataset_seed = seed
        return self

    def sample(self, sample: GraphStream) -> "EngineBuilder":
        """Explicit partitioning data sample (overrides dataset derivation)."""
        self._sample = sample
        return self

    def sample_size(self, size: int) -> "EngineBuilder":
        """Reservoir size when the sample is derived from the dataset."""
        if size <= 0:
            raise EngineError(f"sample size must be > 0, got {size}")
        self._sample_size = size
        return self

    def workload(
        self,
        workload: Union[QueryWorkload, GraphStream],
        smoothing_alpha: float = 1.0,
    ) -> "EngineBuilder":
        """Query-workload sample for workload-aware partitioning (Figure 3)."""
        self._workload = workload
        self._smoothing_alpha = smoothing_alpha
        return self

    def stream_size_hint(self, hint: int) -> "EngineBuilder":
        """Expected stream length (Theorem-1 extrapolation of the sample)."""
        self._stream_size_hint = hint
        return self

    # -- variants ------------------------------------------------------ #
    def sharded(
        self, num_shards: int, executor: Optional[Union[str, ShardExecutor]] = None
    ) -> "EngineBuilder":
        """Serve the partitioning from ``num_shards`` shard workers."""
        if num_shards <= 0:
            raise EngineError(f"shard count must be > 0, got {num_shards}")
        self._num_shards = num_shards
        if executor is not None:
            self._executor = executor
        return self

    def executor(self, executor: Union[str, ShardExecutor]) -> "EngineBuilder":
        """Choose the sharded backend's execution strategy.

        Accepts a canonical name — ``"sequential"`` (in-thread reference),
        ``"threads"`` (shared thread pool), ``"processes"`` (persistent
        worker process per shard, state pulled on sync), or ``"shared"``
        (shared-memory arenas with pipelined dispatch; see
        :class:`~repro.distributed.shared_memory.SharedMemoryExecutor`) — or
        an already-constructed
        :class:`~repro.distributed.executor.ShardExecutor`.  Only meaningful
        together with :meth:`sharded`; teardown is owned by the engine
        (``engine.close()`` / context-manager exit releases workers and
        shared memory, leaving the estimator snapshot-safe).
        """
        self._executor = executor
        return self

    def recovery(
        self, policy: Optional[RecoveryPolicy] = None, **kwargs
    ) -> "EngineBuilder":
        """Supervise the sharded backend's workers with automatic recovery.

        Accepts a ready :class:`~repro.distributed.recovery.RecoveryPolicy`
        or its keyword arguments (``max_restarts``, ``backoff_seconds``,
        ``backoff_multiplier``, ``deadline_seconds``, ``journal_limit``,
        ``ack_deadline_seconds``, ``degraded_serving``).  Under a policy the
        coordinator journals in-flight batches, restarts crashed workers
        with bounded exponential backoff and replays the journal so the
        recovered state is bit-exact; with ``degraded_serving=True`` it
        keeps answering from surviving shards after retry exhaustion,
        marking results ``Provenance.degraded`` with widened intervals.
        Only meaningful together with :meth:`sharded`.
        """
        if policy is not None and kwargs:
            raise EngineError("pass either a RecoveryPolicy or keyword arguments, not both")
        if policy is None:
            try:
                policy = RecoveryPolicy(**kwargs)
            except (TypeError, ValueError) as exc:
                raise EngineError(str(exc)) from exc
        self._recovery = policy
        return self

    def windowed(
        self, window_length: float, sample_size: int = DEFAULT_SAMPLE_SIZE
    ) -> "EngineBuilder":
        """Maintain one estimator per time window of ``window_length``."""
        self._window_length = window_length
        self._window_sample_size = sample_size
        return self

    def plan(self, config: Optional[PlanConfig] = None, **kwargs) -> "EngineBuilder":
        """Configure the compiled read plane: kernel tier and reader pool.

        Accepts a ready :class:`~repro.queries.parallel.PlanConfig` or its
        keyword arguments (``kernel``, ``readers``, ``scratch_mb``,
        ``cache_bits``, ``max_pending``, ``batch_capacity``)::

            engine = (SketchEngine.builder()
                      .config(total_cells=60_000, depth=4)
                      .dataset(stream)
                      .plan(PlanConfig(kernel="numpy", readers=4, scratch_mb=4.0))
                      .build())

        ``kernel`` selects the batched-hash/gather implementation every plan
        compile uses (``"numpy"`` preallocated-scratch kernels, or
        ``"numba"`` compiled loops when numba is installed — NumPy stays the
        bit-exact parity oracle either way); ``readers`` > 0 makes
        ``engine.serve()`` spawn that many reader-pool worker processes
        mapping the plan arena from shared memory.  Not applicable to the
        windowed backend (no compiled plan).
        """
        if config is not None and kwargs:
            raise EngineError("pass either a PlanConfig or keyword arguments, not both")
        if config is None:
            try:
                config = PlanConfig(**kwargs)
            except (TypeError, ValueError) as exc:
                raise EngineError(str(exc)) from exc
        self._plan_config = config
        return self

    # -- assembly ------------------------------------------------------ #
    def build(self) -> SketchEngine:
        """Validate the combination and construct the engine."""
        if self._config is None:
            raise EngineError("a space budget is required: call .config(...) first")
        if self._window_length is not None and self._num_shards is not None:
            raise EngineError("windowed and sharded variants are mutually exclusive")
        if self._executor is not None and self._num_shards is None:
            raise EngineError(
                "an executor only applies to the sharded backend: call .sharded(n) too"
            )
        if self._recovery is not None and self._num_shards is None:
            raise EngineError(
                "a recovery policy only applies to the sharded backend: "
                "call .sharded(n) too"
            )
        executor = self._resolve_executor()

        if self._window_length is not None:
            if self._workload is not None:
                raise EngineError(
                    "the windowed backend partitions each window from the previous "
                    "window's reservoir; a workload sample does not apply"
                )
            if self._plan_config is not None:
                raise EngineError(
                    "the windowed backend has no compiled read plan; .plan(...) "
                    "does not apply"
                )
            estimator: Estimator = WindowedGSketch(
                config=self._config,
                window_length=self._window_length,
                sample_size=self._window_sample_size,
                seed=self._config.seed,
            )
            return self._finish(estimator, BACKEND_WINDOWED)

        sample, hint = self._resolve_sample()
        if sample is None:
            if self._num_shards is not None:
                raise EngineError(
                    "the sharded backend needs a partitioning sample: call "
                    ".sample(...) or .dataset(...)"
                )
            if self._workload is not None:
                raise EngineError(
                    "workload-aware partitioning needs a data sample: call "
                    ".sample(...) or .dataset(...)"
                )
            return self._finish(GlobalSketch(self._config), BACKEND_GLOBAL)

        if self._workload is not None:
            gsketch = GSketch.build_with_workload(
                sample,
                self._workload,
                self._config,
                smoothing_alpha=self._smoothing_alpha,
                stream_size_hint=hint,
            )
            if self._num_shards is not None:
                # Workload-aware sharding has no direct ShardedGSketch
                # constructor; re-shard the freshly built (empty) sketch.
                sharded = ShardedGSketch.from_gsketch(
                    gsketch,
                    num_shards=self._num_shards,
                    executor=executor,
                    recovery=self._recovery,
                )
                return self._finish(sharded, BACKEND_SHARDED)
            return self._finish(gsketch, BACKEND_GSKETCH)

        if self._num_shards is not None:
            sharded = ShardedGSketch.build(
                sample,
                self._config,
                num_shards=self._num_shards,
                executor=executor,
                stream_size_hint=hint,
                recovery=self._recovery,
            )
            return self._finish(sharded, BACKEND_SHARDED)
        gsketch = GSketch.build(sample, self._config, stream_size_hint=hint)
        return self._finish(gsketch, BACKEND_GSKETCH)

    def _finish(self, estimator: Estimator, backend: str) -> SketchEngine:
        """Wrap the built estimator, applying any read-plane configuration."""
        engine = SketchEngine(estimator, backend)
        if self._plan_config is not None:
            engine.set_plan_config(self._plan_config)
        return engine

    def _resolve_executor(self) -> Optional[ShardExecutor]:
        """Resolve the executor spec (name or instance) to a backend object."""
        try:
            return make_executor(self._executor)
        except ValueError as exc:
            raise EngineError(str(exc)) from exc

    def _resolve_sample(self) -> tuple:
        """The partitioning sample and stream-size hint, resolving the dataset."""
        if self._sample is not None:
            return self._sample, self._stream_size_hint
        if self._dataset is None:
            return None, self._stream_size_hint
        if isinstance(self._dataset, GraphStream):
            stream = self._dataset
        else:
            seed = self._dataset_seed
            if seed is None:
                seed = self._config.seed if self._config is not None else 7
            stream = load_dataset(self._dataset, seed=seed).stream
        hint = self._stream_size_hint if self._stream_size_hint is not None else len(stream)
        size = min(self._sample_size, len(stream))
        if size == 0:
            return None, hint
        sample = reservoir_sample(stream, size, seed=self._config.seed)
        return sample, hint

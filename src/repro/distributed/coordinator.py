"""The sharded ingestion & query coordinator.

:class:`ShardedGSketch` is the scale-out form of
:class:`~repro.core.gsketch.GSketch`: the same offline partitioning (tree,
router, outlier reserve) drives a fleet of :class:`~repro.distributed.shard.SketchShard`
workers, each owning the localized sketches a
:class:`~repro.distributed.plan.ShardPlan` assigned to it.  The coordinator

1. columnarizes the incoming stream into :class:`~repro.graph.batch.EdgeBatch`
   blocks,
2. hashes + routes + groups each block in one vectorized pass
   (:class:`~repro.distributed.batch_router.BatchRouter`),
3. scatters the per-partition groups to shard workers through a pluggable
   :class:`~repro.distributed.executor.ShardExecutor` (in-thread, thread
   pool, or per-shard worker processes), and
4. serves queries from the shard-resident sketches, re-synchronizing worker
   state first when the executor runs out-of-process.

Because shard sketches are constructed by the same factories — identical
widths, depths and hash seeds — and intra-partition arrival order is
preserved end to end, a ``ShardedGSketch`` produces **bit-identical counters
and estimates** to a single :class:`~repro.core.gsketch.GSketch` over the
same stream, for any shard count and any executor.  The parity tests in
``tests/test_distributed.py`` enforce exactly that.
"""

from __future__ import annotations

import math
import pickle
import uuid
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.config import GSketchConfig
from repro.core.errors import degraded_union_bound
from repro.core.estimator import ConfidenceInterval, intervals_from_arrays
from repro.core.gsketch import (
    DEFAULT_BATCH_SIZE,
    GSketch,
    iter_edge_batches,
    make_outlier_sketch,
    make_partition_sketch,
    routed_confidence_batch,
)
from repro.core.partition_tree import PartitionTree
from repro.core.partitioner import build_partition_tree
from repro.core.router import OUTLIER_PARTITION, VertexRouter
from repro.core.batch_router import BatchRouter, PartitionGroup
from repro.distributed.executor import (
    SequentialExecutor,
    ShardExecutionError,
    ShardExecutor,
)
from repro.distributed.plan import ShardPlan
from repro.distributed.recovery import RecoveryPolicy, ShardSupervisor
from repro.distributed.shard import SketchShard
from repro.graph.batch import EdgeBatch
from repro.graph.edge import EdgeKey, StreamEdge
from repro.graph.statistics import VertexStatistics
from repro.graph.stream import GraphStream
from repro.observability.health import sketch_health
from repro.observability.instruments import (
    INGEST_BATCHES,
    INGEST_ELEMENTS,
    INGEST_STAGE,
)
from repro.observability.tracing import span, stage_clock
from repro.queries.plan import PlanServingMixin
from repro.queries.subgraph_query import SubgraphQuery
from repro.sketches.countmin import CountMinSketch


class ShardedGSketch(PlanServingMixin):
    """A gSketch served by N frequency-balanced shards.

    Instances are normally created through :meth:`build` (mirroring
    :meth:`~repro.core.gsketch.GSketch.build`) or :meth:`from_gsketch`
    (re-sharding an existing, possibly populated, single sketch).

    Args:
        config: the space budget and termination constants.
        tree: the offline partitioning tree.
        router: the vertex → partition hash structure ``H``.
        stats: sample statistics (kept for plan weights and re-aggregation).
        num_shards: number of shards when ``plan`` is not given.
        executor: execution backend; defaults to
            :class:`~repro.distributed.executor.SequentialExecutor`.
        plan: an explicit shard plan (overrides ``num_shards``).
        recovery: a :class:`~repro.distributed.recovery.RecoveryPolicy`
            enabling supervised recovery — journaled dispatch, bounded
            worker restarts with replay, and (opt-in) degraded serving.
            ``None`` (default) keeps the original fail-fast behaviour.
    """

    def __init__(
        self,
        config: GSketchConfig,
        tree: PartitionTree,
        router: VertexRouter,
        stats: VertexStatistics,
        num_shards: int = 2,
        executor: Optional[ShardExecutor] = None,
        plan: Optional[ShardPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.config = config
        self.tree = tree
        self.router = router
        self.stats = stats
        self.plan = plan or ShardPlan.from_tree(tree, num_shards, stats=stats)
        self._executor: ShardExecutor = executor or SequentialExecutor()
        self._batch_router = BatchRouter(router)
        self._shard_lookup = self.plan.lookup_table()

        leaves_by_index = {leaf.index: leaf for leaf in tree.leaves}
        shard_sketches: List[Dict[int, CountMinSketch]] = [
            {} for _ in range(self.plan.num_shards)
        ]
        for partition, shard_index in self.plan.assignments.items():
            if partition == OUTLIER_PARTITION:
                sketch = make_outlier_sketch(config, tree.surplus_width)
            else:
                sketch = make_partition_sketch(config, leaves_by_index[partition])
            shard_sketches[shard_index][partition] = sketch
        self._shards: List[SketchShard] = [
            SketchShard(index, sketches) for index, sketches in enumerate(shard_sketches)
        ]

        self._elements_processed = 0
        self._outlier_elements = 0
        self._started = False
        self._stale = False
        self._sync_failed = False
        self._recovery = recovery
        self._supervisor = (
            ShardSupervisor(recovery, self.plan.num_shards)
            if recovery is not None
            else None
        )
        # Per-shard dirty generations for incremental checkpoints: bumped on
        # every mutation that can change a shard's counters.  The epoch tag
        # distinguishes generation counters of different engine instances —
        # a revived engine restarts at generation 0, so cross-instance
        # generation equality must never read as "section unchanged".
        self._shard_generations = [0] * self.plan.num_shards
        self._checkpoint_epoch = uuid.uuid4().hex
        self._init_query_plane()

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        sample: GraphStream,
        config: GSketchConfig,
        num_shards: int = 2,
        executor: Optional[ShardExecutor] = None,
        stream_size_hint: Optional[int] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> "ShardedGSketch":
        """Partition with a data sample and spread the leaves over shards.

        The offline phase is exactly :meth:`GSketch.build`; only the physical
        placement of the resulting sketches differs.
        """
        stats = GSketch._sample_statistics(sample, stream_size_hint)
        tree = build_partition_tree(stats, config, workload_weights=None)
        router = VertexRouter.from_tree(tree)
        return cls(
            config=config,
            tree=tree,
            router=router,
            stats=stats,
            num_shards=num_shards,
            executor=executor,
            recovery=recovery,
        )

    @classmethod
    def from_gsketch(
        cls,
        gsketch: GSketch,
        num_shards: int = 2,
        executor: Optional[ShardExecutor] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> "ShardedGSketch":
        """Re-shard an existing (possibly populated) single-process sketch.

        Counter state is copied, so the sharded engine picks up serving
        exactly where the single sketch left off.
        """
        sharded = cls(
            config=gsketch.config,
            tree=gsketch.tree,
            router=gsketch.router,
            stats=gsketch.stats,
            num_shards=num_shards,
            executor=executor,
            recovery=recovery,
        )
        for partition, sketch in enumerate(gsketch.partitions):
            shard = sharded._shards[sharded.plan.shard_of(partition)]
            shard.sketch_for(partition).load_state(sketch.state_dict())
        outlier_shard = sharded._shards[sharded.plan.shard_of(OUTLIER_PARTITION)]
        outlier_shard.sketch_for(OUTLIER_PARTITION).load_state(
            gsketch.outlier_sketch.state_dict()
        )
        sharded._elements_processed = gsketch.elements_processed
        sharded._outlier_elements = gsketch.outlier_elements
        return sharded

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        stream: GraphStream | Iterable[StreamEdge],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Ingest a whole stream in columnar blocks; returns elements ingested.

        Materialized :class:`~repro.graph.stream.GraphStream` inputs reuse the
        stream's cached columnar form; arbitrary iterables (including
        unbounded generators) are chunked lazily without materializing.
        """
        self._ensure_started()
        processed = 0
        for batch in iter_edge_batches(stream, batch_size):
            processed += self.ingest_batch(batch)
        return processed

    def ingest_batch(self, batch: EdgeBatch | Sequence[StreamEdge]) -> int:
        """Route one block to its shards and apply it through the executor.

        Executors exposing ``apply_async`` (the shared-memory backend) are
        dispatched without waiting for the batch to be applied: the next call
        routes batch N+1 while workers still apply batch N (pipelining).  Any
        read of engine state — queries, snapshots, :meth:`flush` — drains the
        pipeline first via :meth:`~ShardExecutor.sync`, so observable state is
        always consistent.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch.from_edges(list(batch))
        self._ensure_started()
        clock = stage_clock("ingest", INGEST_STAGE)
        routed = self._batch_router.route(batch)
        if not routed.groups:
            return 0
        work: Dict[int, List[PartitionGroup]] = {}
        for group in routed.groups:
            shard_index = int(self._shard_lookup[group.partition])
            work.setdefault(shard_index, []).append(group)
        clock.lap("route")
        if self._supervisor is not None:
            dropped, dropped_outliers = self._dispatch_supervised(work)
            counted = routed.num_elements - dropped
            counted_outliers = routed.outlier_count - dropped_outliers
        else:
            dispatch = getattr(self._executor, "apply_async", None)
            try:
                if dispatch is not None:
                    dispatch(self._shards, work)
                else:
                    self._executor.apply(self._shards, work)
            except ShardExecutionError:
                # A worker died mid-batch: some shards may hold this batch
                # while others never saw it.  Poison reads (they would
                # silently serve inconsistent counters); a checkpoint
                # restore recovers.
                self._sync_failed = True
                raise
            counted = routed.num_elements
            counted_outliers = routed.outlier_count
        clock.lap("dispatch")
        dead = self._supervisor.dead_shards if self._supervisor is not None else ()
        for shard_index in work:
            if shard_index not in dead:
                self._shard_generations[shard_index] += 1
        self._elements_processed += counted
        self._outlier_elements += counted_outliers
        self._stale = True
        self._bump_generation()
        INGEST_BATCHES.inc()
        INGEST_ELEMENTS.inc(counted)
        if self._supervisor is not None and self._supervisor.needs_flush(self._executor):
            # The journal bound forces a pipeline drain: once every retained
            # entry is settled the journal is cleared / pruned.
            self._synchronize()
        return counted

    def _dispatch_supervised(
        self, work: Dict[int, List[PartitionGroup]]
    ) -> "tuple[int, int]":
        """Dispatch under supervision: journal, recover on failure, degrade.

        Returns ``(dropped_elements, dropped_outlier_elements)`` — the part
        of the batch that never reached a shard because its shard is (or
        became) dead.  Everything else either applied directly or will apply
        through journal replay after a successful recovery, so the engine's
        element accounting stays truthful in both outcomes.
        """
        sup = self._supervisor
        executor = self._executor
        retention = getattr(executor, "journal_retention", "none")
        dropped = 0
        dropped_outliers = 0

        def drop(shard_index: int, groups: Sequence[PartitionGroup]) -> None:
            nonlocal dropped, dropped_outliers
            sup.record_dropped(shard_index, groups)
            for group in groups:
                dropped += len(group)
                if group.partition == OUTLIER_PARTITION:
                    dropped_outliers += len(group)

        live: Dict[int, Sequence[PartitionGroup]] = {}
        for shard_index, groups in work.items():
            if shard_index in sup.dead_shards:
                drop(shard_index, groups)
            else:
                live[shard_index] = groups
        if not live:
            return dropped, dropped_outliers
        seq = sup.journal.append(live) if retention != "none" else None
        try:
            for shard_index in sorted(live):
                groups = live[shard_index]
                try:
                    self._dispatch_one(shard_index, groups, seq)
                except ShardExecutionError:
                    if sup.recover(executor, self._shards, shard_index):
                        # Recovery replayed every journaled batch the shard
                        # had not committed — including this one — so the
                        # dispatch must not be repeated.
                        continue
                    if not sup.policy.degraded_serving:
                        self._sync_failed = True
                        raise
                    sup.mark_dead(executor, shard_index)
                    for group in groups:
                        dropped += len(group)
                        if group.partition == OUTLIER_PARTITION:
                            dropped_outliers += len(group)
        finally:
            sup.after_dispatch(executor)
        return dropped, dropped_outliers

    def _dispatch_one(
        self, shard_index: int, groups: Sequence[PartitionGroup], seq: Optional[int]
    ) -> None:
        """Dispatch one shard's groups, crediting scalar totals exactly once.

        Pipelined executors are passed ``credit=False`` and credited here,
        with the supervisor told which sequence the credit covers — journal
        replay after a crash then knows not to credit the same batch twice.
        """
        dispatch = getattr(self._executor, "apply_async", None)
        if dispatch is not None:
            dispatch(self._shards, {shard_index: groups}, seq=seq, credit=False)
            self._shards[shard_index].credit_groups(groups)
            self._supervisor.note_credited(shard_index, seq)
        else:
            self._executor.apply(self._shards, {shard_index: groups})

    def update(self, source: Hashable, target: Hashable, frequency: float = 1.0) -> None:
        """Single-element convenience path (routes a one-element batch)."""
        self.ingest_batch([StreamEdge(source, target, 0.0, frequency)])

    def start(self) -> None:
        """Spawn executor workers eagerly (otherwise lazy on first ingest).

        Useful when worker startup cost (process forks, shared-memory
        arena allocation) should not be attributed to the first batch —
        e.g. in throughput measurements or latency-sensitive serving.
        """
        self._ensure_started()

    def _ensure_started(self) -> None:
        if not self._started:
            if (
                self._recovery is not None
                and self._recovery.ack_deadline_seconds is not None
                and hasattr(self._executor, "ack_deadline")
            ):
                setattr(self._executor, "ack_deadline", self._recovery.ack_deadline_seconds)
            self._executor.start(self._shards)
            self._started = True

    def _synchronize(self) -> None:
        """Pull authoritative state back from out-of-process workers."""
        if self._sync_failed:
            raise RuntimeError(
                "engine state is incomplete: worker synchronization failed "
                "during close(); updates in flight at the failure are lost. "
                "Restore a checkpoint (load_shard_states / from_state) to "
                "resume serving from known-good state."
            )
        if not self._stale:
            return
        with span("ingest", "flush", INGEST_STAGE["flush"]):
            if self._supervisor is None:
                self._executor.sync(self._shards)
            else:
                self._sync_supervised()
        self._stale = False

    def _sync_supervised(self) -> None:
        """Drain / pull worker state, recovering (or degrading) on failure.

        Each retry only has the previously-failed shard left unsettled: the
        executors' ``sync`` keeps servicing healthy shards even when one
        fails, so this loop terminates after at most one incident per shard.
        """
        sup = self._supervisor
        while True:
            try:
                self._executor.sync(self._shards)
                break
            except ShardExecutionError as error:
                failed = error.shard_index
                if sup.recover(self._executor, self._shards, failed):
                    continue
                if sup.policy.degraded_serving:
                    sup.mark_dead(self._executor, failed)
                    continue
                self._sync_failed = True
                raise
        sup.on_sync(self._executor)

    def flush(self) -> None:
        """Drain in-flight batches; coordinator state is authoritative after.

        For the process executor this pulls worker state back; for the
        shared-memory executor it only waits for outstanding acknowledgements
        (counters are shared views).  Ingestion throughput measurements must
        include this, or pipelined batches still in flight go uncounted.
        """
        self._synchronize()

    def _reset_executor(self) -> None:
        """Make the coordinator-resident shard state authoritative again.

        Called after coordinator-side mutations (merge, checkpoint restore):
        out-of-process workers still hold the pre-mutation state, so they are
        shut down and respawned lazily from the current shards on the next
        ingest.  In-process executors restart cheaply (or not at all).
        """
        if self._started:
            self._executor.close()
            self._started = False
        self._stale = False
        self._sync_failed = False  # checkpoint restore replaces any lost state
        if self._supervisor is not None:
            self._supervisor.reset()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_edge(self, edge: EdgeKey) -> float:
        """Estimate the aggregate frequency of a directed edge."""
        return self.query_edges([edge])[0]

    def query_edges(self, edges: Sequence[EdgeKey]) -> List[float]:
        """Estimate many edges at once, through the compiled query plan.

        The coordinator answers from its own attached view of the shard
        state — no worker round-trip: the pipeline is drained once
        (:meth:`~ShardExecutor.sync` via the plan's pre-query hook) and the
        arena gather serves every partition in one pass.  Element-wise
        bit-identical to :meth:`query_edges_direct`.
        """
        if len(edges) == 0:
            return []
        return self._planned_estimates(edges).tolist()

    def query_edges_direct(self, edges: Sequence[EdgeKey]) -> List[float]:
        """The pre-plan path: route, then ``estimate_batch`` per shard group
        (parity oracle and benchmark baseline)."""
        if len(edges) == 0:
            return []
        self._synchronize()
        routed = self._batch_router.route_edges(edges)
        estimates = np.empty(len(edges), dtype=np.float64)
        for group in routed.groups:
            shard = self._shards[int(self._shard_lookup[group.partition])]
            estimates[group.positions] = shard.estimate_group(group)
        return estimates.tolist()

    def query_subgraph(self, query: SubgraphQuery) -> float:
        """Estimate an aggregate subgraph query by per-edge decomposition.

        Constituent edges ride the vectorized shard query path
        (:meth:`query_edges`), so the answer is bit-identical to the same
        query served by a single :class:`~repro.core.gsketch.GSketch`.
        """
        return query.combine(self.query_edges(query.edges))

    def confidence(self, edge: EdgeKey) -> ConfidenceInterval:
        """Per-partition Equation-1 confidence interval for an edge estimate."""
        return self.confidence_batch([edge])[0]

    def confidence_batch(self, edges: Sequence[EdgeKey]) -> List[ConfidenceInterval]:
        """Equation-1 confidence intervals for many edges at once.

        Rides the compiled plan (one pass for estimates, constants and
        provenance); :meth:`confidence_batch_direct` keeps the pre-plan
        routed path, and the two are bit-identical by construction.
        """
        return self.confidence_batch_with_partitions(edges)[0]

    def confidence_batch_with_partitions(
        self, edges: Sequence[EdgeKey]
    ) -> "tuple[List[ConfidenceInterval], List[int]]":
        """Intervals plus the partition id that answered each edge.

        Under degraded serving, queries answered by a dropped shard get
        widened intervals: the shard's lost frequency mass becomes upper
        slack (its counters may now *under*estimate by that much) and the
        failure probability is union-bounded with a second ``e^-d`` term
        (:func:`~repro.core.errors.degraded_union_bound`).
        """
        if len(edges) == 0:
            return [], []
        estimates, bounds, failures, partitions = self._planned_confidence(edges)
        slacks = None
        sup = self._supervisor
        if sup is not None and sup.dead_shards:
            shards_of = self._shard_lookup[partitions]
            slacks = np.zeros_like(estimates)
            failures = failures.copy()
            extra = math.exp(-self.config.depth)
            for dead in sup.dead_shards:
                mask = shards_of == dead
                if np.any(mask):
                    slacks[mask] = sup.lost_frequency(dead)
                    failures[mask] = degraded_union_bound(failures[mask], extra)
        intervals = intervals_from_arrays(estimates, bounds, failures, slacks)
        return intervals, partitions.tolist()

    def confidence_batch_direct(
        self, edges: Sequence[EdgeKey]
    ) -> "tuple[List[ConfidenceInterval], List[int]]":
        """The pre-plan routed confidence path (parity oracle).

        Shares :func:`~repro.core.gsketch.routed_confidence_batch` with
        :meth:`GSketch.confidence_batch_direct` — only the partition → sketch
        resolution differs (shard-resident sketches).
        """
        self._synchronize()
        return routed_confidence_batch(
            self._batch_router, edges, self._sketch_for_partition
        )

    def _sketch_for_partition(self, partition: int) -> CountMinSketch:
        """Resolve a partition's physical sketch from its owning shard."""
        return self._shards[int(self._shard_lookup[partition])].sketch_for(partition)

    def _plan_layout(self):
        """Arena layout: every localized sketch in partition order, outlier
        last, resolved from the owning shards.

        The plan **copies** the tables (never attaches): the coordinator's
        sketch tables may already be zero-copy views into a shared-memory
        ingest arena, and out-of-process syncs can swap the sketch objects
        wholesale — so the read arena re-copies on each generation refresh
        instead.
        """
        sketches = [
            self._sketch_for_partition(partition)
            for partition in range(self.plan.num_partitions)
        ]
        sketches.append(self._sketch_for_partition(OUTLIER_PARTITION))
        return sketches, self.router, False

    def _before_plan_query(self) -> None:
        """Drain in-flight batches so the arena refresh sees final counters."""
        self._synchronize()

    def is_outlier_query(self, edge: EdgeKey) -> bool:
        """Whether the edge query would be answered by the outlier sketch."""
        return self.router.is_outlier(edge[0])

    # ------------------------------------------------------------------ #
    # Snapshot protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Complete engine state: partitioning, shard plan and shard counters.

        Worker state is synchronized back to the coordinator first, so the
        snapshot is authoritative for any executor.
        """
        self._synchronize()
        return {
            "config": self.config,
            "tree": self.tree,
            "router": self.router,
            "stats": self.stats,
            "plan": self.plan,
            "shards": [shard.state_dict() for shard in self._shards],
            "elements_processed": self._elements_processed,
            "outlier_elements": self._outlier_elements,
        }

    @classmethod
    def from_state(
        cls, state: dict, executor: Optional[ShardExecutor] = None
    ) -> "ShardedGSketch":
        """Revive an engine from a :meth:`state_dict` snapshot.

        The executor is not part of the snapshot (it is a process-local
        resource); pass one explicitly or get the sequential default.
        """
        engine = cls(
            config=state["config"],
            tree=state["tree"],
            router=state["router"],
            stats=state["stats"],
            executor=executor,
            plan=state["plan"],
        )
        shard_states = state["shards"]
        if len(shard_states) != len(engine._shards):
            raise ValueError(
                f"snapshot has {len(shard_states)} shard states, plan expects "
                f"{len(engine._shards)}"
            )
        for shard, shard_state in zip(engine._shards, shard_states):
            shard.load_state_from(SketchShard.from_state(shard_state))
        engine._elements_processed = int(state["elements_processed"])
        engine._outlier_elements = int(state["outlier_elements"])
        return engine

    # ------------------------------------------------------------------ #
    # Checkpointing / re-aggregation
    # ------------------------------------------------------------------ #
    def shard_states(self) -> List[bytes]:
        """Serialized checkpoints of every shard, in shard order."""
        self._synchronize()
        return [shard.serialize() for shard in self._shards]

    def load_shard_states(self, states: Sequence[bytes]) -> None:
        """Restore shard checkpoints produced by :meth:`shard_states`.

        Element counters are recovered from the revived sketches (every
        ingested element is exactly one update in exactly one sketch), and
        any out-of-process worker state is discarded in favour of the
        checkpoint.
        """
        if len(states) != len(self._shards):
            raise ValueError(
                f"expected {len(self._shards)} shard states, got {len(states)}"
            )
        self._reset_executor()
        for shard, payload in zip(self._shards, states):
            shard.load_state_from(SketchShard.deserialize(payload))
        self._elements_processed = 0
        self._outlier_elements = 0
        for shard in self._shards:
            for partition, sketch in shard.sketches():
                self._elements_processed += sketch.update_count
                if partition == OUTLIER_PARTITION:
                    self._outlier_elements = sketch.update_count
        self._mark_all_shards_dirty()
        self._bump_generation()

    def merge(self, other: "ShardedGSketch") -> None:
        """Fold another engine's counters into this one, shard by shard.

        Both engines must descend from the same partitioning (same tree,
        plan and seeds).  Afterwards this engine equals one that ingested
        both input streams concatenated.
        """
        if self.plan.assignments != other.plan.assignments:
            raise ValueError("cannot merge engines built from different shard plans")
        self._synchronize()
        other._synchronize()
        for mine, theirs in zip(self._shards, other._shards):
            mine.merge(theirs)
        self._elements_processed += other._elements_processed
        self._outlier_elements += other._outlier_elements
        self._mark_all_shards_dirty()
        self._bump_generation()
        # Workers (if any) still hold the pre-merge state; respawn them from
        # the merged coordinator state on next use.
        self._reset_executor()

    def to_gsketch(self) -> GSketch:
        """Re-aggregate the shards into a plain single-process ``GSketch``.

        The result is a deep copy: serving it does not alias shard state.
        """
        self._synchronize()
        gsketch = GSketch(
            config=self.config, tree=self.tree, router=self.router, stats=self.stats
        )
        for shard in self._shards:
            for partition, sketch in shard.sketches():
                state = sketch.state_dict()
                if partition == OUTLIER_PARTITION:
                    gsketch.outlier_sketch.load_state(state)
                else:
                    gsketch.partitions[partition].load_state(state)
        gsketch._elements_processed = self._elements_processed
        gsketch._outlier_elements = self._outlier_elements
        return gsketch

    # ------------------------------------------------------------------ #
    # Incremental checkpoint sections
    # ------------------------------------------------------------------ #
    def _mark_all_shards_dirty(self) -> None:
        self._shard_generations = [
            generation + 1 for generation in self._shard_generations
        ]

    @property
    def checkpoint_epoch(self) -> str:
        """Instance tag scoping the generation counters in checkpoint manifests."""
        return self._checkpoint_epoch

    def checkpoint_generations(self) -> Dict[str, int]:
        """Current dirty generation of every checkpoint section.

        Sections: ``state`` (partitioning, plan, scalar counters — cheap,
        rewritten whenever anything changed) and one ``shard-N`` per shard
        (the counter tables — rewritten only when that shard ingested,
        merged or restored since the manifest's generation).  Synchronizes
        first so the reported generations describe final counters.
        """
        self._synchronize()
        sections = {"state": int(self._plan_generation)}
        for shard_index, generation in enumerate(self._shard_generations):
            sections[f"shard-{shard_index}"] = int(generation)
        return sections

    def checkpoint_section(self, name: str) -> bytes:
        """Serialize one checkpoint section named by :meth:`checkpoint_generations`."""
        self._synchronize()
        if name == "state":
            meta = {
                "config": self.config,
                "tree": self.tree,
                "router": self.router,
                "stats": self.stats,
                "plan": self.plan,
                "elements_processed": self._elements_processed,
                "outlier_elements": self._outlier_elements,
            }
            return pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        if name.startswith("shard-"):
            return self._shards[int(name[len("shard-"):])].serialize()
        raise KeyError(f"unknown checkpoint section {name!r}")

    @classmethod
    def from_checkpoint_sections(
        cls,
        sections: Mapping[str, bytes],
        executor: Optional[ShardExecutor] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> "ShardedGSketch":
        """Revive an engine from verified checkpoint section payloads."""
        meta = pickle.loads(sections["state"])
        engine = cls(
            config=meta["config"],
            tree=meta["tree"],
            router=meta["router"],
            stats=meta["stats"],
            executor=executor,
            plan=meta["plan"],
            recovery=recovery,
        )
        for shard in engine._shards:
            payload = sections.get(f"shard-{shard.index}")
            if payload is None:
                raise ValueError(f"checkpoint is missing section shard-{shard.index}")
            shard.load_state_from(SketchShard.deserialize(payload))
        engine._elements_processed = int(meta["elements_processed"])
        engine._outlier_elements = int(meta["outlier_elements"])
        return engine

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Synchronize worker state and release executor resources.

        If a worker died, the synchronization step raises
        :class:`~repro.distributed.executor.ShardExecutionError` — but the
        executor is still torn down (processes reaped, shared memory
        unlinked, sketches detached), so no resources leak, and a repeated
        :meth:`close` is a clean no-op.  After such a failure the engine is
        **poisoned**: reads that would need the lost worker state raise
        instead of silently serving partial counters; restore a checkpoint
        (:meth:`load_shard_states` / :meth:`from_state`) to recover.
        """
        if not self._started:
            return
        try:
            # An already-poisoned engine skips the sync: the failure was
            # surfaced when it happened, and close() should still release
            # resources quietly (reads keep raising until a restore).
            if not self._sync_failed:
                self._synchronize()
        except BaseException:
            if self._stale:
                self._sync_failed = True
            raise
        finally:
            self._executor.close()
            self._started = False

    def __enter__(self) -> "ShardedGSketch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> Sequence[SketchShard]:
        """The shard workers, in shard order."""
        return tuple(self._shards)

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def num_partitions(self) -> int:
        """Number of localized (non-outlier) partitions across all shards."""
        return self.plan.num_partitions

    @property
    def degraded(self) -> bool:
        """Whether any shard was dropped (degraded serving is active)."""
        return self._supervisor is not None and bool(self._supervisor.dead_shards)

    @property
    def dead_shards(self) -> "tuple[int, ...]":
        """Shards abandoned after retry exhaustion, in index order."""
        if self._supervisor is None:
            return ()
        return tuple(sorted(self._supervisor.dead_shards))

    @property
    def recovery_policy(self) -> Optional[RecoveryPolicy]:
        return self._recovery

    @property
    def supervisor(self) -> Optional[ShardSupervisor]:
        """The recovery driver (``None`` without a recovery policy)."""
        return self._supervisor

    @property
    def elements_processed(self) -> int:
        return self._elements_processed

    @property
    def outlier_elements(self) -> int:
        return self._outlier_elements

    @property
    def total_frequency(self) -> float:
        """Total ingested frequency mass across all shards."""
        self._synchronize()
        return float(sum(shard.total_count for shard in self._shards))

    @property
    def memory_cells(self) -> int:
        """Allocated counter cells across all shards."""
        return sum(shard.memory_cells for shard in self._shards)

    def telemetry_snapshot(self) -> dict:
        """Health telemetry: per-partition saturation across the shards.

        Drains the ingest pipeline first so the reported counters are final;
        like the other backends', this is a scrape-time (not per-batch)
        surface.
        """
        self._synchronize()
        elements = self._elements_processed
        tables = []
        for partition in range(self.plan.num_partitions):
            shard_index = int(self._shard_lookup[partition])
            tables.append(
                {
                    "partition": partition,
                    "shard": shard_index,
                    **sketch_health(self._sketch_for_partition(partition)),
                }
            )
        tables.append(
            {
                "partition": OUTLIER_PARTITION,
                "shard": int(self._shard_lookup[OUTLIER_PARTITION]),
                **sketch_health(self._sketch_for_partition(OUTLIER_PARTITION)),
            }
        )
        snapshot = {
            "backend": "sharded",
            "elements_processed": elements,
            "outlier_elements": self._outlier_elements,
            "outlier_share": self._outlier_elements / elements if elements else 0.0,
            "num_partitions": self.num_partitions,
            "num_shards": self.num_shards,
            "memory_cells": self.memory_cells,
            "total_frequency": float(self.total_frequency),
            "tables": tables,
            **self._plan_telemetry(),
        }
        if self._supervisor is not None:
            snapshot["recovery"] = self._supervisor.telemetry()
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedGSketch(shards={self.num_shards}, "
            f"partitions={self.num_partitions}, N={self._elements_processed})"
        )

"""A shard: the localized sketches owned by one worker.

A :class:`SketchShard` holds the physical Count-Min sketches of the partitions
a :class:`~repro.distributed.plan.ShardPlan` assigned to it — possibly
including the outlier sketch — and applies pre-routed
:class:`~repro.distributed.batch_router.PartitionGroup` blocks to them.

Shards are the unit of distribution, so they are fully serializable: a shard
can be pickled to another process (the process executor does exactly this),
checkpointed to disk, and **merged** — two shards populated from disjoint
sub-streams combine, counter by counter, into the shard that would have
resulted from ingesting the concatenated stream.  Merging is exact because
Count-Min tables are linear in the input.
"""

from __future__ import annotations

import pickle
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.core.batch_router import PartitionGroup
from repro.sketches.countmin import CountMinSketch


class SketchShard:
    """Partition-local sketch state plus the batch-apply hot path.

    Args:
        index: this shard's position in the plan.
        sketches: partition index → physical sketch.  The mapping may include
            :data:`~repro.core.router.OUTLIER_PARTITION`.
    """

    def __init__(self, index: int, sketches: Mapping[int, CountMinSketch]) -> None:
        if index < 0:
            raise ValueError(f"shard index must be >= 0, got {index}")
        self.index = index
        self._sketches: Dict[int, CountMinSketch] = dict(sketches)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def partition_ids(self) -> Tuple[int, ...]:
        """The partitions this shard owns, in sorted order."""
        return tuple(sorted(self._sketches))

    def owns(self, partition: int) -> bool:
        return partition in self._sketches

    def sketch_for(self, partition: int) -> CountMinSketch:
        """The physical sketch of one owned partition."""
        try:
            return self._sketches[partition]
        except KeyError:
            raise KeyError(
                f"shard {self.index} does not own partition {partition}; "
                f"owned: {self.partition_ids}"
            ) from None

    # ------------------------------------------------------------------ #
    # Ingestion / queries
    # ------------------------------------------------------------------ #
    def apply(self, groups: Sequence[PartitionGroup]) -> int:
        """Apply pre-routed groups to the owned sketches; returns elements applied."""
        applied = 0
        for group in groups:
            self.sketch_for(group.partition).update_batch(group.keys, group.counts)
            applied += len(group)
        return applied

    def estimate_group(self, group: PartitionGroup) -> np.ndarray:
        """Vectorized point estimates for one pre-routed group of edge keys."""
        return self.sketch_for(group.partition).estimate_batch(group.keys)

    def credit_groups(self, groups: Sequence[PartitionGroup]) -> int:
        """Account groups whose counter updates are applied out-of-process.

        Mirrors :meth:`apply` for the scalar side of the update only (totals
        and update counts, via
        :meth:`~repro.sketches.countmin.CountMinSketch.credit_batch`); the
        shared-memory executor calls this on dispatch while the worker applies
        the counters through the shared arena.  Returns elements credited.
        """
        credited = 0
        for group in groups:
            self.sketch_for(group.partition).credit_batch(group.counts)
            credited += len(group)
        return credited

    # ------------------------------------------------------------------ #
    # State: checkpoint, revive, merge
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Complete shard state as plain dictionaries and arrays."""
        return {
            "index": self.index,
            "sketches": {
                partition: sketch.state_dict()
                for partition, sketch in self._sketches.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "SketchShard":
        """Revive a shard from a :meth:`state_dict` snapshot."""
        sketches = {
            int(partition): CountMinSketch.from_state(sketch_state)
            for partition, sketch_state in state["sketches"].items()
        }
        return cls(index=int(state["index"]), sketches=sketches)

    def serialize(self) -> bytes:
        """Checkpoint the shard to bytes (numpy arrays pickled in-band)."""
        return pickle.dumps(self.state_dict(), protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def deserialize(cls, payload: bytes) -> "SketchShard":
        """Revive a shard from :meth:`serialize` output."""
        return cls.from_state(pickle.loads(payload))

    def load_state_from(self, other: "SketchShard") -> None:
        """Adopt another shard's sketch state in place (executor sync-back)."""
        if other.index != self.index or other.partition_ids != self.partition_ids:
            raise ValueError(
                f"cannot adopt state of shard {other.index} "
                f"(partitions {other.partition_ids}) into shard {self.index} "
                f"(partitions {self.partition_ids})"
            )
        self._sketches = dict(other._sketches)

    def merge(self, other: "SketchShard") -> None:
        """Add ``other``'s counters into this shard, partition by partition.

        Both shards must cover the same partitions with identically-seeded
        sketches (i.e. descend from the same plan).  After merging, this shard
        equals the shard that would have ingested both sub-streams.
        """
        if self.partition_ids != other.partition_ids:
            raise ValueError(
                f"cannot merge shards covering different partitions: "
                f"{self.partition_ids} vs {other.partition_ids}"
            )
        for partition, sketch in self._sketches.items():
            sketch.merge(other._sketches[partition])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_count(self) -> float:
        """Total frequency mass absorbed by this shard's sketches."""
        return float(sum(s.total_count for s in self._sketches.values()))

    @property
    def memory_cells(self) -> int:
        """Allocated counter cells across the shard's sketches."""
        return sum(s.memory_cells for s in self._sketches.values())

    def sketches(self) -> Iterable[Tuple[int, CountMinSketch]]:
        """Iterate ``(partition, sketch)`` pairs (coordinator re-aggregation)."""
        return self._sketches.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchShard(index={self.index}, partitions={len(self._sketches)}, "
            f"N={self.total_count:.0f})"
        )

"""Sharded ingestion & query engine over localized gSketch partitions.

gSketch routes every stream element to exactly one localized sketch by the
edge's source vertex, so the structure is embarrassingly shardable: the paper
flags distributed deployment of the partitioned sketches as the natural
scale-out path, and this subpackage implements it.

Layers (coordinator → shards → localized sketches):

* :class:`~repro.distributed.plan.ShardPlan` — frequency-balanced LPT bin
  packing of partition-tree leaves onto N shards;
* :class:`~repro.distributed.batch_router.BatchRouter` — vectorized
  hash + route + group of columnar edge blocks;
* :class:`~repro.distributed.shard.SketchShard` — partition-local sketch
  state: batch apply, serialize/deserialize checkpoints, exact merge;
* :mod:`~repro.distributed.executor` — sequential, thread-pool and
  per-shard-process execution backends behind one protocol;
* :mod:`~repro.distributed.shared_memory` — per-shard workers over
  shared-memory counter arenas with fused apply kernels and pipelined
  (double-buffered) dispatch;
* :class:`~repro.distributed.coordinator.ShardedGSketch` — the engine:
  batch ingestion, vectorized queries, checkpointing and re-aggregation back
  into a plain :class:`~repro.core.gsketch.GSketch`.

Every configuration produces counters bit-identical to a single
:class:`~repro.core.gsketch.GSketch` over the same stream.
"""

from repro.distributed.batch_router import BatchRouter, PartitionGroup, RoutedBatch
from repro.distributed.coordinator import ShardedGSketch
from repro.distributed.executor import (
    InstrumentedExecutor,
    ProcessPoolExecutor,
    SequentialExecutor,
    ShardExecutionError,
    ShardExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.distributed.plan import ShardPlan
from repro.distributed.recovery import BatchJournal, RecoveryPolicy, ShardSupervisor
from repro.distributed.shard import SketchShard
from repro.distributed.shared_memory import SharedMemoryExecutor

__all__ = [
    "BatchJournal",
    "BatchRouter",
    "InstrumentedExecutor",
    "PartitionGroup",
    "ProcessPoolExecutor",
    "RecoveryPolicy",
    "RoutedBatch",
    "SequentialExecutor",
    "ShardExecutionError",
    "ShardExecutor",
    "ShardPlan",
    "ShardSupervisor",
    "ShardedGSketch",
    "SharedMemoryExecutor",
    "SketchShard",
    "ThreadPoolExecutor",
    "make_executor",
]

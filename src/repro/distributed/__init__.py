"""Sharded ingestion & query engine over localized gSketch partitions.

gSketch routes every stream element to exactly one localized sketch by the
edge's source vertex, so the structure is embarrassingly shardable: the paper
flags distributed deployment of the partitioned sketches as the natural
scale-out path, and this subpackage implements it.

Layers (coordinator → shards → localized sketches):

* :class:`~repro.distributed.plan.ShardPlan` — frequency-balanced LPT bin
  packing of partition-tree leaves onto N shards;
* :class:`~repro.distributed.batch_router.BatchRouter` — vectorized
  hash + route + group of columnar edge blocks;
* :class:`~repro.distributed.shard.SketchShard` — partition-local sketch
  state: batch apply, serialize/deserialize checkpoints, exact merge;
* :mod:`~repro.distributed.executor` — sequential, thread-pool and
  per-shard-process execution backends behind one protocol;
* :class:`~repro.distributed.coordinator.ShardedGSketch` — the engine:
  batch ingestion, vectorized queries, checkpointing and re-aggregation back
  into a plain :class:`~repro.core.gsketch.GSketch`.

Every configuration produces counters bit-identical to a single
:class:`~repro.core.gsketch.GSketch` over the same stream.
"""

from repro.distributed.batch_router import BatchRouter, PartitionGroup, RoutedBatch
from repro.distributed.coordinator import ShardedGSketch
from repro.distributed.executor import (
    InstrumentedExecutor,
    ProcessPoolExecutor,
    SequentialExecutor,
    ShardExecutor,
    ThreadPoolExecutor,
)
from repro.distributed.plan import ShardPlan
from repro.distributed.shard import SketchShard

__all__ = [
    "BatchRouter",
    "InstrumentedExecutor",
    "PartitionGroup",
    "ProcessPoolExecutor",
    "RoutedBatch",
    "SequentialExecutor",
    "ShardExecutor",
    "ShardPlan",
    "ShardedGSketch",
    "SketchShard",
    "ThreadPoolExecutor",
]

"""Re-export of the vectorized batch router.

The implementation lives in :mod:`repro.core.batch_router` — it depends only
on the core router and the columnar stream model, and the single-process
:class:`~repro.core.gsketch.GSketch` uses it too.  It is re-exported here
because batch routing is the scatter stage of the distributed pipeline
(coordinator → shards → localized sketches).
"""

from repro.core.batch_router import BatchRouter, PartitionGroup, RoutedBatch

__all__ = ["BatchRouter", "PartitionGroup", "RoutedBatch"]

"""Shared-memory shard execution: zero-copy counters, fused kernels, pipelining.

:class:`SharedMemoryExecutor` is the high-throughput sibling of
:class:`~repro.distributed.executor.ProcessPoolExecutor`.  Both run one
persistent worker process per shard; the difference is where the counter
state lives and what travels over the pipes:

* **Counters live in a shared-memory arena.**  Each shard's Count-Min tables
  are laid out side by side in one ``multiprocessing.shared_memory`` block of
  shape ``(depth, total_width)`` — partition ``p`` owns the column slice
  ``[offset_p, offset_p + width_p)``.  The coordinator-resident sketches are
  re-bound to numpy views of those slices
  (:meth:`~repro.sketches.countmin.CountMinSketch.attach_table`), so worker
  writes are visible to coordinator queries without any serialize → pull
  cycle: :meth:`SharedMemoryExecutor.sync` merely drains in-flight batches
  (a *flush*), it never ships sketch state.

* **Apply ships only routed columns — through shared memory as well.**  A
  dispatched batch is three flat arrays — slot ids, canonical uint64 keys,
  frequency counts — written from the shard's
  :class:`~repro.core.batch_router.PartitionGroup` list in group order
  (which preserves arrival order within every partition, the invariant
  behind bit-exact parity) into a per-shard shared-memory **staging ring**
  with one segment per in-flight batch.  The pipe then carries only a tiny
  ``(segment, count)`` descriptor, so dispatch never blocks on socket
  buffers and pays no pickling of bulk data.  Segment reuse is safe by
  construction: dispatch ``d`` waits until fewer than ``max_pending``
  batches are outstanding, which guarantees segment ``d mod max_pending``
  (written ``max_pending`` dispatches ago) has been acknowledged.
  Oversized batches fall back to inline pipe transport transparently.

* **The arena enables a fused apply kernel.**  Because every partition table
  is a column range of one array, the worker hashes and scatters a whole
  batch *across all of a shard's partitions* in one vectorized pass per
  sketch row: per-element hash coefficients are gathered from per-slot
  tables, :func:`~repro.sketches.hashing.gathered_hash_columns` computes all
  columns at once, and a single ``np.add.at`` per row applies the updates.
  The per-partition path this replaces pays ~``groups × depth`` small numpy
  kernel calls per batch; the fused kernel pays ``depth``.  Per-cell float
  accumulation order is unchanged (``np.add.at`` applies updates in index
  order, and elements stay partition-grouped in arrival order), so counters
  are bit-identical to :class:`~repro.distributed.executor.SequentialExecutor`
  for arbitrary float frequencies.

* **Dispatch is pipelined.**  ``apply_async`` returns after the send, with at
  most ``max_pending`` batches in flight per shard (double-buffering by
  default).  The coordinator therefore routes batch N+1 while workers apply
  batch N — the two serial stages that dominate the in-process breakdown
  overlap.  Scalar bookkeeping (``total_count`` / ``update_count``) is
  credited on the coordinator at dispatch
  (:meth:`~repro.distributed.shard.SketchShard.credit_groups`), preserving
  the exact accumulation order of the in-process path.

A dead worker is detected on the next send, ack wait, or sync and surfaces
as :class:`~repro.distributed.executor.ShardExecutionError` naming the shard;
:meth:`SharedMemoryExecutor.close` stays safe afterwards (idempotent,
crash-tolerant) and always detaches coordinator sketches back onto private
arrays before unlinking the shared blocks.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro import faults as _faults
from repro.core.batch_router import PartitionGroup
from repro.distributed.executor import (
    DEFAULT_TEARDOWN_DEADLINE,
    ShardExecutionError,
    await_worker_reply,
    reap_workers,
    send_to_worker,
)
from repro.distributed.shard import SketchShard
from repro.observability import metrics as _obs
from repro.observability.tracing import get_recorder
from repro.sketches.countmin import CountMinSketch
from repro.sketches.hashing import gathered_hash_columns

# Pipelined dispatch cannot be wrapped in coordinator-side stage spans (the
# apply happens later, in a worker), so the executor reports its own running
# totals: dispatch wall, backpressure stalls, and drained batches.
_SHM_DISPATCH_SECONDS = _obs.REGISTRY.counter(
    "repro_shared_dispatch_seconds_total",
    "Shared-memory executor: wall seconds spent dispatching batches",
)
_SHM_STALL_SECONDS = _obs.REGISTRY.counter(
    "repro_shared_stall_seconds_total",
    "Shared-memory executor: wall seconds stalled on backpressure or drains",
)
_SHM_BATCHES = _obs.REGISTRY.counter(
    "repro_shared_batches_total", "Shared-memory executor: batches dispatched"
)

#: Default number of batches allowed in flight per shard (double buffering).
DEFAULT_MAX_PENDING = 2

#: Minimum per-segment staging capacity, in elements.  Sized to hold the
#: default ingest batch whole even when one shard receives every element.
MIN_STAGING_CAPACITY = 65_536


def release_shm(shm: shared_memory.SharedMemory) -> None:
    """Unmap and unlink one shared block, tolerating live views and races.

    The single teardown used by every owner of a block (arena close,
    staging-ring close, reader-pool plan arenas, start-failure rollback):
    a ``BufferError`` means a numpy view still references the mapping (the
    unlink below still reclaims the segment once the view dies), and
    ``FileNotFoundError`` means another path already unlinked it.
    """
    try:
        shm.close()
    except BufferError:  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - defensive
        pass


#: Backwards-compatible internal alias.
_release_shm = release_shm


class _StagingRing:
    """Coordinator-side view of one shard's column staging ring.

    The block holds ``segments`` independent segments of ``capacity``
    elements; each segment stores three parallel column arrays (int32 slot
    ids, uint64 keys, float64 counts) back to back.  The worker maps the
    same block read-only (by convention) via :class:`StagingSpec`-equivalent
    geometry shipped in the ``("staging", ...)`` message.
    """

    BYTES_PER_ELEMENT = 4 + 8 + 8

    def __init__(self, segments: int, capacity: int) -> None:
        self.segments = segments
        self.capacity = capacity
        self.shm = shared_memory.SharedMemory(
            create=True, size=segments * capacity * self.BYTES_PER_ELEMENT
        )
        self.slots, self.keys, self.counts = staging_views(
            self.shm.buf, segments, capacity
        )

    def close(self) -> None:
        self.slots = self.keys = self.counts = None  # type: ignore[assignment]
        _release_shm(self.shm)


def staging_views(buf, segments: int, capacity: int):
    """The three staged column arrays, shaped ``(segments, capacity)``.

    Layout: all slot columns first, then all key columns, then all count
    columns — three contiguous typed regions, so every view is aligned for
    its dtype.  Shared by the coordinator (writer) and worker (reader).
    """
    slots_bytes = segments * capacity * 4
    keys_bytes = segments * capacity * 8
    slots = np.ndarray((segments, capacity), dtype=np.int32, buffer=buf)
    keys = np.ndarray(
        (segments, capacity), dtype=np.uint64, buffer=buf, offset=slots_bytes
    )
    counts = np.ndarray(
        (segments, capacity),
        dtype=np.float64,
        buffer=buf,
        offset=slots_bytes + keys_bytes,
    )
    return slots, keys, counts


@dataclass(frozen=True)
class ArenaSpec:
    """Worker-side description of one shard's shared counter arena.

    Attributes:
        shm_name: name of the shared-memory block holding the arena.
        shard_index: the shard this arena belongs to (fault-site scoping).
        depth: sketch depth (rows); identical for every sketch in a shard.
        total_width: total columns across the shard's sketches.
        offsets: per-slot first column in the arena, ``int64 (nslots,)``.
        widths: per-slot table width, ``uint64 (nslots,)``.
        hash_a: per-row, per-slot hash coefficients ``a``, ``uint64 (depth, nslots)``.
        hash_b: per-row, per-slot hash coefficients ``b``, ``uint64 (depth, nslots)``.
        conservative: whether the shard's sketches use conservative update
            (falls back to the sequential per-element kernel).
        seq_slot_offset: byte offset of the 8-byte applied-sequence slot at
            the end of the arena block.  The worker commits the dispatch
            sequence number there *after* applying a batch, so a restarted
            worker's supervisor can read exactly which journaled batches
            reached the shared counters (crash-consistent replay watermark).
    """

    shm_name: str
    shard_index: int
    depth: int
    total_width: int
    offsets: np.ndarray
    widths: np.ndarray
    hash_a: np.ndarray
    hash_b: np.ndarray
    conservative: bool
    seq_slot_offset: int


def _apply_fused(
    arena: np.ndarray,
    spec: ArenaSpec,
    slots: np.ndarray,
    keys: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Hash + scatter one shipped batch across all slots and rows at once.

    All ``depth`` rows are processed in one broadcast kernel pass —
    coefficients gathered as ``(depth, n)`` matrices against broadcast keys —
    and applied with a single ``np.add.at`` into the raveled arena using
    per-row cell offsets.  Bit-exact versus the per-row / per-partition
    path: cells in different rows (or partitions) never alias, and within a
    cell the element application order is the arrival order either way.
    """
    off_el = spec.offsets[slots]
    w_el = spec.widths[slots]
    cols = gathered_hash_columns(
        spec.hash_a[:, slots],
        spec.hash_b[:, slots],
        w_el,
        np.broadcast_to(keys, (spec.depth, len(keys))),
    )
    row_base = (np.arange(spec.depth, dtype=np.int64) * spec.total_width)[:, np.newaxis]
    flat = cols + (off_el + row_base)
    np.add.at(
        arena.reshape(-1),
        flat.reshape(-1),
        np.broadcast_to(counts, (spec.depth, len(counts))).reshape(-1),
    )


def _apply_conservative(
    arena: np.ndarray,
    spec: ArenaSpec,
    slots: np.ndarray,
    keys: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Per-element conservative update (bit-identical to ``update_batch``).

    Conservative update is inherently sequential — each element's cell values
    depend on every earlier element — so columns are still hashed vectorized,
    but the min-raising rule is applied element by element in arrival order.
    """
    off_el = spec.offsets[slots]
    w_el = spec.widths[slots]
    cols = np.empty((spec.depth, len(keys)), dtype=np.int64)
    for row in range(spec.depth):
        cols[row] = gathered_hash_columns(
            spec.hash_a[row][slots], spec.hash_b[row][slots], w_el, keys
        )
    flat = cols + off_el[np.newaxis, :]
    rows = np.arange(spec.depth)
    counts_list = counts.tolist()
    for element in range(flat.shape[1]):
        cells = flat[:, element]
        current = arena[rows, cells]
        new_min = current.min() + counts_list[element]
        np.maximum(current, new_min, out=current)
        arena[rows, cells] = current


def _arena_worker(conn, spec: ArenaSpec, fault_plan=None) -> None:
    """Worker-process loop: attach the arena, apply shipped column batches.

    Commit order per batch — apply counters, write the applied-sequence
    slot, acknowledge — so at any crash point the seq slot tells the
    supervisor exactly which journaled batches are already in the arena.
    """
    # Install unconditionally: a forked worker inherits the coordinator's
    # module-level plan, so ``None`` must actively clear it (a restarted
    # worker only keeps the specs ``restart_plan`` chose to ship).
    _faults.install(fault_plan)
    try:
        # Attaching re-registers the block with the resource tracker, which
        # is shared across the process tree (fork and spawn alike): the
        # duplicate registration is a set no-op, and the coordinator's unlink
        # performs the single matching unregister.
        shm = shared_memory.SharedMemory(name=spec.shm_name)
        arena: Optional[np.ndarray] = np.ndarray(
            (spec.depth, spec.total_width), dtype=np.float64, buffer=shm.buf
        )
        seq_view: Optional[np.ndarray] = np.ndarray(
            (1,), dtype=np.uint64, buffer=shm.buf, offset=spec.seq_slot_offset
        )
    except Exception:  # noqa: BLE001 - report attach failures to the parent
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    staging_shm = None
    staged = None

    def _commit_and_ack(seq: Optional[int]) -> None:
        if seq is not None:
            seq_view[0] = seq
        if _faults._PLAN is not None:
            _faults.crash_point(_faults.SITE_CRASH_AFTER_APPLY, spec.shard_index)
            if _faults.should_fire(_faults.SITE_DROP_ACK, spec.shard_index):
                return
            _faults.maybe_slow_ack(spec.shard_index)
        conn.send(("ok", None))

    try:
        while True:
            message = conn.recv()
            kind = message[0]
            try:
                if kind == "apply_shm":
                    _, segment, count, seq = message
                    slots = staged[0][segment, :count]
                    keys = staged[1][segment, :count]
                    counts = staged[2][segment, :count]
                    if _faults._PLAN is not None:
                        _faults.crash_point(
                            _faults.SITE_CRASH_BEFORE_APPLY, spec.shard_index
                        )
                    if spec.conservative:
                        _apply_conservative(arena, spec, slots, keys, counts)
                    else:
                        _apply_fused(arena, spec, slots, keys, counts)
                    _commit_and_ack(seq)
                elif kind == "apply":
                    _, slots, keys, counts, seq = message
                    if _faults._PLAN is not None:
                        _faults.crash_point(
                            _faults.SITE_CRASH_BEFORE_APPLY, spec.shard_index
                        )
                    if spec.conservative:
                        _apply_conservative(arena, spec, slots, keys, counts)
                    else:
                        _apply_fused(arena, spec, slots, keys, counts)
                    _commit_and_ack(seq)
                elif kind == "staging":
                    _, name, segments, capacity = message
                    staging_shm = shared_memory.SharedMemory(name=name)
                    staged = staging_views(staging_shm.buf, segments, capacity)
                elif kind == "stop":
                    return
                else:  # pragma: no cover - defensive
                    conn.send(("error", f"unknown message kind {kind!r}"))
            except Exception:  # noqa: BLE001 - ship the traceback to the parent
                conn.send(("error", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        arena = None  # release the buffer views before unmapping
        seq_view = None
        staged = None
        shm.close()
        if staging_shm is not None:
            staging_shm.close()
        conn.close()


class SharedMemoryExecutor:
    """Persistent per-shard workers over shared-memory counter arenas.

    See the module docstring for the design.  Lifecycle: :meth:`start`
    allocates one arena per non-empty shard, re-binds the coordinator
    sketches onto arena views and forks the workers; :meth:`apply_async`
    ships routed columns with at most ``max_pending`` batches in flight per
    shard; :meth:`sync` drains in-flight batches (tables need no pulling);
    :meth:`close` detaches the sketches onto private copies and unlinks the
    arenas — after which :meth:`start` may be called again (restart).

    Args:
        mp_context: multiprocessing start method (``None`` = platform
            default; ``"fork"`` is fastest where available).
        max_pending: batches allowed in flight per shard before dispatch
            blocks on the oldest acknowledgement (≥ 1; 2 = double buffering).
        ack_deadline: seconds to wait for a live worker's acknowledgement
            before declaring the shard failed (``None`` waits indefinitely;
            the supervisor sets this from its
            :class:`~repro.distributed.recovery.RecoveryPolicy`).
        teardown_deadline: seconds granted to a worker to exit on its own
            during :meth:`close`/restart before terminate-then-kill
            escalation.
    """

    #: Journal entries stay replay-relevant only until acknowledged: applied
    #: counters live in the shared arena, which survives a worker crash.
    journal_retention = "ack"

    def __init__(
        self,
        mp_context: Optional[str] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        ack_deadline: Optional[float] = None,
        teardown_deadline: float = DEFAULT_TEARDOWN_DEADLINE,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._ctx = multiprocessing.get_context(mp_context)
        self._max_pending = max_pending
        self._workers: List[Optional[multiprocessing.process.BaseProcess]] = []
        self._pipes: List = []
        self._shms: List[Optional[shared_memory.SharedMemory]] = []
        self._stagings: List[Optional[_StagingRing]] = []
        self._attached: List[List[CountMinSketch]] = []
        self._slot_of: List[Dict[int, int]] = []
        self._outstanding: List[int] = []
        self._dispatched: List[int] = []
        self._specs: List[Optional[ArenaSpec]] = []
        self._seq_views: List[Optional[np.ndarray]] = []
        self._inflight: List[Deque[Optional[int]]] = []
        self._acked: List[Optional[int]] = []
        self._dead: Set[int] = set()
        self._started = False
        self.ack_deadline = ack_deadline
        self.teardown_deadline = teardown_deadline
        # Instrumentation (read by the throughput benchmark's breakdown).
        self.dispatch_seconds = 0.0
        self.stall_seconds = 0.0
        self.batches = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, shards: Sequence[SketchShard]) -> None:
        if self._started:
            return
        try:
            for shard in shards:
                self._start_shard(shard)
        except BaseException:
            # A mid-loop failure (tiny /dev/shm, fork limit) must not leak
            # the shards already set up: reap their workers, detach their
            # sketches and unlink their blocks before propagating.
            self.close()
            raise
        self._started = True

    def _start_shard(self, shard: SketchShard) -> None:
        """Set up one shard: arena, sketch views, worker, staging ring.

        Either the shard's complete state is appended to the executor's
        parallel lists (where :meth:`close` knows how to reap it) or this
        method's own partial allocations are rolled back before the
        exception propagates — so a failure leaves nothing half-owned.
        """
        partitions = shard.partition_ids
        if not partitions:
            # A plan with more shards than partitions leaves some shards
            # empty; no work can ever route there, so no worker is needed.
            self._workers.append(None)
            self._pipes.append(None)
            self._shms.append(None)
            self._stagings.append(None)
            self._attached.append([])
            self._slot_of.append({})
            self._outstanding.append(0)
            self._dispatched.append(0)
            self._specs.append(None)
            self._seq_views.append(None)
            self._inflight.append(deque())
            self._acked.append(None)
            return
        sketches = [shard.sketch_for(partition) for partition in partitions]
        depth = sketches[0].depth
        if any(sketch.depth != depth for sketch in sketches):
            raise ValueError(
                f"shard {shard.index} mixes sketch depths; the shared arena "
                "requires one depth per shard"
            )
        widths = np.array([sketch.width for sketch in sketches], dtype=np.uint64)
        offsets = np.zeros(len(sketches), dtype=np.int64)
        np.cumsum(widths[:-1].astype(np.int64), out=offsets[1:])
        total_width = int(widths.sum())
        hash_a = np.empty((depth, len(sketches)), dtype=np.uint64)
        hash_b = np.empty((depth, len(sketches)), dtype=np.uint64)
        for slot, sketch in enumerate(sketches):
            a, b = zip(*sketch.hash_coefficients())
            hash_a[:, slot] = a
            hash_b[:, slot] = b

        # The arena block carries an 8-byte applied-sequence slot after the
        # counter tables — the worker's crash-consistent replay watermark.
        seq_slot_offset = depth * total_width * 8
        shm = shared_memory.SharedMemory(create=True, size=seq_slot_offset + 8)
        attached: List[CountMinSketch] = []
        staging = None
        process = None
        parent_conn = None
        seq_view = None
        try:
            arena = np.ndarray((depth, total_width), dtype=np.float64, buffer=shm.buf)
            for slot, sketch in enumerate(sketches):
                lo = int(offsets[slot])
                sketch.attach_table(arena[:, lo : lo + int(widths[slot])])
                attached.append(sketch)
            del arena  # sketches hold the only remaining views
            seq_view = np.ndarray(
                (1,), dtype=np.uint64, buffer=shm.buf, offset=seq_slot_offset
            )

            spec = ArenaSpec(
                shm_name=shm.name,
                shard_index=shard.index,
                depth=depth,
                total_width=total_width,
                offsets=offsets,
                widths=widths,
                hash_a=hash_a,
                hash_b=hash_b,
                conservative=any(sketch.conservative for sketch in sketches),
                seq_slot_offset=seq_slot_offset,
            )
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_arena_worker,
                args=(child_conn, spec, _faults.current_plan()),
                daemon=True,
                name=f"sketch-arena-{shard.index}",
            )
            process.start()
            child_conn.close()
            # Allocate the staging ring up front (not on first dispatch):
            # steady-state ingest pays no one-time allocation, and the
            # worker learns the geometry before any batch arrives.
            staging = _StagingRing(
                segments=self._max_pending, capacity=MIN_STAGING_CAPACITY
            )
            send_to_worker(
                process,
                parent_conn,
                shard.index,
                ("staging", staging.shm.name, staging.segments, staging.capacity),
                self._LOST_NOTE,
            )
        except BaseException:
            for sketch in attached:
                sketch.detach_table()
            if staging is not None:
                staging.close()
            if process is not None:
                reap_workers([parent_conn], [process])
            elif parent_conn is not None:
                parent_conn.close()
            seq_view = None
            _release_shm(shm)
            raise
        self._workers.append(process)
        self._pipes.append(parent_conn)
        self._shms.append(shm)
        self._stagings.append(staging)
        self._attached.append(sketches)
        self._slot_of.append(
            {partition: slot for slot, partition in enumerate(partitions)}
        )
        self._outstanding.append(0)
        self._dispatched.append(0)
        self._specs.append(spec)
        self._seq_views.append(seq_view)
        self._inflight.append(deque())
        self._acked.append(0)

    def close(self) -> None:
        """Tear down workers and arenas; idempotent and safe after a crash.

        Workers drain their queued batches before honouring ``stop`` (pipe
        order), and the coordinator sketches are detached — counters copied
        back into private arrays — *before* the shared blocks are unlinked,
        so engine state survives teardown bit-for-bit and a later
        :meth:`start` (or snapshot) picks up exactly where ingestion stopped.
        """
        reap_workers(self._pipes, self._workers, deadline=self.teardown_deadline)
        for sketches in self._attached:
            for sketch in sketches:
                sketch.detach_table()
        self._seq_views = []  # release seq views before unlinking the arenas
        for shm in self._shms:
            if shm is not None:
                _release_shm(shm)
        for staging in self._stagings:
            if staging is not None:
                staging.close()
        self._workers = []
        self._pipes = []
        self._shms = []
        self._stagings = []
        self._attached = []
        self._slot_of = []
        self._outstanding = []
        self._dispatched = []
        self._specs = []
        self._inflight = []
        self._acked = []
        self._dead = set()
        self._started = False

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def apply_async(
        self,
        shards: Sequence[SketchShard],
        work: Mapping[int, Sequence[PartitionGroup]],
        seq: Optional[int] = None,
        credit: bool = True,
    ) -> None:
        """Credit + dispatch one batch without waiting for workers to apply it.

        At most ``max_pending`` batches stay in flight per shard; beyond
        that, dispatch blocks on the oldest acknowledgement (backpressure).
        State is consistent again once :meth:`sync` has drained the pipeline.
        A supervised coordinator passes its journal sequence number as
        ``seq`` (committed by the worker after apply) and ``credit=False``
        so it can credit scalar totals itself, exactly once, after the send.
        """
        if not self._started:
            self.start(shards)
        begin = time.perf_counter()
        stalled = 0.0
        for shard_index in sorted(work):
            groups = work[shard_index]
            while self._outstanding[shard_index] >= self._max_pending:
                stall_begin = time.perf_counter()
                self._await_ack(shard_index)
                stalled += time.perf_counter() - stall_begin
            self._dispatch(shard_index, groups, seq)
            # Credit only after a successful send: a dispatch that raises must
            # not leave totals accounting for counters that never shipped.
            if credit:
                shards[shard_index].credit_groups(groups)
            self._outstanding[shard_index] += 1
        dispatched = time.perf_counter() - begin - stalled
        self.batches += 1
        self.stall_seconds += stalled
        self.dispatch_seconds += dispatched
        if _obs._ENABLED:
            _SHM_BATCHES.inc()
            _SHM_DISPATCH_SECONDS.inc(dispatched)
            _SHM_STALL_SECONDS.inc(stalled)
            get_recorder().record(
                "ingest", "shm_dispatch", dispatched, stalled=stalled
            )

    def apply(
        self,
        shards: Sequence[SketchShard],
        work: Mapping[int, Sequence[PartitionGroup]],
    ) -> None:
        """Synchronous apply: dispatch, then drain the involved shards."""
        self.apply_async(shards, work)
        for shard_index in sorted(work):
            self._drain(shard_index)

    def sync(self, shards: Sequence[SketchShard]) -> None:
        """Drain in-flight batches — a flush, not a state transfer.

        Counter tables are shared views and scalar bookkeeping is credited on
        dispatch, so once every outstanding batch is acknowledged the
        coordinator-resident shards are authoritative with no data movement.
        """
        if not self._started:
            return
        begin = time.perf_counter()
        # Drain every healthy shard even when one fails, so a supervised
        # retry after recovery only has the failed shard left outstanding.
        failure: Optional[ShardExecutionError] = None
        for shard_index in range(len(self._outstanding)):
            if shard_index in self._dead:
                continue
            try:
                self._drain(shard_index)
            except ShardExecutionError as error:
                if failure is None:
                    failure = error
        drained = time.perf_counter() - begin
        self.stall_seconds += drained
        if _obs._ENABLED:
            _SHM_STALL_SECONDS.inc(drained)
            get_recorder().record("ingest", "shm_drain", drained)
        if failure is not None:
            raise failure

    def _dispatch(
        self,
        shard_index: int,
        groups: Sequence[PartitionGroup],
        seq: Optional[int] = None,
    ) -> None:
        """Ship one shard's routed columns: slot ids, uint64 keys, counts.

        The columns are written group by group into the next staging-ring
        segment and announced with a tiny ``(segment, count)`` descriptor —
        no bulk data crosses the pipe.  A batch larger than the segment
        capacity (possible only with extreme batch sizes) falls back to
        inline pipe transport.
        """
        slot_of = self._slot_of[shard_index]
        total = sum(len(group) for group in groups)
        staging = self._stagings[shard_index]
        if staging is not None and total <= staging.capacity:
            segment = self._dispatched[shard_index] % staging.segments
            seg_slots = staging.slots[segment]
            seg_keys = staging.keys[segment]
            seg_counts = staging.counts[segment]
            position = 0
            for group in groups:
                end = position + len(group)
                seg_slots[position:end] = slot_of[group.partition]
                seg_keys[position:end] = group.keys
                seg_counts[position:end] = group.counts
                position = end
            self._send(shard_index, ("apply_shm", segment, total, seq))
        else:  # pragma: no cover - requires batches beyond staging capacity
            slots = np.concatenate(
                [
                    np.full(len(group), slot_of[group.partition], dtype=np.int64)
                    for group in groups
                ]
            )
            keys = np.concatenate([group.keys for group in groups])
            counts = np.concatenate([group.counts for group in groups])
            self._send(shard_index, ("apply", slots, keys, counts, seq))
        self._dispatched[shard_index] += 1
        self._inflight[shard_index].append(seq)

    # ------------------------------------------------------------------ #
    # Worker I/O (with death detection)
    # ------------------------------------------------------------------ #
    #: Death note: arena counters for acknowledged batches survive a crash.
    _LOST_NOTE = (
        "in-flight batches are lost; counter updates already applied remain "
        "in the shared arena"
    )

    def _send(self, shard_index: int, message: tuple) -> None:
        process = self._workers[shard_index]
        if process is None:
            raise ShardExecutionError(shard_index, "no worker (empty shard)")
        send_to_worker(
            process, self._pipes[shard_index], shard_index, message, self._LOST_NOTE
        )

    def _await_ack(self, shard_index: int) -> None:
        await_worker_reply(
            self._workers[shard_index],
            self._pipes[shard_index],
            shard_index,
            "ok",
            self._LOST_NOTE,
            deadline=self.ack_deadline,
        )
        self._outstanding[shard_index] -= 1
        # Acks arrive in dispatch order (one pipe, FIFO worker loop), so the
        # oldest in-flight sequence number is the one being acknowledged.
        inflight = self._inflight[shard_index]
        if inflight:
            seq = inflight.popleft()
            if seq is not None:
                self._acked[shard_index] = seq

    def _drain(self, shard_index: int) -> None:
        while self._outstanding[shard_index] > 0:
            self._await_ack(shard_index)

    # ------------------------------------------------------------------ #
    # Supervised recovery (driven by ShardSupervisor)
    # ------------------------------------------------------------------ #
    def acked_seq(self, shard_index: int) -> Optional[int]:
        """Highest journal sequence acknowledged by this shard's worker."""
        return self._acked[shard_index]

    def applied_seq(self, shard_index: int) -> Optional[int]:
        """Highest journal sequence *committed to the arena* by the worker.

        Read from the arena's applied-sequence slot — valid even when the
        worker just died, which is exactly when the supervisor needs it.
        """
        seq_view = self._seq_views[shard_index]
        return None if seq_view is None else int(seq_view[0])

    def restart_shard(
        self, shards: Sequence[SketchShard], shard_index: int
    ) -> Optional[int]:
        """Respawn one shard's worker onto the surviving arena.

        The arena (counters + applied-sequence slot) outlives the worker, so
        recovery is: reap the corpse, fork a fresh worker against the same
        :class:`ArenaSpec`, re-announce the staging ring, and report the
        arena's applied-sequence watermark — the supervisor replays only
        journal entries after it.
        """
        if not self._started:
            raise ShardExecutionError(shard_index, "executor not started")
        spec = self._specs[shard_index]
        if spec is None:
            raise ShardExecutionError(shard_index, "no worker (empty shard)")
        reap_workers(
            [self._pipes[shard_index]],
            [self._workers[shard_index]],
            deadline=self.teardown_deadline,
        )
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_arena_worker,
            args=(child_conn, spec, _faults.restart_plan()),
            daemon=True,
            name=f"sketch-arena-{shard_index}",
        )
        process.start()
        child_conn.close()
        self._workers[shard_index] = process
        self._pipes[shard_index] = parent_conn
        staging = self._stagings[shard_index]
        if staging is not None:
            send_to_worker(
                process,
                parent_conn,
                shard_index,
                ("staging", staging.shm.name, staging.segments, staging.capacity),
                self._LOST_NOTE,
            )
        # Everything that was in flight either committed (visible through the
        # seq slot) or died with the worker; nothing is awaiting an ack now.
        self._outstanding[shard_index] = 0
        self._inflight[shard_index] = deque()
        applied = self.applied_seq(shard_index)
        self._acked[shard_index] = applied
        return applied

    def replay(
        self,
        shards: Sequence[SketchShard],
        shard_index: int,
        groups: Sequence[PartitionGroup],
        seq: Optional[int] = None,
    ) -> None:
        """Re-apply one journaled batch synchronously (no double crediting)."""
        self._dispatch(shard_index, groups, seq)
        self._outstanding[shard_index] += 1
        self._drain(shard_index)

    def mark_failed(self, shard_index: int) -> None:
        """Abandon a shard (degraded serving): reap its worker for good.

        The arena, attached sketches, staging ring and seq view are kept —
        acknowledged counters keep serving queries through the coordinator's
        arena views; only ingest to this shard stops (dropped upstream).
        """
        reap_workers(
            [self._pipes[shard_index]],
            [self._workers[shard_index]],
            deadline=self.teardown_deadline,
        )
        self._workers[shard_index] = None
        self._pipes[shard_index] = None
        self._outstanding[shard_index] = 0
        self._inflight[shard_index] = deque()
        self._dead.add(shard_index)

    # ------------------------------------------------------------------ #
    # Introspection (tests, diagnostics)
    # ------------------------------------------------------------------ #
    @property
    def worker_processes(self) -> Sequence[Optional[multiprocessing.process.BaseProcess]]:
        """The per-shard worker processes (``None`` for empty shards)."""
        return tuple(self._workers)

    @property
    def max_pending(self) -> int:
        """Batches allowed in flight per shard before dispatch blocks."""
        return self._max_pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "started" if self._started else "idle"
        return (
            f"SharedMemoryExecutor(workers={sum(w is not None for w in self._workers)}, "
            f"max_pending={self._max_pending}, {state})"
        )
